"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper's
evaluation at laptop scale.  ``REPRO_SCALE`` (default 0.5 for benchmarks)
and ``REPRO_REPS`` (default 1; the paper uses 3) control effort.

The Table III/IV/V grid — every algorithm on every dataset — is executed
once per session and shared by the table benchmarks; rendered tables are
also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Benchmarks default to half scale so the full suite finishes in minutes;
# the unit-test suite is unaffected (it passes explicit scales).
os.environ.setdefault("REPRO_SCALE", "0.5")

from repro.bench import Harness, mean_outcomes  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table past pytest's capture and save it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n", file=sys.__stdout__, flush=True)


@pytest.fixture(scope="session")
def harness() -> Harness:
    return Harness()


@pytest.fixture(scope="session")
def suite_outcomes(harness):
    """The full Table III/IV/V measurement grid (run once per session)."""
    outcomes = harness.run_suite()
    return mean_outcomes(outcomes)
