"""E-T2 — Table II: the dataset bench.

Builds every dataset of the paper's Table II at the reproduction scale and
reports |V|, |E| and the component count next to the paper's numbers.  The
qualitative roles are asserted: bitcoin_addresses has a huge number of
small clusters, bitcoin_full few markets, friendster exactly one component,
path100m one, pathunion10 ten.
"""

from repro.bench.tables import render_table2
from repro.core import count_components
from repro.graphs import TABLE_DATASETS

from .conftest import emit


def build_rows(harness):
    rows = []
    for name in TABLE_DATASETS:
        edges = harness.dataset(name)
        rows.append(
            (name, edges.n_vertices, edges.n_edges, count_components(edges))
        )
    return rows


def test_table2_dataset_roles(benchmark, harness):
    rows = benchmark.pedantic(build_rows, args=(harness,), rounds=1,
                              iterations=1)
    by_name = {name: (v, e, c) for name, v, e, c in rows}
    assert by_name["friendster"][2] == 1
    assert by_name["path100m"][2] == 1
    assert by_name["pathunion10"][2] == 10
    # Address clustering: components are a large fraction of vertices.
    v, _, c = by_name["bitcoin_addresses"]
    assert c > 0.02 * v
    # Markets: few components relative to vertices.
    v, _, c = by_name["bitcoin_full"]
    assert c < 0.02 * v
    # Candels series roughly doubles in edges.
    for small, big in (("candels10", "candels20"), ("candels20", "candels40"),
                       ("candels40", "candels80"), ("candels80", "candels160")):
        assert by_name[big][1] > 1.6 * by_name[small][1]
    emit("table2", render_table2(rows))
