"""E-AB — Theorem 1 and Appendix B: contraction-factor bounds.

Measures the per-round surviving fraction gamma:

* exactly, by enumerating all orderings of small graphs (directed 3-cycle
  attains the tight Appendix-B bound 2/3);
* by Monte-Carlo on a large random graph for each randomisation method,
  asserting Theorem 1's gamma <= 3/4 (finite fields / encryption) and
  Appendix B's gamma <= 2/3 (full randomisation via random reals).
"""

from fractions import Fraction

import numpy as np

from repro.core.contraction_theory import (
    directed_three_cycle_gamma,
    exact_expected_gamma,
    monte_carlo_gamma,
)
from repro.graphs import gnm_random_graph

from .conftest import emit

METHODS_34 = ["finite-fields", "prime-field", "encryption"]


def test_gamma_bounds(benchmark):
    edges = gnm_random_graph(2000, 3500, np.random.default_rng(0))

    def run_measurements():
        results = {}
        for method in METHODS_34 + ["random-reals"]:
            results[method] = monte_carlo_gamma(edges, method, rounds=12,
                                                seed=3)
        return results

    results = benchmark.pedantic(run_measurements, rounds=1, iterations=1)
    for method in METHODS_34:
        mean, stderr = results[method]
        assert mean <= 0.75 + 3 * stderr + 0.02, (method, mean)
    mean_reals, stderr_reals = results["random-reals"]
    assert mean_reals <= 2 / 3 + 3 * stderr_reals + 0.02

    # Exact enumerations.
    three_cycle = directed_three_cycle_gamma()
    assert three_cycle == Fraction(2, 3)
    path4 = exact_expected_gamma(4, [(0, 1), (1, 2), (2, 3)])
    assert path4 <= Fraction(2, 3)

    lines = [
        "THEOREM 1 / APPENDIX B - CONTRACTION FACTOR gamma",
        "",
        "  exact (all orderings):",
        f"    directed 3-cycle : {three_cycle} (tight Appendix-B bound 2/3)",
        f"    undirected path-4: {path4} = {float(path4):.4f}",
        "",
        f"  Monte-Carlo, G(2000, 3500), 12 rounds "
        f"(bounds: 3/4 = 0.75, 2/3 = 0.667):",
    ]
    for method, (mean, stderr) in results.items():
        bound = "2/3" if method == "random-reals" else "3/4"
        lines.append(
            f"    {method:14s}: gamma = {mean:.4f} +- {stderr:.4f}  "
            f"(bound {bound})"
        )
    emit("appendixB_gamma", "\n".join(lines))
