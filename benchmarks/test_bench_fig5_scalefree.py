"""E-F5 — Figure 5: scale-free component-size distributions.

The paper plots component counts against component sizes on log-log axes
for the Andromeda and Bitcoin-addresses graphs and observes a roughly
linear (scale-free) relationship, with Andromeda's black background as the
single giant outlier.  This bench fits the log-log line on both substitute
datasets, asserts the shape, and renders the text version of the figure.
"""

from repro.analysis import fit_scale_free, render_figure5

from .conftest import emit


def test_figure5_scale_freedom(benchmark, harness):
    andromeda = harness.dataset("andromeda")
    bitcoin = harness.dataset("bitcoin_addresses")

    fits = benchmark.pedantic(
        lambda: {name: fit_scale_free(edges)
                 for name, edges in [("andromeda", andromeda),
                                     ("bitcoin_addresses", bitcoin)]},
        rounds=1, iterations=1,
    )
    for name, fit in fits.items():
        assert fit.slope < -0.4, (name, fit.slope)
        assert fit.n_components > 100, name
    # The Andromeda background: one giant outlier component.
    assert fits["andromeda"].giant_component_size > \
        andromeda.n_vertices * 0.3
    emit("figure5", render_figure5({
        "andromeda": andromeda,
        "bitcoin_addresses": bitcoin,
    }))
