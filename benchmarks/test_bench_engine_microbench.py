"""E-ENG — engine micro-benchmarks: kernels, caches, physical plans.

Not a paper table: this bench tracks the *engine's* performance trajectory
across PRs.  It measures the hash/dictionary kernels against the seed
sort-merge reference on synthetic single-column ``int64`` keys (the
dominant shape of every reproduced algorithm), the value of the table
index cache on repeated joins, the plan- and physical-plan-cache hit rates
over Randomised Contraction runs, the fused join->DISTINCT pipeline
against the materialising one, the segment-parallel kernels against their
single-threaded references, and the end-to-end effect with all caches on
vs. off.

Results land in ``benchmarks/results/BENCH_engine.json`` (ops/sec per
kernel and size) so successive PRs can diff engine throughput
(``make bench-compare`` diffs against ``benchmarks/baselines/``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import RandomisedContraction
from repro.graphs import gnm_random_graph
from repro.graphs.io import load_edges_into
from repro.sqlengine import Database
from repro.sqlengine.mpp import SegmentPool
from repro.sqlengine.operators import (
    build_key_index,
    distinct_rows,
    join_indices,
    merge_join_indices,
    sorted_group_rows,
)
from repro.sqlengine.parallel import (
    AggregateSpec,
    group_aggregate,
    parallel_group_aggregate,
    parallel_join_indices,
)
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.types import INT64, Column

from .conftest import emit

RESULTS_DIR = Path(__file__).parent / "results"

SIZES = [10_000, 100_000, 1_000_000]
REPS = 3


def best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def reference_distinct(columns):
    """The seed DISTINCT: lexsort-based grouping, first row per group."""
    order, starts = sorted_group_rows(columns)
    return order[starts] if order.size else order


def test_engine_microbench():
    rng = np.random.default_rng(20200420)
    report: dict = {"sizes": {}, "asserted": {}}

    for n in SIZES:
        # -- joins: probe n edge endpoints against n unique vertex ids ----
        dense_build = Column(rng.permutation(n).astype(np.int64), "int64")
        dense_probe = Column(rng.integers(0, n, n).astype(np.int64), "int64")
        sparse_values = rng.integers(0, 2 ** 62, n).astype(np.int64)
        sparse_build = Column(sparse_values, "int64")
        sparse_probe = Column(sparse_values[rng.integers(0, n, n)], "int64")
        sparse_index = build_key_index(sparse_build.values)

        t_seed_dense = best_of(
            lambda: merge_join_indices([dense_probe], [dense_build]))
        t_hash_dense = best_of(
            lambda: join_indices([dense_probe], [dense_build]))
        t_seed_sparse = best_of(
            lambda: merge_join_indices([sparse_probe], [sparse_build]))
        t_indexed_sparse = best_of(
            lambda: join_indices([sparse_probe], [sparse_build],
                                 right_index=sparse_index))

        # -- distinct over a dense key column with duplicates -------------
        distinct_input = Column(
            rng.integers(0, max(n // 3, 1), n).astype(np.int64), "int64")
        t_seed_distinct = best_of(lambda: reference_distinct([distinct_input]))
        t_hash_distinct = best_of(lambda: distinct_rows([distinct_input]))

        report["sizes"][n] = {
            "join_dense": {
                "seed_s": t_seed_dense, "hash_s": t_hash_dense,
                "speedup": t_seed_dense / t_hash_dense,
                "hash_rows_per_s": n / t_hash_dense,
            },
            "join_sparse_indexed": {
                "seed_s": t_seed_sparse, "hash_s": t_indexed_sparse,
                "speedup": t_seed_sparse / t_indexed_sparse,
                "hash_rows_per_s": n / t_indexed_sparse,
            },
            "distinct_dense": {
                "seed_s": t_seed_distinct, "hash_s": t_hash_distinct,
                "speedup": t_seed_distinct / t_hash_distinct,
                "hash_rows_per_s": n / t_hash_distinct,
            },
        }

    # Correctness spot-check at the largest size (full property coverage
    # lives in tests/test_operators.py).
    n = SIZES[-1]
    a = merge_join_indices([dense_probe], [dense_build])
    b = join_indices([dense_probe], [dense_build])
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    assert np.array_equal(reference_distinct([distinct_input]),
                          distinct_rows([distinct_input]))

    # -- acceptance: >= 2x on the 1e6 single-column int64 kernels ---------
    at_1m = report["sizes"][SIZES[-1]]
    report["asserted"] = {
        "join_dense_speedup_1m": at_1m["join_dense"]["speedup"],
        "join_sparse_indexed_speedup_1m":
            at_1m["join_sparse_indexed"]["speedup"],
        "distinct_dense_speedup_1m": at_1m["distinct_dense"]["speedup"],
    }
    assert at_1m["join_dense"]["speedup"] >= 2.0
    assert at_1m["distinct_dense"]["speedup"] >= 2.0
    assert at_1m["join_sparse_indexed"]["speedup"] >= 1.5

    # -- plan cache: parse cost amortisation ------------------------------
    db = Database()
    db.execute("create table g1 (v1 int64, v2 int64)")
    db.execute("insert into g1 values (1, 2), (2, 3)")
    statement = ("select v1, count(*) c from g1 where v1 != 0 "
                 "group by v1")
    n_statements = 500
    t_parse_every_time = best_of(
        lambda: [parse_statement(statement) for _ in range(n_statements)], 1)
    before = db.stats.snapshot()
    started = time.perf_counter()
    for _ in range(n_statements):
        db.execute(statement)
    t_cached_execute = time.perf_counter() - started
    delta = db.stats.snapshot().delta(before)
    hit_rate = delta.plan_cache_hits / max(delta.queries, 1)
    report["plan_cache"] = {
        "statements": n_statements,
        "hit_rate": hit_rate,
        "parse_only_s": t_parse_every_time,
        "cached_execute_s": t_cached_execute,
    }
    assert hit_rate > 0.99

    # -- physical plans: hit rate over the Randomised Contraction loop ----
    # Steady-state behaviour: a database whose statement templates are warm
    # (a prior small run) re-executes every round-loop statement from its
    # cached physical plan; only validity checks and parameter patches
    # remain.  The cold (first-run) rate is recorded alongside.
    warm_edges = gnm_random_graph(2_000, 3_600, np.random.default_rng(5))
    measured_edges = gnm_random_graph(60_000, 110_000,
                                      np.random.default_rng(3))
    pp_db = Database(n_segments=4)
    load_edges_into(pp_db, "edges_warm", warm_edges)
    RandomisedContraction().run(pp_db, "edges_warm", seed=7)
    cold = pp_db.stats.snapshot()
    cold_planned = cold.physical_plan_hits + cold.physical_plan_misses
    load_edges_into(pp_db, "edges_main", measured_edges)
    RandomisedContraction().run(pp_db, "edges_main", seed=99)
    warm = pp_db.stats.snapshot().delta(cold)
    warm_planned = warm.physical_plan_hits + warm.physical_plan_misses
    report["physical_plan"] = {
        "cold_hit_rate": cold.physical_plan_hits / max(cold_planned, 1),
        "round_loop_hit_rate": warm.physical_plan_hits / max(warm_planned, 1),
        "round_loop_planned_statements": warm_planned,
        "invalidations": warm.physical_plan_invalidations,
        "fused_pipelines": warm.fused_pipelines,
    }
    assert report["physical_plan"]["round_loop_hit_rate"] >= 0.95
    assert warm.physical_plan_invalidations == 0

    # -- fusion: join -> DISTINCT vs the materialising pipeline -----------
    # Two shapes at 1e6 rows: the paper's narrow contract query (two
    # columns per table; the saved gathers sit inside allocator noise on
    # some hosts, so it is recorded informationally) and a wide-payload
    # variant where the materialising pipeline's full-column gathers are
    # structural cost — that one carries the acceptance assert.
    n_fuse = SIZES[-1]
    n_reps_rows = n_fuse // 3
    contract = ("select distinct v1, r2.rep as v2 from graph2, reps as r2 "
                "where graph2.v2 = r2.v and v1 != r2.rep")

    def fusion_db(use_fusion: bool, payload: int) -> Database:
        fdb = Database(n_segments=4, use_fusion=use_fusion)
        frng = np.random.default_rng(8)
        graph_cols = {
            "v1": frng.integers(0, n_reps_rows, n_fuse),
            "v2": frng.integers(0, n_reps_rows, n_fuse),
        }
        for i in range(payload):
            graph_cols[f"w{i}"] = frng.integers(0, 100, n_fuse)
        fdb.load_table("graph2", graph_cols, distributed_by="v2")
        reps_cols = {
            "v": np.arange(n_reps_rows, dtype=np.int64),
            "rep": frng.integers(0, n_reps_rows, n_reps_rows),
        }
        for i in range(payload // 2):
            reps_cols[f"p{i}"] = frng.integers(0, 9, n_reps_rows)
        fdb.load_table("reps", reps_cols, distributed_by="v")
        return fdb

    report["fused_distinct"] = {"rows": n_fuse}
    for shape, payload in (("contract", 0), ("wide", 4)):
        fused_db = fusion_db(True, payload)
        plain_db = fusion_db(False, payload)
        fused_rel = fused_db.execute(contract).relation
        plain_rel = plain_db.execute(contract).relation
        for name_f, name_p in zip(fused_rel.names, plain_rel.names):
            assert np.array_equal(fused_rel.column(name_f).values,
                                  plain_rel.column(name_p).values)
        t_fused = best_of(lambda: fused_db.execute(contract))
        t_plain = best_of(lambda: plain_db.execute(contract))
        assert fused_db.stats.fused_pipelines > 0
        report["fused_distinct"][shape] = {
            "materialising_s": t_plain,
            "fused_s": t_fused,
            "speedup": t_plain / t_fused,
        }
        del fused_db, plain_db
    # "Measurably faster": asserted on the wide shape, with CI slack.
    wide = report["fused_distinct"]["wide"]
    assert wide["fused_s"] <= wide["materialising_s"] * 0.95

    # -- segment-parallel kernels vs single-threaded references -----------
    n_par = SIZES[-1]
    n_workers = min(4, os.cpu_count() or 1)
    pool = SegmentPool(4, max_workers=4)
    prng = np.random.default_rng(21)
    par_left = Column(prng.integers(0, n_par, n_par), INT64)
    par_right = Column(
        np.concatenate([
            prng.permutation(n_par),
            prng.integers(0, n_par, n_par // 8),
        ]).astype(np.int64), INT64)
    ref_join = join_indices([par_left], [par_right])
    par_join = parallel_join_indices([par_left], [par_right], pool)
    assert np.array_equal(ref_join[0], par_join[0])
    assert np.array_equal(ref_join[1], par_join[1])
    t_join_single = best_of(lambda: join_indices([par_left], [par_right]))
    t_join_parallel = best_of(
        lambda: parallel_join_indices([par_left], [par_right], pool))

    agg_keys = prng.integers(0, 10_000, n_par)
    agg_values = prng.integers(-1000, 1000, n_par)
    specs = [AggregateSpec("count*"),
             AggregateSpec("min", agg_values, None, INT64),
             AggregateSpec("sum", agg_values, None, INT64)]
    ref_agg = group_aggregate(agg_keys, specs)
    par_agg = parallel_group_aggregate(agg_keys, specs, pool)
    assert np.array_equal(ref_agg[0], par_agg[0])
    for (ref_vals, _), (par_vals, _) in zip(ref_agg[1], par_agg[1]):
        assert np.array_equal(ref_vals, par_vals)
    t_agg_single = best_of(lambda: group_aggregate(agg_keys, specs))
    t_agg_parallel = best_of(
        lambda: parallel_group_aggregate(agg_keys, specs, pool))

    report["parallel"] = {
        "rows": n_par,
        "cpu_count": os.cpu_count(),
        "workers": pool.n_workers,
        "join_single_s": t_join_single,
        "join_parallel_s": t_join_parallel,
        "join_speedup": t_join_single / t_join_parallel,
        "aggregate_single_s": t_agg_single,
        "aggregate_parallel_s": t_agg_parallel,
        "aggregate_speedup": t_agg_single / t_agg_parallel,
    }
    if n_workers >= 4:
        # The acceptance bar applies on multi-core runners; single-core
        # hosts record the (necessarily ~1x) numbers informationally.
        assert report["parallel"]["join_speedup"] >= 1.5
        assert report["parallel"]["aggregate_speedup"] >= 1.5

    # -- GROUP BY sort skip over a pre-sorted stored column ----------------
    grng = np.random.default_rng(2)
    group_keys_sorted = np.repeat(np.arange(n_par // 4, dtype=np.int64), 4)
    weights = grng.integers(0, 1000, n_par)
    sorted_db = Database(n_segments=4)
    sorted_db.load_table("s", {"v": group_keys_sorted, "w": weights})
    group_query = "select v, count(*) c, min(w) lo, sum(w) s from s group by v"
    sorted_db.execute(group_query)  # warms the index
    t_presorted = best_of(lambda: sorted_db.execute(group_query))
    unsorted_db = Database(n_segments=4)
    shuffle = grng.permutation(n_par)
    unsorted_db.load_table("u", {"v": group_keys_sorted[shuffle],
                                 "w": weights[shuffle]})
    unsorted_query = "select v, count(*) c, min(w) lo, sum(w) s from u group by v"
    unsorted_db.execute(unsorted_query)
    t_shuffled = best_of(lambda: unsorted_db.execute(unsorted_query))
    assert sorted_db.stats.group_sorts_skipped > 0
    report["group_sort_skip"] = {
        "rows": n_par,
        "presorted_s": t_presorted,
        "shuffled_s": t_shuffled,
        "speedup": t_shuffled / t_presorted,
    }

    # -- end-to-end: Randomised Contraction with and without caches -------
    edges = gnm_random_graph(60_000, 110_000, np.random.default_rng(3))

    def run_rc(use_caches: bool):
        rc_db = Database(n_segments=4, use_plan_cache=use_caches,
                         use_index_cache=use_caches,
                         use_physical_plans=use_caches,
                         use_fusion=use_caches)
        load_edges_into(rc_db, "edges", edges)
        started = time.perf_counter()
        result = RandomisedContraction().run(rc_db, "edges", seed=99)
        elapsed = time.perf_counter() - started
        vertices, labels = result.labels(rc_db)
        order = np.argsort(vertices, kind="stable")
        return elapsed, vertices[order], labels[order], result.stats

    t_on, v_on, l_on, stats_on = run_rc(True)
    t_off, v_off, l_off, _ = run_rc(False)
    assert np.array_equal(v_on, v_off) and np.array_equal(l_on, l_off)
    report["end_to_end_rc"] = {
        "n_vertices": 60_000,
        "n_edges": 110_000,
        "caches_on_s": t_on,
        "caches_off_s": t_off,
        "speedup": t_off / t_on,
        "plan_cache_hits": stats_on.plan_cache_hits,
        "index_cache_hits": stats_on.index_cache_hits,
    }
    # Identical output is a hard guarantee; the wall-clock advantage is
    # asserted with slack for machine noise and reported exactly.
    assert t_on <= t_off * 1.10

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, default=float) + "\n")

    lines = ["ENGINE MICRO-BENCHMARKS (hash kernels vs seed sort-merge)", ""]
    for n, kernels in report["sizes"].items():
        for name, r in kernels.items():
            lines.append(
                f"  {name:<22s} n={n:>9,}  seed {r['seed_s'] * 1e3:8.2f} ms"
                f"  hash {r['hash_s'] * 1e3:8.2f} ms  speedup {r['speedup']:6.1f}x"
            )
    pp = report["physical_plan"]
    fused = report["fused_distinct"]
    par = report["parallel"]
    skip = report["group_sort_skip"]
    lines += [
        "",
        f"  plan cache hit rate      : {report['plan_cache']['hit_rate']:.3f}"
        f" over {n_statements} statements",
        f"  physical plan hit rate   : {pp['round_loop_hit_rate']:.3f} on the"
        f" warm RC round loop ({pp['round_loop_planned_statements']} planned"
        f" statements; cold run {pp['cold_hit_rate']:.3f})",
        f"  fused join->DISTINCT 1e6 : wide"
        f" {fused['wide']['materialising_s'] * 1e3:.1f} ms ->"
        f" {fused['wide']['fused_s'] * 1e3:.1f} ms"
        f" ({fused['wide']['speedup']:.2f}x); contract shape"
        f" {fused['contract']['speedup']:.2f}x",
        f"  parallel join 1e6        : {par['join_single_s'] * 1e3:.1f} ms ->"
        f" {par['join_parallel_s'] * 1e3:.1f} ms"
        f" ({par['join_speedup']:.2f}x, {par['workers']} workers,"
        f" {par['cpu_count']} cpus)",
        f"  parallel aggregate 1e6   : {par['aggregate_single_s'] * 1e3:.1f} ms"
        f" -> {par['aggregate_parallel_s'] * 1e3:.1f} ms"
        f" ({par['aggregate_speedup']:.2f}x)",
        f"  presorted GROUP BY 1e6   : {skip['shuffled_s'] * 1e3:.1f} ms"
        f" (shuffled) vs {skip['presorted_s'] * 1e3:.1f} ms (sort skipped,"
        f" {skip['speedup']:.2f}x)",
        f"  end-to-end RC (60k/110k) : {t_off:.3f}s -> {t_on:.3f}s "
        f"({report['end_to_end_rc']['speedup']:.2f}x, identical labels)",
    ]
    emit("BENCH_engine", "\n".join(lines))
