"""E-ENG — engine micro-benchmarks: hash kernels, index cache, plan cache.

Not a paper table: this bench tracks the *engine's* performance trajectory
across PRs.  It measures the hash/dictionary kernels against the seed
sort-merge reference on synthetic single-column ``int64`` keys (the
dominant shape of every reproduced algorithm), the value of the table
index cache on repeated joins, the plan-cache hit rate over a Randomised
Contraction run, and the end-to-end effect with all caches on vs. off.

Results land in ``benchmarks/results/BENCH_engine.json`` (ops/sec per
kernel and size) so successive PRs can diff engine throughput.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import RandomisedContraction
from repro.graphs import gnm_random_graph
from repro.graphs.io import load_edges_into
from repro.sqlengine import Database
from repro.sqlengine.operators import (
    build_key_index,
    distinct_rows,
    join_indices,
    merge_join_indices,
    sorted_group_rows,
)
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.types import Column

from .conftest import emit

RESULTS_DIR = Path(__file__).parent / "results"

SIZES = [10_000, 100_000, 1_000_000]
REPS = 3


def best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def reference_distinct(columns):
    """The seed DISTINCT: lexsort-based grouping, first row per group."""
    order, starts = sorted_group_rows(columns)
    return order[starts] if order.size else order


def test_engine_microbench():
    rng = np.random.default_rng(20200420)
    report: dict = {"sizes": {}, "asserted": {}}

    for n in SIZES:
        # -- joins: probe n edge endpoints against n unique vertex ids ----
        dense_build = Column(rng.permutation(n).astype(np.int64), "int64")
        dense_probe = Column(rng.integers(0, n, n).astype(np.int64), "int64")
        sparse_values = rng.integers(0, 2 ** 62, n).astype(np.int64)
        sparse_build = Column(sparse_values, "int64")
        sparse_probe = Column(sparse_values[rng.integers(0, n, n)], "int64")
        sparse_index = build_key_index(sparse_build.values)

        t_seed_dense = best_of(
            lambda: merge_join_indices([dense_probe], [dense_build]))
        t_hash_dense = best_of(
            lambda: join_indices([dense_probe], [dense_build]))
        t_seed_sparse = best_of(
            lambda: merge_join_indices([sparse_probe], [sparse_build]))
        t_indexed_sparse = best_of(
            lambda: join_indices([sparse_probe], [sparse_build],
                                 right_index=sparse_index))

        # -- distinct over a dense key column with duplicates -------------
        distinct_input = Column(
            rng.integers(0, max(n // 3, 1), n).astype(np.int64), "int64")
        t_seed_distinct = best_of(lambda: reference_distinct([distinct_input]))
        t_hash_distinct = best_of(lambda: distinct_rows([distinct_input]))

        report["sizes"][n] = {
            "join_dense": {
                "seed_s": t_seed_dense, "hash_s": t_hash_dense,
                "speedup": t_seed_dense / t_hash_dense,
                "hash_rows_per_s": n / t_hash_dense,
            },
            "join_sparse_indexed": {
                "seed_s": t_seed_sparse, "hash_s": t_indexed_sparse,
                "speedup": t_seed_sparse / t_indexed_sparse,
                "hash_rows_per_s": n / t_indexed_sparse,
            },
            "distinct_dense": {
                "seed_s": t_seed_distinct, "hash_s": t_hash_distinct,
                "speedup": t_seed_distinct / t_hash_distinct,
                "hash_rows_per_s": n / t_hash_distinct,
            },
        }

    # Correctness spot-check at the largest size (full property coverage
    # lives in tests/test_operators.py).
    n = SIZES[-1]
    a = merge_join_indices([dense_probe], [dense_build])
    b = join_indices([dense_probe], [dense_build])
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    assert np.array_equal(reference_distinct([distinct_input]),
                          distinct_rows([distinct_input]))

    # -- acceptance: >= 2x on the 1e6 single-column int64 kernels ---------
    at_1m = report["sizes"][SIZES[-1]]
    report["asserted"] = {
        "join_dense_speedup_1m": at_1m["join_dense"]["speedup"],
        "join_sparse_indexed_speedup_1m":
            at_1m["join_sparse_indexed"]["speedup"],
        "distinct_dense_speedup_1m": at_1m["distinct_dense"]["speedup"],
    }
    assert at_1m["join_dense"]["speedup"] >= 2.0
    assert at_1m["distinct_dense"]["speedup"] >= 2.0
    assert at_1m["join_sparse_indexed"]["speedup"] >= 1.5

    # -- plan cache: parse cost amortisation ------------------------------
    db = Database()
    db.execute("create table g1 (v1 int64, v2 int64)")
    db.execute("insert into g1 values (1, 2), (2, 3)")
    statement = ("select v1, count(*) c from g1 where v1 != 0 "
                 "group by v1")
    n_statements = 500
    t_parse_every_time = best_of(
        lambda: [parse_statement(statement) for _ in range(n_statements)], 1)
    before = db.stats.snapshot()
    started = time.perf_counter()
    for _ in range(n_statements):
        db.execute(statement)
    t_cached_execute = time.perf_counter() - started
    delta = db.stats.snapshot().delta(before)
    hit_rate = delta.plan_cache_hits / max(delta.queries, 1)
    report["plan_cache"] = {
        "statements": n_statements,
        "hit_rate": hit_rate,
        "parse_only_s": t_parse_every_time,
        "cached_execute_s": t_cached_execute,
    }
    assert hit_rate > 0.99

    # -- end-to-end: Randomised Contraction with and without caches -------
    edges = gnm_random_graph(60_000, 110_000, np.random.default_rng(3))

    def run_rc(use_caches: bool):
        rc_db = Database(n_segments=4, use_plan_cache=use_caches,
                         use_index_cache=use_caches)
        load_edges_into(rc_db, "edges", edges)
        started = time.perf_counter()
        result = RandomisedContraction().run(rc_db, "edges", seed=99)
        elapsed = time.perf_counter() - started
        vertices, labels = result.labels(rc_db)
        order = np.argsort(vertices, kind="stable")
        return elapsed, vertices[order], labels[order], result.stats

    t_on, v_on, l_on, stats_on = run_rc(True)
    t_off, v_off, l_off, _ = run_rc(False)
    assert np.array_equal(v_on, v_off) and np.array_equal(l_on, l_off)
    report["end_to_end_rc"] = {
        "n_vertices": 60_000,
        "n_edges": 110_000,
        "caches_on_s": t_on,
        "caches_off_s": t_off,
        "speedup": t_off / t_on,
        "plan_cache_hits": stats_on.plan_cache_hits,
        "index_cache_hits": stats_on.index_cache_hits,
    }
    # Identical output is a hard guarantee; the wall-clock advantage is
    # asserted with slack for machine noise and reported exactly.
    assert t_on <= t_off * 1.10

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, default=float) + "\n")

    lines = ["ENGINE MICRO-BENCHMARKS (hash kernels vs seed sort-merge)", ""]
    for n, kernels in report["sizes"].items():
        for name, r in kernels.items():
            lines.append(
                f"  {name:<22s} n={n:>9,}  seed {r['seed_s'] * 1e3:8.2f} ms"
                f"  hash {r['hash_s'] * 1e3:8.2f} ms  speedup {r['speedup']:6.1f}x"
            )
    lines += [
        "",
        f"  plan cache hit rate      : {report['plan_cache']['hit_rate']:.3f}"
        f" over {n_statements} statements",
        f"  end-to-end RC (60k/110k) : {t_off:.3f}s -> {t_on:.3f}s "
        f"({report['end_to_end_rc']['speedup']:.2f}x, identical labels)",
    ]
    emit("BENCH_engine", "\n".join(lines))
