"""E-ENG — engine micro-benchmarks: kernels, caches, physical plans.

Not a paper table: this bench tracks the *engine's* performance trajectory
across PRs.  It measures the hash/dictionary kernels against the seed
sort-merge reference on synthetic single-column ``int64`` keys (the
dominant shape of every reproduced algorithm), the value of the table
index cache on repeated joins, the plan- and physical-plan-cache hit rates
over Randomised Contraction runs, the fused join->DISTINCT pipeline
against the materialising one, the segment-parallel kernels against their
single-threaded references, and the end-to-end effect with all caches on
vs. off.

Results land in ``benchmarks/results/BENCH_engine.json`` (ops/sec per
kernel and size) so successive PRs can diff engine throughput
(``make bench-compare`` diffs against ``benchmarks/baselines/``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import RandomisedContraction
from repro.graphs import gnm_random_graph
from repro.graphs.edgelist import EdgeList
from repro.graphs.io import load_edges_into
from repro.sqlengine import Database
from repro.sqlengine.mpp import SegmentPool
from repro.sqlengine.operators import (
    build_key_index,
    distinct_rows,
    join_indices,
    merge_join_indices,
    sorted_group_rows,
)
from repro.sqlengine.parallel import (
    AggregateSpec,
    group_aggregate,
    parallel_group_aggregate,
    parallel_join_indices,
    parallel_probe_indexed,
)
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.types import INT64, Column

from .conftest import emit

RESULTS_DIR = Path(__file__).parent / "results"

SIZES = [10_000, 100_000, 1_000_000]
REPS = 3


def best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def reference_distinct(columns):
    """The seed DISTINCT: lexsort-based grouping, first row per group,
    in the kernels' documented ascending-row output order."""
    order, starts = sorted_group_rows(columns)
    return np.sort(order[starts]) if order.size else order


def test_engine_microbench():
    rng = np.random.default_rng(20200420)
    report: dict = {"sizes": {}, "asserted": {}}

    for n in SIZES:
        # -- joins: probe n edge endpoints against n unique vertex ids ----
        dense_build = Column(rng.permutation(n).astype(np.int64), "int64")
        dense_probe = Column(rng.integers(0, n, n).astype(np.int64), "int64")
        sparse_values = rng.integers(0, 2 ** 62, n).astype(np.int64)
        sparse_build = Column(sparse_values, "int64")
        sparse_probe = Column(sparse_values[rng.integers(0, n, n)], "int64")
        sparse_index = build_key_index(sparse_build.values)

        t_seed_dense = best_of(
            lambda: merge_join_indices([dense_probe], [dense_build]))
        t_hash_dense = best_of(
            lambda: join_indices([dense_probe], [dense_build]))
        t_seed_sparse = best_of(
            lambda: merge_join_indices([sparse_probe], [sparse_build]))
        t_indexed_sparse = best_of(
            lambda: join_indices([sparse_probe], [sparse_build],
                                 right_index=sparse_index))

        # -- distinct over a dense key column with duplicates -------------
        distinct_input = Column(
            rng.integers(0, max(n // 3, 1), n).astype(np.int64), "int64")
        t_seed_distinct = best_of(lambda: reference_distinct([distinct_input]))
        t_hash_distinct = best_of(lambda: distinct_rows([distinct_input]))

        report["sizes"][n] = {
            "join_dense": {
                "seed_s": t_seed_dense, "hash_s": t_hash_dense,
                "speedup": t_seed_dense / t_hash_dense,
                "hash_rows_per_s": n / t_hash_dense,
            },
            "join_sparse_indexed": {
                "seed_s": t_seed_sparse, "hash_s": t_indexed_sparse,
                "speedup": t_seed_sparse / t_indexed_sparse,
                "hash_rows_per_s": n / t_indexed_sparse,
            },
            "distinct_dense": {
                "seed_s": t_seed_distinct, "hash_s": t_hash_distinct,
                "speedup": t_seed_distinct / t_hash_distinct,
                "hash_rows_per_s": n / t_hash_distinct,
            },
        }

    # Correctness spot-check at the largest size (full property coverage
    # lives in tests/test_operators.py).
    n = SIZES[-1]
    a = merge_join_indices([dense_probe], [dense_build])
    b = join_indices([dense_probe], [dense_build])
    assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
    assert np.array_equal(reference_distinct([distinct_input]),
                          distinct_rows([distinct_input]))

    # -- acceptance: >= 2x on the 1e6 single-column int64 kernels ---------
    at_1m = report["sizes"][SIZES[-1]]
    report["asserted"] = {
        "join_dense_speedup_1m": at_1m["join_dense"]["speedup"],
        "join_sparse_indexed_speedup_1m":
            at_1m["join_sparse_indexed"]["speedup"],
        "distinct_dense_speedup_1m": at_1m["distinct_dense"]["speedup"],
    }
    assert at_1m["join_dense"]["speedup"] >= 2.0
    assert at_1m["distinct_dense"]["speedup"] >= 2.0
    assert at_1m["join_sparse_indexed"]["speedup"] >= 1.5

    # -- plan cache: parse cost amortisation ------------------------------
    db = Database()
    db.execute("create table g1 (v1 int64, v2 int64)")
    db.execute("insert into g1 values (1, 2), (2, 3)")
    statement = ("select v1, count(*) c from g1 where v1 != 0 "
                 "group by v1")
    n_statements = 500
    t_parse_every_time = best_of(
        lambda: [parse_statement(statement) for _ in range(n_statements)], 1)
    before = db.stats.snapshot()
    started = time.perf_counter()
    for _ in range(n_statements):
        db.execute(statement)
    t_cached_execute = time.perf_counter() - started
    delta = db.stats.snapshot().delta(before)
    hit_rate = delta.plan_cache_hits / max(delta.queries, 1)
    report["plan_cache"] = {
        "statements": n_statements,
        "hit_rate": hit_rate,
        "parse_only_s": t_parse_every_time,
        "cached_execute_s": t_cached_execute,
    }
    assert hit_rate > 0.99

    # -- physical plans: hit rate over the Randomised Contraction loop ----
    # Steady-state behaviour: a database whose statement templates are warm
    # (a prior small run) re-executes every round-loop statement from its
    # cached physical plan; only validity checks and parameter patches
    # remain.  The cold (first-run) rate is recorded alongside.
    warm_edges = gnm_random_graph(2_000, 3_600, np.random.default_rng(5))
    measured_edges = gnm_random_graph(60_000, 110_000,
                                      np.random.default_rng(3))
    pp_db = Database(n_segments=4)
    load_edges_into(pp_db, "edges_warm", warm_edges)
    RandomisedContraction().run(pp_db, "edges_warm", seed=7)
    cold = pp_db.stats.snapshot()
    cold_planned = cold.physical_plan_hits + cold.physical_plan_misses
    load_edges_into(pp_db, "edges_main", measured_edges)
    RandomisedContraction().run(pp_db, "edges_main", seed=99)
    warm = pp_db.stats.snapshot().delta(cold)
    warm_planned = warm.physical_plan_hits + warm.physical_plan_misses
    report["physical_plan"] = {
        "cold_hit_rate": cold.physical_plan_hits / max(cold_planned, 1),
        "round_loop_hit_rate": warm.physical_plan_hits / max(warm_planned, 1),
        "round_loop_planned_statements": warm_planned,
        "invalidations": warm.physical_plan_invalidations,
        "fused_pipelines": warm.fused_pipelines,
    }
    assert report["physical_plan"]["round_loop_hit_rate"] >= 0.95
    assert warm.physical_plan_invalidations == 0

    # Warm-loop engagement proofs for the round-2 fusion kernels: the
    # contract DISTINCT pairs GF(2^64) representatives (unpackable -> hash
    # kernel); a sparse-vertex-id graph makes every round's build side a
    # sorted-index probe (forced 4-worker pool so the chunked path runs
    # even on single-core hosts); the table-strategy rounds' neigh-min is
    # the fused join->GROUP BY shape.
    assert warm.hash_distincts > 0
    report["physical_plan"]["rc_hash_distincts"] = warm.hash_distincts
    sparse_edges = EdgeList(measured_edges.src * 9973 + 5,
                            measured_edges.dst * 9973 + 5)
    probe_db = Database(n_segments=4, parallel=True)
    load_edges_into(probe_db, "edges_sparse", sparse_edges)
    RandomisedContraction().run(probe_db, "edges_sparse", seed=99)
    report["physical_plan"]["rc_parallel_indexed_probes"] = \
        probe_db.stats.parallel_indexed_probes
    assert probe_db.stats.parallel_indexed_probes > 0
    probe_db.close()
    rr_db = Database(n_segments=4)
    load_edges_into(rr_db, "edges_rr", warm_edges)
    RandomisedContraction(method="random-reals",
                          variant="deterministic-space").run(
        rr_db, "edges_rr", seed=7)
    report["physical_plan"]["rc_fused_group_pipelines"] = \
        rr_db.stats.fused_group_pipelines
    assert rr_db.stats.fused_group_pipelines > 0
    # The deterministic-space contract is a three-table chain (e ⋈ r ⋈ r):
    # its first join must stream into the fused final DISTINCT without
    # materialising, on the warm round loop.
    report["physical_plan"]["rc_join_chain_fusions"] = \
        rr_db.stats.join_chain_fusions
    assert rr_db.stats.join_chain_fusions > 0
    rr_db.close()
    # Dense vertex ids + a warm build-side index + a multi-worker pool:
    # the direct-address probe must chunk across the pool instead of
    # falling back single-threaded (the fourth closed bottleneck).
    dense_db = Database(n_segments=4, parallel=True)
    load_edges_into(dense_db, "edges_dense", measured_edges)
    RandomisedContraction().run(dense_db, "edges_dense", seed=99)
    report["physical_plan"]["rc_parallel_dense_probes"] = \
        dense_db.stats.parallel_dense_probes
    assert dense_db.stats.parallel_dense_probes > 0
    dense_db.close()
    pp_db.close()

    # -- dataflow scheduler: the statement-level dependency DAG overlaps
    # round i's composing CREATE with round i's contraction (and the cheap
    # retire tasks with the next round), where the old composer held one
    # background slot.  Labels must stay bit-identical to the serial
    # schedule, and the dataflow_overlaps counter must prove at least one
    # genuinely concurrent independent-statement pair per composed round.
    def run_overlap(parallel: bool):
        odb = Database(n_segments=4, parallel=parallel)
        load_edges_into(odb, "edges_ov", warm_edges)
        started = time.perf_counter()
        result = RandomisedContraction(variant="deterministic-space").run(
            odb, "edges_ov", seed=31)
        elapsed = time.perf_counter() - started
        vertices, labels = result.labels(odb)
        order = np.argsort(vertices, kind="stable")
        stats = odb.stats.snapshot()
        odb.close()
        return elapsed, vertices[order], labels[order], stats

    t_overlap, v_ov, l_ov, stats_ov = run_overlap(True)
    t_serial, v_se, l_se, stats_se = run_overlap(False)
    assert np.array_equal(v_ov, v_se) and np.array_equal(l_ov, l_se)
    assert stats_ov.overlapped_compositions > 0
    assert stats_se.overlapped_compositions == 0
    # Engagement: every composed round schedules >= 2 independent
    # statements concurrently (composition ∥ contraction), each recorded
    # as one overlap; the serial schedule must record none.  This bound
    # holds deterministically in practice: the contraction is submitted
    # microseconds after the composing CREATE, which joins the
    # never-shrinking label table (one row per vertex every round) and so
    # cannot have finished inside that window.
    assert stats_ov.dataflow_overlaps >= stats_ov.overlapped_compositions
    assert stats_se.dataflow_overlaps == 0
    report["overlapped_composition"] = {
        "rounds_overlapped": stats_ov.overlapped_compositions,
        "serial_s": t_serial,
        "overlapped_s": t_overlap,
        "speedup": t_serial / t_overlap,
    }
    report["dataflow"] = {
        "overlaps": stats_ov.dataflow_overlaps,
        "composed_rounds": stats_ov.overlapped_compositions,
        "overlaps_per_composed_round":
            stats_ov.dataflow_overlaps / stats_ov.overlapped_compositions,
        "serial_overlaps": stats_se.dataflow_overlaps,
    }

    # -- fast-variant composition chain on the dataflow scheduler ---------
    # The back-to-front composition loop writes a fresh scratch table per
    # round, so round k's retire (the drop of the composed-over tables) is
    # independent of round k-1's composing join and overlaps it on the
    # pool — the serial driver used to stall on every drop/rename.  Labels
    # and round counts stay bit-identical, and the warm loop resolves
    # every statement's effect sets from cached plan templates without a
    # single scheduler-side parse (effects_cache_hits).
    def run_fast_chain(parallel: bool):
        fdb = Database(n_segments=4, parallel=parallel)
        load_edges_into(fdb, "edges_fc", warm_edges)
        started = time.perf_counter()
        result = RandomisedContraction().run(fdb, "edges_fc", seed=31)
        elapsed = time.perf_counter() - started
        vertices, labels = result.labels(fdb)
        order = np.argsort(vertices, kind="stable")
        stats = fdb.stats.snapshot()
        fdb.close()
        return elapsed, vertices[order], labels[order], stats, result.rounds

    t_fast_ov, v_fc, l_fc, stats_fc, rounds_fc = run_fast_chain(True)
    t_fast_se, v_fs, l_fs, stats_fs, rounds_fs = run_fast_chain(False)
    assert rounds_fc == rounds_fs
    assert np.array_equal(v_fc, v_fs) and np.array_equal(l_fc, l_fs)
    composed_fast = rounds_fc - 1
    assert composed_fast >= 2  # the graph must actually exercise the chain
    # Engagement: round k's retire is still in flight when round k-1's
    # compose is submitted (the composing join over the still-large reps
    # tables cannot finish inside the submission window), so at least one
    # concurrent pair per composed round; none on the serial schedule.
    assert stats_fc.dataflow_overlaps >= composed_fast
    assert stats_fc.effects_cache_hits > 0
    assert stats_fs.dataflow_overlaps == 0
    report["fast_chain"] = {
        "rounds": rounds_fc,
        "composed_rounds": composed_fast,
        "overlaps": stats_fc.dataflow_overlaps,
        "effects_cache_hits": stats_fc.effects_cache_hits,
        "serial_s": t_fast_se,
        "overlapped_s": t_fast_ov,
        "speedup": t_fast_se / t_fast_ov,
    }

    # -- fusion: join -> DISTINCT vs the materialising pipeline -----------
    # Two shapes at 1e6 rows: the paper's narrow contract query (two
    # columns per table; the saved gathers sit inside allocator noise on
    # some hosts, so it is recorded informationally) and a wide-payload
    # variant where the materialising pipeline's full-column gathers are
    # structural cost — that one carries the acceptance assert.
    n_fuse = SIZES[-1]
    n_reps_rows = n_fuse // 3
    contract = ("select distinct v1, r2.rep as v2 from graph2, reps as r2 "
                "where graph2.v2 = r2.v and v1 != r2.rep")

    def fusion_db(use_fusion: bool, payload: int) -> Database:
        fdb = Database(n_segments=4, use_fusion=use_fusion)
        frng = np.random.default_rng(8)
        graph_cols = {
            "v1": frng.integers(0, n_reps_rows, n_fuse),
            "v2": frng.integers(0, n_reps_rows, n_fuse),
        }
        for i in range(payload):
            graph_cols[f"w{i}"] = frng.integers(0, 100, n_fuse)
        fdb.load_table("graph2", graph_cols, distributed_by="v2")
        reps_cols = {
            "v": np.arange(n_reps_rows, dtype=np.int64),
            "rep": frng.integers(0, n_reps_rows, n_reps_rows),
        }
        for i in range(payload // 2):
            reps_cols[f"p{i}"] = frng.integers(0, 9, n_reps_rows)
        fdb.load_table("reps", reps_cols, distributed_by="v")
        return fdb

    report["fused_distinct"] = {"rows": n_fuse}
    for shape, payload in (("contract", 0), ("wide", 4)):
        fused_db = fusion_db(True, payload)
        plain_db = fusion_db(False, payload)
        fused_rel = fused_db.execute(contract).relation
        plain_rel = plain_db.execute(contract).relation
        for name_f, name_p in zip(fused_rel.names, plain_rel.names):
            assert np.array_equal(fused_rel.column(name_f).values,
                                  plain_rel.column(name_p).values)
        t_fused = best_of(lambda: fused_db.execute(contract))
        t_plain = best_of(lambda: plain_db.execute(contract))
        assert fused_db.stats.fused_pipelines > 0
        report["fused_distinct"][shape] = {
            "materialising_s": t_plain,
            "fused_s": t_fused,
            "speedup": t_plain / t_fused,
        }
        fused_db.close()
        plain_db.close()
        del fused_db, plain_db
    # "Measurably faster": asserted on the wide shape, with CI slack.
    wide = report["fused_distinct"]["wide"]
    assert wide["fused_s"] <= wide["materialising_s"] * 0.95

    # -- fusion: join -> GROUP BY vs the materialising pipeline ------------
    # The table-strategy round's neigh-min shape: aggregate directly over
    # the probe stream.  Same two payload shapes as the DISTINCT fusion;
    # the acceptance assert rides on the wide one.
    group_query = ("select v1, min(r2.rep) hmin, count(*) c from graph2, "
                   "reps as r2 where graph2.v2 = r2.v group by v1")
    report["fused_group_by"] = {"rows": n_fuse}
    for shape, payload in (("contract", 0), ("wide", 4)):
        fg_db = fusion_db(True, payload)
        pg_db = fusion_db(False, payload)
        fused_rel = fg_db.execute(group_query).relation
        plain_rel = pg_db.execute(group_query).relation
        for name_f, name_p in zip(fused_rel.names, plain_rel.names):
            assert np.array_equal(fused_rel.column(name_f).values,
                                  plain_rel.column(name_p).values)
        t_fused_g = best_of(lambda: fg_db.execute(group_query))
        t_plain_g = best_of(lambda: pg_db.execute(group_query))
        assert fg_db.stats.fused_group_pipelines > 0
        assert pg_db.stats.fused_group_pipelines == 0
        report["fused_group_by"][shape] = {
            "materialising_s": t_plain_g,
            "fused_s": t_fused_g,
            "speedup": t_plain_g / t_fused_g,
        }
        fg_db.close()
        pg_db.close()
        del fg_db, pg_db
    wide_group = report["fused_group_by"]["wide"]
    assert wide_group["fused_s"] <= wide_group["materialising_s"] * 0.95

    # -- join-chain fusion: the contract chain (e ⋈ r ⋈ r -> DISTINCT) -----
    # The first join feeds the final join's probe side; the chained plan
    # composes row maps instead of materialising the intermediate (which
    # in the wide shape carries the payload columns at ~1e6 rows).
    chain_query = ("select distinct rv.rep as v1, rw.rep as v2 "
                   "from graph2, reps as rv, reps as rw "
                   "where graph2.v1 = rv.v and graph2.v2 = rw.v "
                   "and rv.rep != rw.rep")
    report["join_chain"] = {"rows": n_fuse}
    for shape, payload in (("contract", 0), ("wide", 4)):
        chain_db = fusion_db(True, payload)
        plain_db = fusion_db(False, payload)
        chained_rel = chain_db.execute(chain_query).relation
        plain_rel = plain_db.execute(chain_query).relation
        for name_f, name_p in zip(chained_rel.names, plain_rel.names):
            assert np.array_equal(chained_rel.column(name_f).values,
                                  plain_rel.column(name_p).values)
        t_chained = best_of(lambda: chain_db.execute(chain_query))
        t_materialised = best_of(lambda: plain_db.execute(chain_query))
        assert chain_db.stats.join_chain_fusions > 0
        assert plain_db.stats.join_chain_fusions == 0
        report["join_chain"][shape] = {
            "materialising_s": t_materialised,
            "chained_s": t_chained,
            "speedup": t_materialised / t_chained,
        }
        chain_db.close()
        plain_db.close()
        del chain_db, plain_db
    wide_chain = report["join_chain"]["wide"]
    assert wide_chain["chained_s"] <= wide_chain["materialising_s"] * 0.95

    # -- LEFT JOIN inside the chain: chained outer join vs materialising ---
    # The compose-shaped tail (join -> left outer join -> DISTINCT): the
    # outer join's null-extended rows ride the composed row maps as a
    # validity mask instead of materialising the padded intermediate.
    left_chain_query = (
        "select distinct rv.rep as v1, lj.rep as v2 from graph2 "
        "join reps as rv on (graph2.v2 = rv.v) "
        "left outer join reps as lj on (rv.rep = lj.v)")
    report["left_chain"] = {"rows": n_fuse}
    for shape, payload in (("contract", 0), ("wide", 4)):
        lc_db = fusion_db(True, payload)
        lp_db = fusion_db(False, payload)
        chained_rel = lc_db.execute(left_chain_query).relation
        plain_rel = lp_db.execute(left_chain_query).relation
        for name_f, name_p in zip(chained_rel.names, plain_rel.names):
            mine = chained_rel.column(name_f)
            theirs = plain_rel.column(name_p)
            assert np.array_equal(mine.null_mask(), theirs.null_mask())
            valid = ~mine.null_mask()
            assert np.array_equal(mine.values[valid], theirs.values[valid])
        t_left_chained = best_of(lambda: lc_db.execute(left_chain_query))
        t_left_plain = best_of(lambda: lp_db.execute(left_chain_query))
        assert lc_db.stats.left_chain_fusions > 0
        assert lp_db.stats.left_chain_fusions == 0
        report["left_chain"][shape] = {
            "materialising_s": t_left_plain,
            "chained_s": t_left_chained,
            "speedup": t_left_plain / t_left_chained,
        }
        lc_db.close()
        lp_db.close()
        del lc_db, lp_db
    wide_left = report["left_chain"]["wide"]
    assert wide_left["chained_s"] <= wide_left["materialising_s"] * 0.95

    # -- hash DISTINCT: unpackable sparse pairs vs the lexsort reference ---
    # Two full-range 64-bit key columns defeat the int-pair packing, which
    # used to mean a lexsort over every row; the hash kernel touches each
    # row O(1) times and only ever sorts nothing.
    n_hash = SIZES[-1]
    hash_rng = np.random.default_rng(14)
    report["hash_distinct"] = {"rows": n_hash}
    for shape, dup in (("unique_heavy", 0.0), ("duplicate_heavy", 0.9)):
        n_base = max(int(n_hash * (1 - dup)), 1)
        base_a = hash_rng.integers(0, 2 ** 62, n_base)
        base_b = hash_rng.integers(0, 2 ** 62, n_base)
        pick = hash_rng.integers(0, n_base, n_hash)
        pair = [Column(base_a[pick], INT64), Column(base_b[pick], INT64)]
        note: list = []
        got = distinct_rows(pair, note=note)
        assert note == ["hash"]
        assert np.array_equal(got, reference_distinct(pair))
        t_lexsort = best_of(lambda: reference_distinct(pair))
        t_hash_pair = best_of(lambda: distinct_rows(pair))
        report["hash_distinct"][shape] = {
            "lexsort_s": t_lexsort,
            "hash_s": t_hash_pair,
            "speedup": t_lexsort / t_hash_pair,
        }
    assert report["hash_distinct"]["duplicate_heavy"]["speedup"] >= 1.2

    # -- subquery result cache: repeated scalar statements -----------------
    cache_db = Database(n_segments=4)
    cache_rng = np.random.default_rng(15)
    cache_db.load_table("big", {"v": cache_rng.integers(0, 1000, SIZES[-1])})
    scalar_query = "select count(*) from big"
    started = time.perf_counter()
    assert cache_db.execute(scalar_query).scalar() == SIZES[-1]
    t_cache_cold = time.perf_counter() - started
    n_repeats = 200
    started = time.perf_counter()
    for _ in range(n_repeats):
        cache_db.execute(scalar_query)
    t_cache_warm = (time.perf_counter() - started) / n_repeats
    report["result_cache"] = {
        "rows": SIZES[-1],
        "cold_s": t_cache_cold,
        "warm_s": t_cache_warm,
        "speedup": t_cache_cold / t_cache_warm,
        "hits": cache_db.stats.subquery_cache_hits,
    }
    assert cache_db.stats.subquery_cache_hits == n_repeats
    assert t_cache_warm < t_cache_cold
    # Alternating parameter sets — the shape that thrashed the old
    # one-entry-per-template slot — must now sustain a >= 0.9 hit rate on
    # the multi-entry LRU (one cold miss per parameterisation, hits after).
    alt_before = cache_db.stats.snapshot()
    alt_queries = ["select count(*) c from big where v < 200",
                   "select count(*) c from big where v < 600",
                   "select count(*) c from big where v < 900"]
    n_alt_rounds = 20
    for _ in range(n_alt_rounds):
        for alt_query in alt_queries:
            cache_db.execute(alt_query)
    alt = cache_db.stats.snapshot().delta(alt_before)
    alt_rate = alt.subquery_cache_hits / max(
        alt.subquery_cache_hits + alt.subquery_cache_misses, 1)
    report["result_cache"]["alternating_hit_rate"] = alt_rate
    report["result_cache"]["alternating_evictions"] = \
        alt.subquery_cache_evictions
    assert alt_rate >= 0.9
    assert alt.subquery_cache_evictions == 0
    cache_db.close()

    # -- segment-parallel kernels vs single-threaded references -----------
    n_par = SIZES[-1]
    n_workers = min(4, os.cpu_count() or 1)
    pool = SegmentPool(4, max_workers=4)
    prng = np.random.default_rng(21)
    par_left = Column(prng.integers(0, n_par, n_par), INT64)
    par_right = Column(
        np.concatenate([
            prng.permutation(n_par),
            prng.integers(0, n_par, n_par // 8),
        ]).astype(np.int64), INT64)
    ref_join = join_indices([par_left], [par_right])
    par_join = parallel_join_indices([par_left], [par_right], pool)
    assert np.array_equal(ref_join[0], par_join[0])
    assert np.array_equal(ref_join[1], par_join[1])
    t_join_single = best_of(lambda: join_indices([par_left], [par_right]))
    t_join_parallel = best_of(
        lambda: parallel_join_indices([par_left], [par_right], pool))

    agg_keys = prng.integers(0, 10_000, n_par)
    agg_values = prng.integers(-1000, 1000, n_par)
    specs = [AggregateSpec("count*"),
             AggregateSpec("min", agg_values, None, INT64),
             AggregateSpec("sum", agg_values, None, INT64)]
    ref_agg = group_aggregate(agg_keys, specs)
    par_agg = parallel_group_aggregate(agg_keys, specs, pool)
    assert np.array_equal(ref_agg[0], par_agg[0])
    for (ref_vals, _), (par_vals, _) in zip(ref_agg[1], par_agg[1]):
        assert np.array_equal(ref_vals, par_vals)
    t_agg_single = best_of(lambda: group_aggregate(agg_keys, specs))
    t_agg_parallel = best_of(
        lambda: parallel_group_aggregate(agg_keys, specs, pool))

    # Partitioned probe of a cached sorted index (the warm-loop case the
    # hash-partitioned kernel cannot serve): sparse unique build keys force
    # the sorted probe, chunked across the pool.
    sparse_build = Column(prng.permutation(np.arange(n_par) * 9973 + 7), INT64)
    sparse_probe = Column(
        sparse_build.values[prng.integers(0, n_par, n_par)], INT64)
    probe_index = build_key_index(sparse_build.values)
    probe_note: list = []
    ref_probe = join_indices([sparse_probe], [sparse_build],
                             right_index=probe_index)
    par_probe = parallel_probe_indexed([sparse_probe], [sparse_build],
                                       probe_index, pool, probe_note)
    assert probe_note == ["parallel-probe"]
    assert np.array_equal(ref_probe[0], par_probe[0])
    assert np.array_equal(ref_probe[1], par_probe[1])
    t_probe_single = best_of(
        lambda: join_indices([sparse_probe], [sparse_build],
                             right_index=probe_index))
    t_probe_parallel = best_of(
        lambda: parallel_probe_indexed([sparse_probe], [sparse_build],
                                       probe_index, pool))

    report["parallel"] = {
        "rows": n_par,
        "cpu_count": os.cpu_count(),
        "workers": pool.n_workers,
        "join_single_s": t_join_single,
        "join_parallel_s": t_join_parallel,
        "join_speedup": t_join_single / t_join_parallel,
        "aggregate_single_s": t_agg_single,
        "aggregate_parallel_s": t_agg_parallel,
        "aggregate_speedup": t_agg_single / t_agg_parallel,
        "indexed_probe_single_s": t_probe_single,
        "indexed_probe_parallel_s": t_probe_parallel,
        "indexed_probe_speedup": t_probe_single / t_probe_parallel,
    }
    if n_workers >= 4:
        # The acceptance bar applies on multi-core runners; single-core
        # hosts record the (necessarily ~1x) numbers informationally.
        assert report["parallel"]["join_speedup"] >= 1.5
        assert report["parallel"]["aggregate_speedup"] >= 1.5
        assert report["parallel"]["indexed_probe_speedup"] >= 1.3

    # -- UNION ALL arm fan-out on the segment pool -------------------------
    # Three independent heavy arms (1e6-row GROUP BYs): all but the
    # driver's share offload as pool tasks, the concatenation keeps exact
    # arm order, and the offloaded arms' scratch folds back into the
    # statement's accounting byte-for-byte.
    def union_db(parallel: bool) -> Database:
        udb = Database(n_segments=4, parallel=parallel,
                       use_result_cache=False)
        urng = np.random.default_rng(23)
        udb.load_table("u", {
            "v1": urng.integers(0, n_par // 4, n_par),
            "v2": urng.integers(0, n_par // 4, n_par),
        }, distributed_by="v1")
        return udb

    union_sql = (
        "select v1 k, count(*) c from u group by v1 "
        "union all select v2, count(*) from u group by v2 "
        "union all select v1, max(v2) from u where v2 > 100 group by v1")
    us_db, up_db = union_db(False), union_db(True)
    union_expected = us_db.execute(union_sql)
    union_got = up_db.execute(union_sql)
    assert union_got.names == union_expected.names
    assert union_got.rows() == union_expected.rows()  # exact serial concat
    t_union_serial = best_of(lambda: us_db.execute(union_sql))
    t_union_parallel = best_of(lambda: up_db.execute(union_sql))
    assert up_db.stats.union_arm_overlaps > 0
    assert us_db.stats.union_arm_overlaps == 0
    assert up_db.stats.motion_bytes == us_db.stats.motion_bytes
    report["union_fanout"] = {
        "rows": n_par,
        "arms": 3,
        "overlapped_arms": up_db.stats.union_arm_overlaps,
        "serial_s": t_union_serial,
        "parallel_s": t_union_parallel,
        "speedup": t_union_serial / t_union_parallel,
    }
    us_db.close()
    up_db.close()
    if n_workers >= 4:
        assert report["union_fanout"]["speedup"] >= 1.05

    # -- GROUP BY sort skip over a pre-sorted stored column ----------------
    grng = np.random.default_rng(2)
    group_keys_sorted = np.repeat(np.arange(n_par // 4, dtype=np.int64), 4)
    weights = grng.integers(0, 1000, n_par)
    sorted_db = Database(n_segments=4)
    sorted_db.load_table("s", {"v": group_keys_sorted, "w": weights})
    group_query = "select v, count(*) c, min(w) lo, sum(w) s from s group by v"
    sorted_db.execute(group_query)  # warms the index
    t_presorted = best_of(lambda: sorted_db.execute(group_query))
    unsorted_db = Database(n_segments=4)
    shuffle = grng.permutation(n_par)
    unsorted_db.load_table("u", {"v": group_keys_sorted[shuffle],
                                 "w": weights[shuffle]})
    unsorted_query = "select v, count(*) c, min(w) lo, sum(w) s from u group by v"
    unsorted_db.execute(unsorted_query)
    t_shuffled = best_of(lambda: unsorted_db.execute(unsorted_query))
    assert sorted_db.stats.group_sorts_skipped > 0
    report["group_sort_skip"] = {
        "rows": n_par,
        "presorted_s": t_presorted,
        "shuffled_s": t_shuffled,
        "speedup": t_shuffled / t_presorted,
    }

    # -- process backend: end-to-end RC, threads vs worker processes -------
    # The tentpole measurement: the same contraction run with the kernels
    # dispatched to worker processes over shared-memory columns.  On
    # multi-core runners a 1e6-edge graph carries the >= 1.25x acceptance
    # bar (threads serialise on the GIL everywhere numpy does not release
    # it); single-core hosts run a smaller graph with a forced pool purely
    # to prove engagement, and record the (necessarily ~1x) numbers
    # informationally.  JSON keys are identical on both paths.
    import repro.sqlengine.executor as executor_module

    if n_workers >= 4:
        proc_edges = gnm_random_graph(400_000, 1_000_000,
                                      np.random.default_rng(41))
        proc_workers, proc_min_rows = None, executor_module.PARALLEL_MIN_ROWS
    else:
        proc_edges = gnm_random_graph(30_000, 55_000,
                                      np.random.default_rng(41))
        proc_workers, proc_min_rows = 4, 1

    def run_backend(backend: str):
        original = executor_module.PARALLEL_MIN_ROWS
        executor_module.PARALLEL_MIN_ROWS = proc_min_rows
        try:
            bdb = Database(n_segments=4, parallel=True, pool_backend=backend,
                           pool_workers=proc_workers, use_index_cache=False)
            load_edges_into(bdb, "edges_pp", proc_edges)
            started = time.perf_counter()
            result = RandomisedContraction().run(bdb, "edges_pp", seed=77)
            elapsed = time.perf_counter() - started
            vertices, labels = result.labels(bdb)
            order = np.argsort(vertices, kind="stable")
            stats = bdb.stats.snapshot()
            shm_names = (bdb.pool.registry.created_names()
                         if bdb.pool.supports_processes else set())
            bdb.close()
            return elapsed, vertices[order], labels[order], stats, shm_names
        finally:
            executor_module.PARALLEL_MIN_ROWS = original

    t_thread_rc, v_th, l_th, stats_th, _ = run_backend("thread")
    t_process_rc, v_pr, l_pr, stats_pr, shm_names = run_backend("process")
    assert np.array_equal(v_th, v_pr) and np.array_equal(l_th, l_pr)
    assert stats_pr.process_tasks > 0          # kernels really crossed
    assert stats_pr.stats_merges > 0           # ... and merged their deltas
    assert stats_th.process_tasks == 0
    # close() must have unlinked every exported block.
    assert not any(os.path.exists(f"/dev/shm/{name}") for name in shm_names)
    report["process_pool"] = {
        "edges": proc_edges.n_edges,
        "thread_s": t_thread_rc,
        "process_s": t_process_rc,
        "speedup": t_thread_rc / t_process_rc,
        "process_tasks": stats_pr.process_tasks,
        "shm_bytes_exported": stats_pr.shm_bytes_exported,
        "cpu_count": os.cpu_count(),
        "workers": proc_workers or min(4, os.cpu_count() or 1),
    }
    if n_workers >= 4:
        assert report["process_pool"]["speedup"] >= 1.25

    # -- end-to-end: Randomised Contraction with and without caches -------
    edges = gnm_random_graph(60_000, 110_000, np.random.default_rng(3))

    def run_rc(use_caches: bool):
        rc_db = Database(n_segments=4, use_plan_cache=use_caches,
                         use_index_cache=use_caches,
                         use_physical_plans=use_caches,
                         use_fusion=use_caches,
                         use_result_cache=use_caches)
        load_edges_into(rc_db, "edges", edges)
        started = time.perf_counter()
        result = RandomisedContraction().run(rc_db, "edges", seed=99)
        elapsed = time.perf_counter() - started
        vertices, labels = result.labels(rc_db)
        order = np.argsort(vertices, kind="stable")
        rc_db.close()
        return elapsed, vertices[order], labels[order], result.stats

    t_on, v_on, l_on, stats_on = run_rc(True)
    t_off, v_off, l_off, _ = run_rc(False)
    assert np.array_equal(v_on, v_off) and np.array_equal(l_on, l_off)
    report["end_to_end_rc"] = {
        "n_vertices": 60_000,
        "n_edges": 110_000,
        "caches_on_s": t_on,
        "caches_off_s": t_off,
        "speedup": t_off / t_on,
        "plan_cache_hits": stats_on.plan_cache_hits,
        "index_cache_hits": stats_on.index_cache_hits,
        "effects_cache_hits": stats_on.effects_cache_hits,
    }
    # The warm round loop must derive its scheduler effect sets from the
    # plan cache's templates, never re-parsing a statement for hazards.
    assert stats_on.effects_cache_hits > 0
    # Identical output is a hard guarantee; the wall-clock advantage is
    # asserted with slack for machine noise and reported exactly.
    assert t_on <= t_off * 1.10

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, default=float) + "\n")

    lines = ["ENGINE MICRO-BENCHMARKS (hash kernels vs seed sort-merge)", ""]
    for n, kernels in report["sizes"].items():
        for name, r in kernels.items():
            lines.append(
                f"  {name:<22s} n={n:>9,}  seed {r['seed_s'] * 1e3:8.2f} ms"
                f"  hash {r['hash_s'] * 1e3:8.2f} ms  speedup {r['speedup']:6.1f}x"
            )
    pp = report["physical_plan"]
    fused = report["fused_distinct"]
    fused_g = report["fused_group_by"]
    chain = report["join_chain"]
    left_chain = report["left_chain"]
    dataflow = report["dataflow"]
    hashed = report["hash_distinct"]
    rcache = report["result_cache"]
    par = report["parallel"]
    skip = report["group_sort_skip"]
    proc = report["process_pool"]
    overlap = report["overlapped_composition"]
    fast_chain = report["fast_chain"]
    union_fan = report["union_fanout"]
    lines += [
        "",
        f"  plan cache hit rate      : {report['plan_cache']['hit_rate']:.3f}"
        f" over {n_statements} statements",
        f"  physical plan hit rate   : {pp['round_loop_hit_rate']:.3f} on the"
        f" warm RC round loop ({pp['round_loop_planned_statements']} planned"
        f" statements; cold run {pp['cold_hit_rate']:.3f})",
        f"  warm-loop kernel proofs  : {pp['rc_hash_distincts']} hash"
        f" DISTINCTs, {pp['rc_parallel_indexed_probes']} parallel indexed"
        f" probes, {pp['rc_parallel_dense_probes']} parallel dense probes,"
        f" {pp['rc_fused_group_pipelines']} fused join->GROUP BYs,"
        f" {pp['rc_join_chain_fusions']} join-chain fusions",
        f"  overlapped composition   : {overlap['rounds_overlapped']} rounds"
        f" overlapped, {t_serial:.3f}s -> {t_overlap:.3f}s"
        f" ({overlap['speedup']:.2f}x, identical labels)",
        f"  fused join->DISTINCT 1e6 : wide"
        f" {fused['wide']['materialising_s'] * 1e3:.1f} ms ->"
        f" {fused['wide']['fused_s'] * 1e3:.1f} ms"
        f" ({fused['wide']['speedup']:.2f}x); contract shape"
        f" {fused['contract']['speedup']:.2f}x",
        f"  fused join->GROUP BY 1e6 : wide"
        f" {fused_g['wide']['materialising_s'] * 1e3:.1f} ms ->"
        f" {fused_g['wide']['fused_s'] * 1e3:.1f} ms"
        f" ({fused_g['wide']['speedup']:.2f}x); contract shape"
        f" {fused_g['contract']['speedup']:.2f}x",
        f"  join-chain fusion 1e6    : wide"
        f" {chain['wide']['materialising_s'] * 1e3:.1f} ms ->"
        f" {chain['wide']['chained_s'] * 1e3:.1f} ms"
        f" ({chain['wide']['speedup']:.2f}x); contract shape"
        f" {chain['contract']['speedup']:.2f}x",
        f"  left-join chain 1e6      : wide"
        f" {left_chain['wide']['materialising_s'] * 1e3:.1f} ms ->"
        f" {left_chain['wide']['chained_s'] * 1e3:.1f} ms"
        f" ({left_chain['wide']['speedup']:.2f}x); contract shape"
        f" {left_chain['contract']['speedup']:.2f}x",
        f"  dataflow scheduler       : {dataflow['overlaps']} overlapped"
        f" statement pairs over {dataflow['composed_rounds']} composed"
        f" rounds ({dataflow['overlaps_per_composed_round']:.1f}/round,"
        f" serial records {dataflow['serial_overlaps']})",
        f"  fast-variant chain       : {fast_chain['overlaps']} overlaps over"
        f" {fast_chain['composed_rounds']} composed rounds,"
        f" {fast_chain['serial_s']:.3f}s -> {fast_chain['overlapped_s']:.3f}s"
        f" ({fast_chain['speedup']:.2f}x, {fast_chain['effects_cache_hits']}"
        f" effect-set cache hits, identical labels)",
        f"  union-arm fan-out 1e6    : {union_fan['serial_s'] * 1e3:.1f} ms ->"
        f" {union_fan['parallel_s'] * 1e3:.1f} ms"
        f" ({union_fan['speedup']:.2f}x, {union_fan['overlapped_arms']}"
        f" offloaded arms, exact serial concat)",
        f"  hash pair-DISTINCT 1e6   : dup-heavy"
        f" {hashed['duplicate_heavy']['lexsort_s'] * 1e3:.1f} ms ->"
        f" {hashed['duplicate_heavy']['hash_s'] * 1e3:.1f} ms"
        f" ({hashed['duplicate_heavy']['speedup']:.2f}x); unique-heavy"
        f" {hashed['unique_heavy']['speedup']:.2f}x",
        f"  result cache (count(*))  : {rcache['cold_s'] * 1e3:.2f} ms ->"
        f" {rcache['warm_s'] * 1e6:.1f} us"
        f" ({rcache['hits']} hits; alternating-params hit rate"
        f" {rcache['alternating_hit_rate']:.3f})",
        f"  parallel join 1e6        : {par['join_single_s'] * 1e3:.1f} ms ->"
        f" {par['join_parallel_s'] * 1e3:.1f} ms"
        f" ({par['join_speedup']:.2f}x, {par['workers']} workers,"
        f" {par['cpu_count']} cpus)",
        f"  parallel aggregate 1e6   : {par['aggregate_single_s'] * 1e3:.1f} ms"
        f" -> {par['aggregate_parallel_s'] * 1e3:.1f} ms"
        f" ({par['aggregate_speedup']:.2f}x)",
        f"  parallel indexed probe   : {par['indexed_probe_single_s'] * 1e3:.1f}"
        f" ms -> {par['indexed_probe_parallel_s'] * 1e3:.1f} ms"
        f" ({par['indexed_probe_speedup']:.2f}x)",
        f"  presorted GROUP BY 1e6   : {skip['shuffled_s'] * 1e3:.1f} ms"
        f" (shuffled) vs {skip['presorted_s'] * 1e3:.1f} ms (sort skipped,"
        f" {skip['speedup']:.2f}x)",
        f"  process-backend RC       : {proc['edges']:,} edges,"
        f" threads {proc['thread_s']:.3f}s -> processes"
        f" {proc['process_s']:.3f}s ({proc['speedup']:.2f}x,"
        f" {proc['process_tasks']} worker tasks,"
        f" {proc['workers']} workers, {proc['cpu_count']} cpus,"
        f" identical labels)",
        f"  end-to-end RC (60k/110k) : {t_off:.3f}s -> {t_on:.3f}s "
        f"({report['end_to_end_rc']['speedup']:.2f}x, identical labels)",
    ]
    emit("BENCH_engine", "\n".join(lines))
