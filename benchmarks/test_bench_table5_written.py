"""E-T5 — Table V: total data written.

The paper's shape: "Here Randomised Contraction is best in most cases" —
RC writes the least data overall because its per-round tables shrink
geometrically, while Two-Phase and Hash-to-Min rewrite full-size state
every round.
"""

from repro.bench.tables import algo_code, render_table5

from .conftest import emit


def test_table5_written_shapes(benchmark, harness, suite_outcomes):
    benchmark.pedantic(
        lambda: harness.run_once("pathunion10", "rc"), rounds=1, iterations=1
    )
    cells = {(o.dataset, algo_code(o.algorithm)): o for o in suite_outcomes}
    datasets = sorted({o.dataset for o in suite_outcomes})

    rc_best = 0
    comparisons = 0
    for dataset in datasets:
        rc = cells[(dataset, "rc")]
        if not rc.ok:
            continue
        finished = [cells[(dataset, code)] for code in ("hm", "tp", "cr")
                    if cells[(dataset, code)].ok]
        if not finished:
            continue
        comparisons += 1
        if all(rc.written_bytes <= o.written_bytes for o in finished):
            rc_best += 1
    # "best in most cases" — strictly more than half.
    assert rc_best > comparisons / 2, (rc_best, comparisons)
    emit("table5", render_table5(suite_outcomes))
