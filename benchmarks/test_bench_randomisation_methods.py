"""E-RM — Section V-C ablation: the three randomisation methods.

The paper motivates the finite-fields method as the cheapest of three
correct randomisation strategies: random reals achieve full randomisation
but ship a random table per round; encryption (Blowfish) avoids the table
but costs cipher evaluations; GF(2^64) affine maps cost a handful of XORs.
This ablation runs Randomised Contraction under every method on the same
dataset and reports rounds, runtime, data written and data motion.
"""

from repro.core import RandomisedContraction

from .conftest import emit

CONFIGS = [
    ("finite-fields", "fast"),
    ("prime-field", "fast"),
    ("encryption", "deterministic-space"),
    ("random-reals", "deterministic-space"),
    ("finite-fields", "deterministic-space"),
]


def test_randomisation_method_ablation(benchmark, harness):
    dataset = "bitcoin_addresses"

    def run_all():
        outcomes = {}
        for method, variant in CONFIGS:
            algo = RandomisedContraction(method=method, variant=variant)
            outcomes[(method, variant)] = harness.run_once(
                dataset, algo, seed_offset=5
            )
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    components = {o.n_components for o in outcomes.values()}
    assert len(components) == 1  # all methods agree, of course

    # All randomised methods keep the round count logarithmic and similar.
    rounds = [o.rounds for o in outcomes.values()]
    assert max(rounds) <= 2 * min(rounds) + 4

    # The random-reals method must move the per-vertex random table across
    # the cluster: its motion exceeds the finite-fields fast variant's.
    ff = outcomes[("finite-fields", "fast")]
    reals = outcomes[("random-reals", "deterministic-space")]
    assert reals.motion_bytes > ff.motion_bytes

    lines = [
        "SECTION V-C - RANDOMISATION METHOD ABLATION "
        f"(dataset: {dataset})",
        "",
        f"  {'method':14s} {'variant':20s} {'rounds':>6s} {'seconds':>8s} "
        f"{'written':>10s} {'motion':>10s}",
    ]
    for (method, variant), outcome in outcomes.items():
        lines.append(
            f"  {method:14s} {variant:20s} {outcome.rounds:>6d} "
            f"{outcome.seconds:>8.2f} {outcome.written_bytes:>10,d} "
            f"{outcome.motion_bytes:>10,d}"
        )
    emit("randomisation_methods", "\n".join(lines))
