"""E-F2 — Figure 2 / Section V-B: the sequential-path worst case.

Without randomisation, min-contraction on a sequentially numbered path
removes one vertex per round (Figure 2a): n - 1 rounds.  Randomising the
vertex order per round (the algorithm's core idea) brings this to
O(log n).  This bench demonstrates both on the same input.
"""

import math

from repro import connected_components
from repro.core import RandomisedContraction
from repro.graphs import path_graph

from .conftest import emit

N = 512


def test_figure2_worst_case_vs_randomised(benchmark):
    edges = path_graph(N)

    def run_both():
        identity = connected_components(
            edges, RandomisedContraction(method="identity"), seed=1
        )
        randomised = connected_components(edges, "rc", seed=1)
        return identity, randomised

    identity, randomised = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert identity.run.rounds == N - 1
    assert randomised.run.rounds <= 3 * math.log2(N)
    emit("figure2", "\n".join([
        "FIGURE 2 / SECTION V-B - WORST-CASE PATH CONTRACTION",
        "",
        f"  sequentially numbered path, n = {N}",
        f"  identity (no randomisation): {identity.run.rounds} rounds "
        f"(= n - 1, Figure 2a)",
        f"  randomised contraction     : {randomised.run.rounds} rounds "
        f"(log2 n = {math.log2(N):.0f})",
        f"  identity runtime           : {identity.run.elapsed_seconds:.2f}s",
        f"  randomised runtime         : {randomised.run.elapsed_seconds:.2f}s",
    ]))
