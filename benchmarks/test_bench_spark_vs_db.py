"""E-SP — Section VII-C: database vs Spark SQL, and the Cracker comparison.

The paper runs Randomised Contraction on Lulli et al.'s hardest dataset
("Streets of Italy": RC in-database 143 s vs Cracker-in-database 261 s vs
the published Spark Cracker 1338 s), and separately measures the same RC
SQL running ~2.3x slower on Spark SQL than in-database.

This bench reproduces both comparisons on the streets substitute: RC vs
Cracker on the MPP engine, and RC on the MPP engine vs the modelled Spark
backend.
"""

from repro.bench import Harness
from repro.spark import SparkSQLDatabase

from .conftest import emit


def test_streets_rc_beats_cracker_and_spark_is_slower(benchmark):
    dataset = "streets_of_italy"
    reps = 3  # sub-second runs are noise-dominated; take best-of
    # The RC-vs-Cracker gap is asymptotic (per-query overhead dominates on
    # tiny inputs, and RC issues ~2x the statements); at the default half
    # scale the two are within noise of each other.  This comparison runs
    # its own full-scale harness, where RC wins by ~1.5x reproducibly.
    harness = Harness(scale=1.0)

    def run_all():
        rc_db = min((harness.run_once(dataset, "rc", seed_offset=1)
                     for _ in range(reps)), key=lambda o: o.seconds)
        cr_db = min((harness.run_once(dataset, "cr", seed_offset=1)
                     for _ in range(reps)), key=lambda o: o.seconds)
        rc_spark = min((harness.run_once(dataset, "rc", seed_offset=1,
                                         db_factory=_spark_factory)
                        for _ in range(reps)), key=lambda o: o.seconds)
        return rc_db, cr_db, rc_spark

    rc_db, cr_db, rc_spark = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert rc_db.ok and cr_db.ok and rc_spark.ok
    assert rc_db.n_components == cr_db.n_components == rc_spark.n_components

    # Paper shape 1: RC in-database beats the Cracker port (143 s vs 261 s).
    assert rc_db.seconds < cr_db.seconds

    # Paper shape 2: the same SQL on the Spark model is slower (x2.3 in the
    # paper; the exact factor depends on scale, so assert direction and
    # report the measured ratio).
    ratio = rc_spark.seconds / rc_db.seconds
    assert ratio > 1.0, ratio

    emit("spark_vs_db", "\n".join([
        "SECTION VII-C - EXECUTION ENVIRONMENTS (streets-of-italy substitute)",
        "",
        f"  RC  in-database : {rc_db.seconds:7.2f}s   (paper: 143 s)",
        f"  CR  in-database : {cr_db.seconds:7.2f}s   (paper: 261 s)",
        f"  RC  on Spark SQL: {rc_spark.seconds:7.2f}s",
        "",
        f"  Spark/in-db ratio for identical SQL: {ratio:.2f}x "
        "(paper: ~2.3x)",
        f"  extra data motion on Spark: "
        f"{rc_spark.motion_bytes / max(rc_db.motion_bytes, 1):.1f}x",
    ]))


def _spark_factory(n_segments=4, space_budget_bytes=None):
    return SparkSQLDatabase(
        n_segments=n_segments, space_budget_bytes=space_budget_bytes
    )
