"""E-G2 — Section IV: why the naive approaches fail.

Two demonstrations from the paper's Section IV, measured:

* the BFS (MADlib-style) strategy takes n - 1 rounds on a sequentially
  numbered path — "its worst-case runtime makes it unsuitable for Big
  Data";
* iterated squaring G -> G^2 -> G^4 converges in O(log diameter) rounds
  but materialises the complete graph per component — "a quadratic blow-up
  in data size".
"""

from repro import connected_components
from repro.core import BreadthFirstSearchCC

from .conftest import emit

N = 192


def test_section4_naive_approaches(benchmark):
    from repro.graphs import path_graph

    edges = path_graph(N)

    def run_both():
        bfs = connected_components(
            edges, BreadthFirstSearchCC(max_rounds=2 * N), seed=0
        )
        squaring = connected_components(edges, "squaring", seed=0)
        rc = connected_components(edges, "rc", seed=0)
        return bfs, squaring, rc

    bfs, squaring, rc = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # BFS: linear rounds (n-1 changes + 1 convergence check).
    assert N - 1 <= bfs.run.rounds <= N
    # Squaring: logarithmic rounds but quadratic peak edges.
    counts = squaring.run.extra["edge_counts"]
    assert squaring.run.rounds <= 10
    assert max(counts) == N * (N - 1)
    # RC: logarithmic rounds AND linear space.
    assert rc.run.rounds < 20

    emit("section4_naive", "\n".join([
        "SECTION IV - NAIVE APPROACHES ON THE SEQUENTIAL PATH "
        f"(n = {N})",
        "",
        f"  breadth-first search : {bfs.run.rounds:4d} rounds "
        f"({bfs.run.elapsed_seconds:6.2f}s)  - linear rounds",
        f"  graph squaring       : {squaring.run.rounds:4d} rounds "
        f"({squaring.run.elapsed_seconds:6.2f}s)  - peak edge table "
        f"{max(counts):,} rows = n*(n-1) (quadratic)",
        f"  randomised contraction: {rc.run.rounds:3d} rounds "
        f"({rc.run.elapsed_seconds:6.2f}s)  - logarithmic rounds, "
        "linear space",
    ]))
