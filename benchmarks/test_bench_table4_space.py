"""E-T4 — Table IV: maximum space used.

The paper's shape: Two-Phase uses the least space everywhere (<= ~2x the
input); Randomised Contraction stays within its proven bound (the paper
observes <= 2.6x Two-Phase's footprint and ~4-5x the input); Hash-to-Min
and Cracker are the hungriest and blow up on the path datasets.
"""

from repro.bench.tables import algo_code, render_table4

from .conftest import emit


def test_table4_space_shapes(benchmark, harness, suite_outcomes):
    benchmark.pedantic(
        lambda: harness.run_once("pathunion10", "tp"), rounds=1, iterations=1
    )
    cells = {(o.dataset, algo_code(o.algorithm)): o for o in suite_outcomes}
    datasets = sorted({o.dataset for o in suite_outcomes})

    tp_least = 0
    comparisons = 0
    for dataset in datasets:
        tp = cells[(dataset, "tp")]
        if not tp.ok:
            continue
        for code in ("rc", "hm", "cr"):
            other = cells[(dataset, code)]
            if other.ok:
                comparisons += 1
                if tp.peak_bytes <= other.peak_bytes:
                    tp_least += 1
    # "Here the Two-Phase algorithm uses the least space on all datasets."
    assert tp_least >= 0.9 * comparisons, (tp_least, comparisons)

    # RC's deterministic-space discipline: peak within ~7x input always.
    for dataset in datasets:
        rc = cells[(dataset, "rc")]
        assert rc.peak_bytes <= 7.5 * rc.input_bytes, (
            dataset, rc.peak_bytes / rc.input_bytes
        )
    emit("table4", render_table4(suite_outcomes))
