"""E-SC — Section VII-B scalability: the Candels series.

"The sequence of Candels datasets, roughly doubling in size from one to
the next, demonstrates the scalability of the Randomised Contraction
algorithm.  Its runtime is essentially linear in the size of the graph."

This bench runs RC over the five-series and fits time ~ size^alpha,
asserting quasi-linearity (alpha close to 1).
"""

from repro.analysis import quasi_linearity_exponent

from .conftest import emit

SERIES = ["candels10", "candels20", "candels40", "candels80", "candels160"]


def test_candels_scaling_is_quasi_linear(benchmark, harness):
    def run_series():
        measurements = []
        for name in SERIES:
            outcome = harness.run_once(name, "rc", seed_offset=3)
            assert outcome.ok
            measurements.append((name, harness.dataset(name).n_edges,
                                 outcome.seconds, outcome.rounds))
        return measurements

    measurements = benchmark.pedantic(run_series, rounds=1, iterations=1)
    sizes = [m[1] for m in measurements]
    times = [m[2] for m in measurements]
    alpha = quasi_linearity_exponent(sizes, times)
    # Quasi-linear: well below quadratic, near 1.  Laptop-scale runs carry
    # fixed per-query overhead, so sublinear exponents also pass.
    assert alpha < 1.45, alpha

    lines = ["SECTION VII-B - CANDELS SCALABILITY (Randomised Contraction)",
             "", f"fitted runtime ~ |E|^{alpha:.2f}  (paper: essentially linear)",
             ""]
    for name, n_edges, seconds, rounds in measurements:
        lines.append(f"  {name:12s} |E|={n_edges:>9,d}  {seconds:7.2f}s  "
                     f"rounds={rounds}")
    emit("scalability", "\n".join(lines))
