"""E-T3 (figure form) — Figure 6: the runtime bar chart.

Figure 6 is the visual form of Table III; this bench renders the text bar
chart from the shared measurement grid and sanity-checks that every
dataset appears with either a bar or a "did not finish" mark per
algorithm.
"""

from repro.bench.tables import render_figure6
from repro.graphs import TABLE_DATASETS

from .conftest import emit


def test_figure6_chart(benchmark, suite_outcomes):
    text = benchmark.pedantic(
        lambda: render_figure6(suite_outcomes), rounds=1, iterations=1
    )
    for dataset in TABLE_DATASETS:
        assert dataset in text
    assert text.count("|") >= len(TABLE_DATASETS) * 4
    emit("figure6", text)
