"""E-T3 — Table III: runtimes of RC/HM/TP/CR on all twelve datasets.

The headline experiment.  The full grid is measured once per session (see
conftest); this bench times the reference configuration (RC on candels10)
for the pytest-benchmark record, then renders Table III and asserts the
paper's winner shape: Randomised Contraction is the fastest finisher on
(almost) every dataset, and the space-hungry algorithms DNF where the paper
reports dashes.
"""

from repro.bench.tables import PAPER_TABLE3, algo_code, render_table3

from .conftest import emit


def test_table3_runtimes(benchmark, harness, suite_outcomes):
    benchmark.pedantic(
        lambda: harness.run_once("candels10", "rc"), rounds=1, iterations=1
    )
    cells = {(o.dataset, algo_code(o.algorithm)): o for o in suite_outcomes}
    datasets = sorted({o.dataset for o in suite_outcomes})

    rc_wins = 0
    comparisons = 0
    for dataset in datasets:
        rc = cells[(dataset, "rc")]
        assert rc.ok, f"RC must finish every dataset ({dataset})"
        finished = [cells[(dataset, code)] for code in ("hm", "tp", "cr")
                    if cells[(dataset, code)].ok]
        for other in finished:
            comparisons += 1
            if rc.seconds <= other.seconds:
                rc_wins += 1
    # The paper: "On all datasets Randomised Contraction performed best".
    # We allow a small number of upsets from timer noise at laptop scale.
    assert rc_wins >= 0.8 * comparisons, (rc_wins, comparisons)

    # DNF pattern: where the paper has dashes for structural reasons (the
    # path worst cases blow up space regardless of the absolute budget),
    # our runs must blow up too.
    for dataset, code in [("path100m", "hm"), ("path100m", "cr")]:
        assert PAPER_TABLE3[dataset][code] is None  # paper says DNF
        assert not cells[(dataset, code)].ok, (dataset, code)
    emit("table3", render_table3(suite_outcomes))
