"""E-T1 — Table I: O(log |V|) SQL queries, verified empirically.

Table I states Randomised Contraction's expected O(log |V|) step bound.
This bench measures RC round counts on doubling input sizes and checks that
rounds grow like log2 |V| (bounded rounds-per-log ratio), then renders
Table I with the measurements attached.
"""

import math

from repro import connected_components
from repro.bench.tables import render_table1
from repro.graphs import path_graph, rmat_graph

from .conftest import emit


def measure_rounds():
    import numpy as np

    rows = []
    for n in (1_000, 8_000, 64_000):
        result = connected_components(path_graph(n), "rc", seed=11)
        rows.append((f"path[{n}]", n, result.run.rounds))
    rng = np.random.default_rng(5)
    rmat = rmat_graph(14, 120_000, rng)
    result = connected_components(rmat, "rc", seed=11)
    rows.append(("rmat", rmat.n_vertices, result.run.rounds))
    return rows


def test_table1_rounds_are_logarithmic(benchmark):
    rows = benchmark.pedantic(measure_rounds, rounds=1, iterations=1)
    for name, n_vertices, rounds in rows:
        ratio = rounds / math.log2(max(n_vertices, 2))
        assert ratio < 2.5, (name, ratio)
    # Doubling-size series adds only O(1) rounds per doubling.
    path_rounds = [r for name, _, r in rows if name.startswith("path")]
    assert path_rounds[-1] - path_rounds[0] <= 8
    emit("table1", render_table1(rows))
