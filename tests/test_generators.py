"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.core.unionfind import count_components, ground_truth_labels
from repro.graphs import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    path_union,
    rmat_graph,
    star_graph,
)


def test_path_graph_shape():
    edges = path_graph(10)
    assert edges.n_edges == 9
    assert edges.n_vertices == 10
    assert count_components(edges) == 1


def test_path_graph_is_sequentially_numbered():
    edges = path_graph(5, start_id=3)
    assert edges.vertices().tolist() == [3, 4, 5, 6, 7]
    assert edges.src.tolist() == [3, 4, 5, 6]


def test_path_graph_single_vertex_is_loop():
    edges = path_graph(1)
    assert edges.n_edges == 1
    assert edges.src.tolist() == edges.dst.tolist() == [1]


def test_path_union_component_count():
    edges = path_union(4, 8)
    assert count_components(edges) == 4
    # Lengths 8, 16, 32, 64.
    assert edges.n_vertices == 8 + 16 + 32 + 64


def test_path_union_interleaves_ids():
    edges = path_union(3, 4, interleaved_ids=True)
    # Consecutive IDs must sit on different paths: an edge always spans
    # exactly n_paths in ID space.
    assert ((edges.dst - edges.src) == 3).all()


def test_path_union_block_numbering():
    edges = path_union(2, 4, interleaved_ids=False)
    assert count_components(edges) == 2
    assert ((edges.dst - edges.src) == 1).all()


def test_cycle_graph():
    edges = cycle_graph(6)
    assert edges.n_edges == 6
    assert count_components(edges) == 1
    assert edges.degree_histogram() == {2: 6}


def test_cycle_requires_three():
    with pytest.raises(ValueError):
        cycle_graph(2)


def test_star_graph():
    edges = star_graph(7)
    assert edges.n_edges == 7
    histogram = edges.degree_histogram()
    assert histogram[7] == 1 and histogram[1] == 7


def test_complete_graph():
    edges = complete_graph(6)
    assert edges.n_edges == 15
    assert edges.degree_histogram() == {5: 6}


def test_gnm_random_graph_bounds():
    rng = np.random.default_rng(7)
    edges = gnm_random_graph(50, 80, rng)
    assert edges.n_edges <= 80
    assert edges.max_vertex_id() <= 50
    canonical = edges.canonical()
    assert canonical.n_edges == edges.n_edges  # already deduplicated


def test_rmat_graph_basic_shape():
    rng = np.random.default_rng(42)
    edges = rmat_graph(10, 4000, rng)
    assert edges.n_vertices <= 1 << 10
    assert edges.n_edges > 500
    # Heavy-tailed: the maximum degree dwarfs the average.
    histogram = edges.degree_histogram()
    max_degree = max(histogram)
    average = 2 * edges.n_edges / edges.n_vertices
    assert max_degree > 4 * average


def test_rmat_probabilities_validated():
    with pytest.raises(ValueError):
        rmat_graph(8, 100, np.random.default_rng(0), a=0.9, b=0.9, c=0.1, d=0.1)


def test_rmat_id_randomisation_decouples_ids():
    rng = np.random.default_rng(1)
    raw = rmat_graph(8, 800, rng, randomise_ids=False)
    rng = np.random.default_rng(1)
    shuffled = rmat_graph(8, 800, rng, randomise_ids=True)
    # Same structure, different ID ranges.
    assert shuffled.n_edges == raw.n_edges
    assert shuffled.max_vertex_id() > raw.max_vertex_id()


def test_ground_truth_labels_on_known_graph():
    edges = path_union(2, 4, interleaved_ids=False)
    vertices, labels = ground_truth_labels(edges)
    # First path: 1..4 labelled 1; second: 5..12 labelled 5.
    by_vertex = dict(zip(vertices.tolist(), labels.tolist()))
    assert by_vertex[1] == by_vertex[4] == 1
    assert by_vertex[5] == by_vertex[12] == 5
