"""Tests for ground truth (union-find, scipy) and labelling validation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given

from repro.core.labels import validate_labelling
from repro.core.unionfind import (
    UnionFind,
    count_components,
    ground_truth_labels,
    unionfind_labels,
)
from repro.graphs import EdgeList

from .conftest import edge_lists


def test_unionfind_basic():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(3, 4)
    assert uf.connected(1, 2)
    assert not uf.connected(1, 3)
    uf.union(2, 3)
    assert uf.connected(1, 4)


def test_unionfind_find_creates_singletons():
    uf = UnionFind()
    assert uf.find(9) == 9
    assert uf.components() == {9: [9]}


def test_unionfind_labels_are_minima():
    uf = UnionFind()
    uf.union(5, 3)
    uf.union(3, 8)
    assert uf.labels() == {3: 3, 5: 3, 8: 3}


@given(edge_lists())
def test_unionfind_agrees_with_scipy(edges):
    vertices, labels = ground_truth_labels(edges)
    by_vertex = dict(zip(vertices.tolist(), labels.tolist()))
    assert unionfind_labels(edges) == by_vertex


@given(edge_lists())
def test_ground_truth_agrees_with_networkx(edges):
    graph = nx.Graph()
    graph.add_edges_from(zip(edges.src.tolist(), edges.dst.tolist()))
    expected = {min(c): set(c) for c in nx.connected_components(graph)}
    vertices, labels = ground_truth_labels(edges)
    got: dict[int, set] = {}
    for vertex, label in zip(vertices.tolist(), labels.tolist()):
        got.setdefault(label, set()).add(vertex)
    assert got == expected


def test_count_components_counts_loops_as_singletons():
    edges = EdgeList.from_pairs([(1, 2), (9, 9)])
    assert count_components(edges) == 2


def test_count_components_empty():
    assert count_components(EdgeList.empty()) == 0


# -- validation ---------------------------------------------------------


def fig1_truth():
    edges = EdgeList.from_pairs(
        [(1, 5), (1, 10), (2, 4), (2, 9), (3, 8), (3, 10), (4, 9), (5, 6),
         (5, 7), (6, 10)]
    )
    return edges, *ground_truth_labels(edges)


def test_validation_accepts_ground_truth():
    edges, vertices, labels = fig1_truth()
    assert validate_labelling(edges, vertices, labels).valid


def test_validation_accepts_arbitrary_relabelling():
    edges, vertices, labels = fig1_truth()
    shifted = labels * 1_000_003 + 17  # labels need not be vertex IDs
    assert validate_labelling(edges, vertices, shifted).valid


def test_validation_rejects_split_component():
    edges, vertices, labels = fig1_truth()
    bad = labels.copy()
    bad[vertices == 7] = 999  # vertex 7 split off its component
    report = validate_labelling(edges, vertices, bad)
    assert not report.valid
    assert "edge" in report.reason


def test_validation_rejects_merged_components():
    edges, vertices, labels = fig1_truth()
    merged = np.zeros_like(labels)  # everything one label
    report = validate_labelling(edges, vertices, merged)
    assert not report.valid
    assert "distinct labels" in report.reason


def test_validation_rejects_missing_vertex():
    edges, vertices, labels = fig1_truth()
    report = validate_labelling(edges, vertices[:-1], labels[:-1])
    assert not report.valid
    assert "vertex set" in report.reason


def test_validation_rejects_extra_vertex():
    edges, vertices, labels = fig1_truth()
    report = validate_labelling(
        edges,
        np.append(vertices, 999),
        np.append(labels, 999),
    )
    assert not report.valid


def test_validation_rejects_length_mismatch():
    edges, vertices, labels = fig1_truth()
    report = validate_labelling(edges, vertices, labels[:-1])
    assert not report.valid
    assert "length" in report.reason
