"""Tests for the contraction-factor theory (Thm 1, Lemma 1, Appendix B)."""

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.core.contraction_theory import (
    appendix_b_bound,
    directed_three_cycle_gamma,
    exact_expected_gamma,
    lemma1_counts,
    monte_carlo_gamma,
    one_round_surviving_fraction,
    representatives_under_labelling,
    theorem1_bound,
    type_census,
)
from repro.graphs import EdgeList, cycle_graph, gnm_random_graph, path_graph


def test_directed_three_cycle_attains_two_thirds():
    """Appendix B, Theorem 2: the bound gamma <= 2/3 is tight for the
    directed 3-cycle."""
    assert directed_three_cycle_gamma() == Fraction(2, 3)
    assert directed_three_cycle_gamma() == appendix_b_bound()


def test_bounds_are_the_paper_constants():
    assert theorem1_bound() == Fraction(3, 4)
    assert appendix_b_bound() == Fraction(2, 3)


@pytest.mark.parametrize("n,edges", [
    (2, [(0, 1)]),                              # single edge
    (3, [(0, 1), (1, 2)]),                      # path
    (4, [(0, 1), (1, 2), (2, 3), (3, 0)]),      # 4-cycle
    (4, [(0, 1), (0, 2), (0, 3)]),              # star
    (5, [(0, 1), (1, 2), (2, 3), (3, 4)]),      # longer path
])
def test_exact_gamma_respects_appendix_b_bound(n, edges):
    """Undirected graphs under full randomisation: gamma <= 2/3."""
    gamma = exact_expected_gamma(n, edges, directed=False)
    assert gamma <= Fraction(2, 3)


def test_exact_gamma_of_single_edge():
    # Both vertices always pick the same representative: gamma = 1/2.
    assert exact_expected_gamma(2, [(0, 1)]) == Fraction(1, 2)


def test_exact_gamma_of_triangle():
    # Everyone picks the unique minimum: gamma = 1/3.
    assert exact_expected_gamma(3, [(0, 1), (1, 2), (0, 2)]) == Fraction(1, 3)


def test_exact_enumeration_rejects_large_graphs():
    with pytest.raises(ValueError, match="factorial"):
        exact_expected_gamma(11, [(0, 1)])


def test_representatives_under_labelling_basic():
    # Path 0-1-2 with identity labels: everyone picks the smaller neighbour.
    neighbourhoods = [[0, 1], [0, 1, 2], [1, 2]]
    chosen = representatives_under_labelling(neighbourhoods, [0, 1, 2])
    assert chosen == {0, 1}


def test_type_census_sums_to_n():
    neighbourhoods = [[0, 1], [0, 1, 2], [1, 2]]
    t0, t1, t2 = type_census(neighbourhoods, [2, 0, 1])
    assert t0 + t1 + t2 == 3


def test_lemma1_on_directed_cycle():
    """Lemma 1: #labellings making v type 1 <= #makings type 0."""
    arcs = [(0, 1), (1, 2), (2, 0)]
    for v in range(3):
        type1, type0 = lemma1_counts(3, arcs, v)
        assert type1 <= type0


def test_lemma1_on_assorted_digraphs():
    digraphs = [
        (4, [(0, 1), (1, 2), (2, 3), (3, 0)]),
        (4, [(0, 1), (1, 0), (2, 1), (3, 1)]),
        (5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]),
    ]
    for n, arcs in digraphs:
        out_degree = {a for a, _ in arcs}
        for v in range(n):
            if v not in out_degree:
                continue
            type1, type0 = lemma1_counts(n, arcs, v)
            assert type1 <= type0, (n, arcs, v)


def test_lemma1_requires_nonempty_out_neighbourhood():
    with pytest.raises(ValueError):
        lemma1_counts(3, [(0, 1)], 2)


@pytest.mark.parametrize("method", ["finite-fields", "encryption",
                                    "prime-field"])
def test_monte_carlo_gamma_obeys_theorem1(method):
    """Theorem 1: E[surviving fraction] <= 3/4 for h-based methods."""
    edges = gnm_random_graph(120, 200, np.random.default_rng(0))
    mean, stderr = monte_carlo_gamma(edges, method, rounds=24, seed=1)
    assert mean <= 0.75 + 3 * stderr + 0.02


def test_monte_carlo_gamma_random_reals_obeys_appendix_b():
    """Full randomisation: E[surviving fraction] <= 2/3."""
    edges = cycle_graph(300)
    mean, stderr = monte_carlo_gamma(edges, "random-reals", rounds=24, seed=1)
    assert mean <= 2 / 3 + 3 * stderr + 0.02


def test_identity_on_sequential_path_survives_n_minus_one():
    """Figure 2(a): deterministic contraction keeps n-1 of n vertices."""
    edges = path_graph(50)
    fraction = one_round_surviving_fraction(edges, "identity", random.Random(0))
    assert fraction == pytest.approx(49 / 50)


def test_optimal_path_labelling_contracts_to_one_third():
    """Figure 2(b): the path 3-1-4-5-2-6 contracts to 2 of 6 vertices."""
    edges = EdgeList.from_pairs([(3, 1), (1, 4), (4, 5), (5, 2), (2, 6)])
    fraction = one_round_surviving_fraction(edges, "identity", random.Random(0))
    assert fraction == pytest.approx(2 / 6)


def test_one_round_fraction_rejects_empty_graph():
    with pytest.raises(ValueError):
        one_round_surviving_fraction(EdgeList.empty(), "identity",
                                     random.Random(0))


def test_expected_log_rounds_follow_from_gamma():
    """Section VI: gamma^k |V| <= eps gives k = O(log |V|); check the
    measured round counts against the bound with gamma = 3/4."""
    import math

    from repro import connected_components

    for n in (128, 1024):
        edges = path_graph(n)
        result = connected_components(edges, "rc", seed=3)
        epsilon = 0.05
        bound = math.log(epsilon / n) / math.log(0.75)
        assert result.run.rounds <= bound
