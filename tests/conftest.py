"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.graphs import EdgeList
from repro.sqlengine import Database

# A fast default profile: the suite has many property tests; each one keeps
# examples small instead of numerous.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def db() -> Database:
    """A fresh 4-segment database."""
    return Database(n_segments=4)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


#: The worked example of the paper's Figure 1.
FIGURE1_EDGES = [
    (1, 5), (1, 10), (2, 4), (2, 9), (3, 8),
    (3, 10), (4, 9), (5, 6), (5, 7), (6, 10),
]


@pytest.fixture()
def figure1() -> EdgeList:
    return EdgeList.from_pairs(FIGURE1_EDGES)


def random_edge_list(draw, max_vertices: int = 24, max_edges: int = 40) -> EdgeList:
    """Hypothesis helper: a random small graph, possibly with loops."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),
                st.integers(min_value=1, max_value=n),
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    if not pairs:
        pairs = [(1, 1)]
    return EdgeList.from_pairs(pairs)


@st.composite
def edge_lists(draw, max_vertices: int = 24, max_edges: int = 40):
    return random_edge_list(draw, max_vertices, max_edges)
