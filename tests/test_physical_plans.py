"""Tests for the compiled physical-plan layer.

Covers the tentpole behaviours of the physical plan cache:

* templates cache a compiled plan (hit/miss/invalidation counters),
* validity across schema changes and the per-round rename/drop churn that
  Randomised Contraction performs (``reps{N}``/``tmp``/``graph`` cycling),
* pipeline fusion (column pruning + fused join->DISTINCT) producing
  bit-identical results to the materialising pipeline,
* the GROUP BY sort skip over pre-sorted stored columns,
* plan-template normalization edge cases — negative literals, string
  literals containing digits, digit-suffix collisions across table names —
  none of which may ever patch a wrong parameter.
"""

import numpy as np
import pytest

from repro.sqlengine import Database
from repro.sqlengine.plancache import normalize_statement


# ---------------------------------------------------------------------------
# physical plan cache behaviour
# ---------------------------------------------------------------------------


def test_physical_plan_hits_across_table_suffixes():
    # Result cache off: the multi-entry result cache now keeps alternating
    # parameterisations warm, which would serve repeats without touching
    # the planner — this test counts actual plan executions.
    db = Database(n_segments=4, use_result_cache=False)
    db.execute("create table g (v1 int64, v2 int64)")
    db.execute("insert into g values (1,2),(2,3),(3,1)")
    db.execute("create table reps1 as select v1 v, min(v2) rep from g "
               "group by v1 distributed by (v)")
    db.execute("create table reps2 as select v1 v, min(v2) rep from g "
               "group by v1 distributed by (v)")
    before = db.stats.snapshot()
    rows = []
    for i in (1, 2, 1, 2, 1):
        rows.append(sorted(db.execute(
            f"select g.v1, r.rep from g, reps{i} as r where g.v1 = r.v"
        ).rows()))
    delta = db.stats.snapshot().delta(before)
    assert rows[0] == rows[2] == rows[4]
    # One compile for the template, hits for every later execution.
    assert delta.physical_plan_misses == 1
    assert delta.physical_plan_hits == 4
    assert delta.physical_plan_invalidations == 0


def test_physical_plan_counts_only_planned_statements(db):
    db.execute("create table t (v int64)")  # DDL: no physical plan
    db.execute("insert into t values (1), (2)")  # DML: no physical plan
    assert db.stats.physical_plan_hits + db.stats.physical_plan_misses == 0
    db.execute("select v from t")
    assert db.stats.physical_plan_misses == 1


def test_physical_plan_invalidated_by_schema_change():
    # Result cache off: this test repeats one *identical* statement, which
    # the result cache would otherwise serve without touching the planner.
    db = Database(n_segments=4, use_result_cache=False)
    db.execute("create table s (k int64, w int64)")
    db.execute("insert into s values (1, 10), (2, 20)")
    query = "select s.w from s where s.k = 1"
    assert db.execute(query).scalar() == 10
    assert db.execute(query).scalar() == 10
    assert db.stats.physical_plan_hits == 1
    # Same name, different schema: the cached plan must not survive.
    db.execute("drop table s")
    db.execute("create table s (k int64, w int64, extra int64)")
    db.execute("insert into s values (1, 99, 0)")
    assert db.execute(query).scalar() == 99
    assert db.stats.physical_plan_invalidations == 1


def test_physical_plan_invalidated_by_distribution_change():
    db = Database(n_segments=4, use_result_cache=False)
    db.execute("create table a (v int64)")
    db.execute("insert into a values (1), (2)")
    db.execute("create table b1 as select v from a distributed by (v)")
    q = "select a.v from a, b1 where a.v = b1.v"
    db.execute(q)
    db.execute(q)
    assert db.stats.physical_plan_hits == 1
    db.execute("drop table b1")
    db.execute("create table b1 as select v from a")  # no distribution now
    rows = sorted(db.execute(q).rows())
    assert rows == [(1,), (2,)]
    assert db.stats.physical_plan_invalidations == 1


def test_physical_plans_can_be_disabled():
    db = Database(use_physical_plans=False, use_result_cache=False)
    db.execute("create table t (v int64)")
    db.execute("insert into t values (3)")
    assert db.execute("select v from t").scalar() == 3
    assert db.execute("select v from t").scalar() == 3
    # Plans are compiled per execution but never cached.
    assert db.stats.physical_plan_hits == 0
    assert db.stats.physical_plan_misses == 2


@pytest.mark.parametrize("use_fusion", [True, False])
def test_column_digit_suffixes_invalidate_stale_plans(use_fusion):
    """v1 vs v2 are template *parameters*: two statements sharing a
    template but joining on different columns must never reuse each
    other's compiled key/gather strings."""
    db = Database(use_fusion=use_fusion)
    db.execute("create table t (v1 int64, v2 int64)")
    db.execute("insert into t values (100, 200)")
    db.execute("create table s (w int64, tag int64)")
    db.execute("insert into s values (100, 7), (200, 8)")
    first = db.execute("select a.v1, b.tag from t a, s b where a.v1 = b.w")
    second = db.execute("select a.v2, b.tag from t a, s b where a.v2 = b.w")
    assert first.rows() == [(100, 7)]
    assert second.rows() == [(200, 8)]
    assert db.stats.physical_plan_invalidations >= 1
    # Fused DISTINCT variant of the same trap.
    assert db.execute("select distinct a.v1 from t a, s b "
                      "where a.v1 = b.w").rows() == [(100,)]
    assert db.execute("select distinct a.v2 from t a, s b "
                      "where a.v2 = b.w").rows() == [(200,)]


def test_alias_digit_suffixes_invalidate_stale_plans(db):
    db.execute("create table t (v1 int64, v2 int64)")
    db.execute("insert into t values (100, 200), (100, 300)")
    first = db.execute("select distinct a.v1 as c1, a.v2 from t a, t b "
                       "where a.v1 = b.v1")
    assert first.relation.display_names == ["c1", "v2"]
    second = db.execute("select distinct a.v1 as c2, a.v2 from t a, t b "
                        "where a.v1 = b.v1")
    assert second.relation.display_names == ["c2", "v2"]


def test_database_close_releases_pool_threads():
    import repro.sqlengine.executor as executor_module

    with Database(n_segments=4, parallel=True,
                  use_index_cache=False) as db:
        db.execute("create table t (v int64)")
        db.execute("insert into t values (1), (2), (3)")
        original = executor_module.PARALLEL_MIN_ROWS
        executor_module.PARALLEL_MIN_ROWS = 1
        try:
            db.execute("select t.v from t, t as u where t.v = u.v")
        finally:
            executor_module.PARALLEL_MIN_ROWS = original
        assert db.stats.parallel_partitions > 0
        assert db.pool._pool is not None
    assert db.pool._pool is None  # close() released the workers
    # The database stays usable after close.
    assert db.execute("select count(*) from t").scalar() == 3


# ---------------------------------------------------------------------------
# rename/drop churn (the Randomised Contraction round pattern)
# ---------------------------------------------------------------------------


def test_rename_churn_keeps_plans_and_indexes_correct(db):
    """Emulate the per-round reps{N}/tmp/graph cycling of the algorithm."""
    rng = np.random.default_rng(7)
    n = 500
    v1 = rng.integers(0, 50, n)
    v2 = rng.integers(0, 50, n)
    db.load_table("ccgraph", {"v1": v1, "v2": v2}, distributed_by="v1")
    for round_no in range(1, 6):
        reps = f"ccreps{round_no}"
        db.execute(
            f"create table {reps} as select v1 v, min(v2) rep from ccgraph "
            f"group by v1 distributed by (v)"
        )
        db.execute(
            f"create table ccgraph2 as select r1.rep as v1, v2 "
            f"from ccgraph, {reps} as r1 where ccgraph.v1 = r1.v "
            f"distributed by (v2)"
        )
        db.execute("drop table ccgraph")
        db.execute(
            f"create table ccgraph3 as select distinct v1, r2.rep as v2 "
            f"from ccgraph2, {reps} as r2 where ccgraph2.v2 = r2.v "
            f"and v1 != r2.rep distributed by (v1)"
        )
        db.execute("drop table ccgraph2")
        db.execute("alter table ccgraph3 rename to ccgraph")
        # Independent check of the round's result against numpy.
        table = db.table("ccgraph")
        got = sorted(zip(table.column("v1").values.tolist(),
                         table.column("v2").values.tolist()))
        rep_of = {}
        for v in np.unique(v1):
            rep_of[int(v)] = int(v2[v1 == v].min())
        relabeled = [(rep_of[int(a)], rep_of[int(b)])
                     for a, b in zip(v1, v2) if int(b) in rep_of]
        expected = sorted(set((a, b) for a, b in relabeled if a != b))
        assert got == expected
        v1 = np.array([a for a, _ in got], dtype=np.int64)
        v2 = np.array([b for _, b in got], dtype=np.int64)
        if v1.size == 0:
            break
    stats = db.stats
    # The round templates hit their cached plans from round 2 on, and the
    # rename/drop churn never invalidates them (schemas are stable).
    assert stats.physical_plan_hits > 0
    assert stats.physical_plan_invalidations == 0


def test_rename_does_not_serve_stale_data(db):
    db.execute("create table t (v int64, w int64)")
    db.execute("insert into t values (1, 10), (2, 20)")
    db.execute("create table probe (v int64)")
    db.execute("insert into probe values (1), (2)")
    q = "select probe.v, t.w from probe, t where probe.v = t.v"
    assert sorted(db.execute(q).rows()) == [(1, 10), (2, 20)]  # warms caches
    db.execute("alter table t rename to old_t")
    db.execute("create table t (v int64, w int64)")
    db.execute("insert into t values (1, 77), (2, 88)")
    # Same template, same schema fingerprint, new table object: the plan is
    # reusable but the data (and any index) must come from the new table.
    assert sorted(db.execute(q).rows()) == [(1, 77), (2, 88)]


# ---------------------------------------------------------------------------
# fusion: bit-identical to the materialising pipeline
# ---------------------------------------------------------------------------


def _two_table_db(use_fusion: bool, parallel=False) -> Database:
    db = Database(n_segments=4, use_fusion=use_fusion, parallel=parallel)
    rng = np.random.default_rng(42)
    n = 4000
    db.load_table("graph2", {
        "v1": rng.integers(0, 300, n),
        "v2": rng.integers(0, 300, n),
    }, distributed_by="v2")
    db.load_table("reps", {
        "v": np.arange(300, dtype=np.int64),
        "rep": rng.integers(0, 1 << 60, 300),
    }, distributed_by="v")
    return db


FUSABLE_QUERIES = [
    "select distinct v1, r2.rep as v2 from graph2, reps as r2 "
    "where graph2.v2 = r2.v and v1 != r2.rep",
    "select distinct r2.rep from graph2, reps as r2 where graph2.v2 = r2.v",
    "select distinct v1, v1 from graph2, reps as r2 where graph2.v2 = r2.v",
]


@pytest.mark.parametrize("query", FUSABLE_QUERIES)
def test_fused_distinct_matches_materialising_pipeline(query):
    fused_db = _two_table_db(use_fusion=True)
    plain_db = _two_table_db(use_fusion=False)
    fused = fused_db.execute(query)
    plain = plain_db.execute(query)
    assert fused.names == plain.names
    assert fused.relation.display_names == plain.relation.display_names
    assert fused.rows() == plain.rows()  # bit-identical, including order
    assert fused_db.stats.fused_pipelines > 0
    assert plain_db.stats.fused_pipelines == 0
    # The single-join shape moves identical bytes in both pipelines.
    assert fused_db.stats.motion_bytes == plain_db.stats.motion_bytes


FUSABLE_GROUP_QUERIES = [
    # The table-strategy round's neigh-min shape: join -> GROUP BY on a
    # left-side key, aggregate over a right-side column.
    "select graph2.v1 as v, min(r2.rep) as hmin from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by graph2.v1",
    "select v1, count(*) c, sum(r2.v) s, avg(r2.v) a, max(r2.rep) hi "
    "from graph2, reps as r2 where graph2.v2 = r2.v group by v1",
    # Residual filter between the join and the aggregate.
    "select v1, min(r2.rep) m from graph2, reps as r2 "
    "where graph2.v2 = r2.v and v1 != r2.rep group by v1",
    # Multi-column left-side keys.
    "select v1, v2, count(*) c from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by v1, v2",
    # Key also consumed as an aggregate argument.
    "select v1, sum(v1) s, min(r2.rep) m from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by v1",
    # Expression over key and aggregate in one select item.
    "select v1 v, v1 + min(r2.rep) x from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by v1",
]


@pytest.mark.parametrize("query", FUSABLE_GROUP_QUERIES)
def test_fused_group_by_matches_materialising_pipeline(query):
    fused_db = _two_table_db(use_fusion=True)
    plain_db = _two_table_db(use_fusion=False)
    fused = fused_db.execute(query)
    plain = plain_db.execute(query)
    assert fused.names == plain.names
    assert fused.relation.display_names == plain.relation.display_names
    assert fused.rows() == plain.rows()  # bit-identical, including order
    assert fused_db.stats.fused_group_pipelines > 0
    assert plain_db.stats.fused_group_pipelines == 0


RIGHT_KEY_GROUP_QUERIES = [
    # The key is produced by the final join itself: gathered once through
    # the join's output indices, grouped at output size.
    "select r2.v, count(*) c from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by r2.v",
    "select r2.rep g, count(*) c, min(graph2.v1) m from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by r2.rep",
    # Mixed: one key on the probe side, one on the build side.
    "select v1, r2.rep, count(*) c from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by v1, r2.rep",
]


@pytest.mark.parametrize("query", RIGHT_KEY_GROUP_QUERIES)
def test_right_side_group_keys_fuse(query):
    fused_db = _two_table_db(use_fusion=True)
    plain_db = _two_table_db(use_fusion=False)
    fused = fused_db.execute(query)
    plain = plain_db.execute(query)
    assert fused.names == plain.names
    assert fused.rows() == plain.rows()  # bit-identical, including order
    assert fused_db.stats.fused_group_pipelines > 0
    assert fused_db.stats.fused_outer_groups == 0  # inner final join
    assert plain_db.stats.fused_group_pipelines == 0


NOT_FUSABLE_GROUP_QUERIES = [
    # count(distinct) needs row-level key columns.
    "select v1, count(distinct r2.rep) c from graph2, reps as r2 "
    "where graph2.v2 = r2.v group by v1",
]


@pytest.mark.parametrize("query", NOT_FUSABLE_GROUP_QUERIES)
def test_unfusable_group_shapes_stay_staged_and_correct(query):
    fused_db = _two_table_db(use_fusion=True)
    plain_db = _two_table_db(use_fusion=False)
    assert fused_db.execute(query).rows() == plain_db.execute(query).rows()
    assert fused_db.stats.fused_group_pipelines == 0


def test_fused_group_by_with_nulls_in_aggregate_argument():
    def build(use_fusion):
        db = Database(n_segments=4, use_fusion=use_fusion)
        db.execute("create table e (v1 int64, v2 int64)")
        db.execute("insert into e values (1, 10), (1, 11), (2, 10), (3, 12)")
        db.execute("create table w (v int64, x int64)")
        db.execute("insert into w values (10, null), (11, 5), (12, null)")
        return db

    q = ("select e.v1, count(x) c, sum(w.x) s, min(w.x) lo "
         "from e, w where e.v2 = w.v group by e.v1")
    fused, plain = build(True), build(False)
    assert fused.execute(q).rows() == plain.execute(q).rows()
    assert fused.stats.fused_group_pipelines == 1


def test_fused_group_by_empty_sides():
    def build(use_fusion):
        db = Database(n_segments=4, use_fusion=use_fusion)
        db.execute("create table e (v1 int64, v2 int64)")
        db.execute("create table w (v int64, x int64)")
        return db

    q = ("select e.v1, count(*) c, min(w.x) lo from e, w "
         "where e.v2 = w.v group by e.v1")
    fused, plain = build(True), build(False)
    # Both sides empty.
    assert fused.execute(q).rows() == plain.execute(q).rows() == []
    # Probe side populated, build side empty (and vice versa).
    for db in (fused, plain):
        db.execute("insert into e values (1, 10), (2, 11)")
    assert fused.execute(q).rows() == plain.execute(q).rows() == []
    for db in (fused, plain):
        db.execute("truncate table e")
        db.execute("insert into w values (10, 7)")
    assert fused.execute(q).rows() == plain.execute(q).rows() == []
    assert fused.stats.fused_group_pipelines == 3


def test_fused_group_by_uses_left_side_index(db):
    """The fused path recovers the left scan's index-cache provenance that
    the staged pipeline loses when it materialises the join."""
    rng = np.random.default_rng(9)
    n = 3000
    db.load_table("e", {"v1": rng.integers(0, 2 ** 61, n),
                        "v2": rng.integers(0, 100, n)})
    db.load_table("r", {"v": np.arange(100, dtype=np.int64),
                        "h": rng.permutation(100)})
    q = ("select e.v1, min(r.h) m from e, r where e.v2 = r.v "
         "group by e.v1")
    db.execute(q)  # builds (and caches) the index over e.v1
    hits_before = db.stats.index_cache_hits
    db.execute(q)
    assert db.stats.index_cache_hits > hits_before
    assert db.stats.fused_group_pipelines == 2


def test_fusion_preserves_create_table_as(db):
    rng = np.random.default_rng(3)
    db.load_table("e", {"a": rng.integers(0, 40, 900),
                        "b": rng.integers(0, 40, 900)})
    db.load_table("m", {"v": np.arange(40, dtype=np.int64),
                        "rep": rng.integers(0, 40, 40)})
    db.execute("create table out as select distinct e.a, m.rep from e, m "
               "where e.b = m.v and e.a != m.rep distributed by (a)")
    assert db.stats.fused_pipelines == 1
    table = db.table("out")
    assert table.column_names == ["a", "rep"]
    assert table.distribution_column == "a"
    pairs = set(zip(table.column("a").values.tolist(),
                    table.column("rep").values.tolist()))
    assert len(pairs) == table.n_rows  # DISTINCT held


def test_column_pruning_does_not_change_results():
    """Multi-join query with unused columns: pruned vs materialising."""
    def build(use_fusion):
        db = Database(use_fusion=use_fusion)
        rng = np.random.default_rng(11)
        db.load_table("a", {"k": rng.integers(0, 60, 800),
                            "junk_a": rng.integers(0, 9, 800)})
        db.load_table("b", {"k": np.arange(60, dtype=np.int64),
                            "m": rng.integers(0, 30, 60),
                            "junk_b": rng.integers(0, 9, 60)})
        db.load_table("c", {"m": np.arange(30, dtype=np.int64),
                            "label": rng.integers(0, 5, 30)})
        return db

    q = ("select c.label, count(*) cnt from a, b, c "
         "where a.k = b.k and b.m = c.m group by c.label")
    fused = build(True)
    plain = build(False)
    assert fused.execute(q).rows() == plain.execute(q).rows()


def test_group_by_sorted_column_skips_sort(db):
    values = np.repeat(np.arange(1000, dtype=np.int64), 3)  # sorted on disk
    db.load_table("s", {"v": values})
    rows = db.execute("select v, count(*) c from s group by v").rows()
    assert rows[:2] == [(0, 3), (1, 3)]
    assert db.stats.group_sorts_skipped == 1
    # Unsorted input must not take the shortcut.
    db.load_table("u", {"v": values[::-1].copy()})
    db.execute("select v, count(*) c from u group by v")
    assert db.stats.group_sorts_skipped == 1


# ---------------------------------------------------------------------------
# normalization edge cases (never patch a wrong parameter)
# ---------------------------------------------------------------------------


def test_negative_integer_literals_patch_correctly(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1)")
    assert db.execute("select -5 c from t").scalar() == -5
    assert db.execute("select -7 c from t").scalar() == -7  # template hit
    assert db.execute("select 0 - 3 c from t").scalar() == -3


def test_string_literals_with_digits_are_not_parameterised(db):
    db.execute("create table s (name text)")
    db.execute("insert into s values ('agent 47')")
    assert db.execute("select name from s where name = 'agent 47'").rows() \
        == [("agent 47",)]
    # Two statements differing only inside string literals are distinct
    # templates; digits inside strings never become parameters.
    assert db.execute("select 'x1' v from s").scalar() == "x1"
    assert db.execute("select 'x2' v from s").scalar() == "x2"
    template, params = normalize_statement("select 'x1' v from s where 1=1")
    assert "'x1'" in template and params == ["1", "1"]


def test_digit_suffix_collisions_resolve_to_the_right_table(db):
    db.execute("create table t1 (v int64)")
    db.execute("insert into t1 values (100)")
    db.execute("create table t2 (v int64)")
    db.execute("insert into t2 values (200)")
    db.execute("create table t12 (v int64)")
    db.execute("insert into t12 values (300)")
    # t1, t2, t12 all normalize to the same template t$0; each execution
    # must patch back its own suffix, never a neighbour's.
    assert db.execute("select v from t1").scalar() == 100
    assert db.execute("select v from t2").scalar() == 200
    assert db.execute("select v from t12").scalar() == 300
    assert db.execute("select v from t1").scalar() == 100
    # Mid-identifier digits stay literal and never collide with suffixes.
    db.execute("create table x2y (v int64)")
    db.execute("insert into x2y values (9)")
    assert db.execute("select v from x2y").scalar() == 9


def test_mixed_literal_and_suffix_parameters(db):
    db.execute("create table r7 (v int64)")
    db.execute("insert into r7 values (7)")
    db.execute("create table r8 (v int64)")
    db.execute("insert into r8 values (8)")
    assert db.execute("select v + 10 s from r7").scalar() == 17
    assert db.execute("select v + 20 s from r8").scalar() == 28
    assert db.execute("select v + 30 s from r7").scalar() == 37


# ---------------------------------------------------------------------------
# end-to-end: Randomised Contraction over the physical plan layer
# ---------------------------------------------------------------------------


def test_rc_physical_plan_hit_rate_and_identical_labels():
    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    edges = gnm_random_graph(600, 1100, np.random.default_rng(23))

    def run(**kwargs):
        db = Database(n_segments=4, **kwargs)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction().run(db, "edges", seed=5)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        return vertices[order], labels[order], db.stats

    v_on, l_on, stats_on = run()
    v_off, l_off, stats_off = run(use_physical_plans=False, use_fusion=False)
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)
    assert stats_on.physical_plan_hits > 0
    assert stats_on.fused_pipelines > 0
    assert stats_on.physical_plan_invalidations == 0
    planned = stats_on.physical_plan_hits + stats_on.physical_plan_misses
    assert stats_on.physical_plan_hits / planned > 0.5  # cold-start run


def test_rc_random_reals_round_loop_fuses_join_group_by():
    """The table-strategy round's neigh-min statement is a join->GROUP BY;
    it must run fused, with labels identical to the staged pipeline."""
    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    edges = gnm_random_graph(400, 700, np.random.default_rng(31))

    def run(use_fusion):
        db = Database(n_segments=4, use_fusion=use_fusion)
        load_edges_into(db, "edges", edges)
        rc = RandomisedContraction(method="random-reals",
                                   variant="deterministic-space")
        result = rc.run(db, "edges", seed=5)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        return vertices[order], labels[order], db.stats

    v_on, l_on, stats_on = run(True)
    v_off, l_off, stats_off = run(False)
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)
    assert stats_on.fused_group_pipelines > 0
    assert stats_off.fused_group_pipelines == 0


def test_rc_fast_variant_round_loop_uses_hash_distinct():
    """The fast variant's contract DISTINCT pairs 64-bit field values whose
    spans defeat pair packing — the hash kernel must engage on the loop."""
    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    edges = gnm_random_graph(400, 700, np.random.default_rng(33))
    db = Database(n_segments=4)
    load_edges_into(db, "edges", edges)
    RandomisedContraction().run(db, "edges", seed=5)
    assert db.stats.hash_distincts > 0


# ---------------------------------------------------------------------------
# join-chain fusion: a join feeding another join's build side streams
# through composed row-index maps — bit-identical to the staged pipeline
# ---------------------------------------------------------------------------


def _chain_db(use_fusion: bool, middle_empty=False, null_keys=False,
              empty_build=False) -> Database:
    """Three tables wired for e ⋈ r ⋈ r chains (the contraction shape)."""
    db = Database(n_segments=4, use_fusion=use_fusion)
    rng = np.random.default_rng(9)
    n = 3000
    v1 = rng.integers(0, 250, n)
    v2 = rng.integers(0, 250, n)
    if middle_empty:
        v1 = v1 + 10_000  # no key overlaps the reps table: middle join empty
    db.load_table("e", {"v1": v1, "v2": v2, "w": rng.integers(0, 9, n)},
                  distributed_by="v1")
    n_reps = 0 if empty_build else 250
    db.load_table("r", {
        "v": np.arange(n_reps, dtype=np.int64),
        "rep": rng.integers(0, 250, n_reps),
    }, distributed_by="v")
    if null_keys:
        mask_rows = rng.random(n) < 0.3
        values = np.where(mask_rows, 0, v1)
        db.execute("create table en (v1 int64, v2 int64)")
        nullable = ["null" if m else str(v) for m, v in
                    zip(mask_rows[:60], values[:60])]
        rows = ", ".join(f"({a}, {b})" for a, b in zip(nullable, v2[:60]))
        db.execute(f"insert into en values {rows}")
    return db


CHAIN_QUERIES = [
    # Plain three-table chain, projection only.
    "select e.w, rv.rep, rw.rep from e, r as rv, r as rw "
    "where e.v1 = rv.v and e.v2 = rw.v",
    # Chain feeding the fused DISTINCT (the contraction query itself).
    "select distinct rv.rep as v1, rw.rep as v2 from e, r as rv, r as rw "
    "where e.v1 = rv.v and e.v2 = rw.v and rv.rep != rw.rep",
    # Chain feeding the fused GROUP BY.
    "select rv.rep g, count(*) c, min(e.w) m from e, r as rv, r as rw "
    "where e.v1 = rv.v and e.v2 = rw.v group by rv.rep",
    # Residual predicate over the chained output.
    "select e.w, rw.rep from e, r as rv, r as rw "
    "where e.v1 = rv.v and e.v2 = rw.v and rv.rep != rw.rep and e.w > 3",
]


def _assert_chain_matches(query, fused_db, plain_db, expect_chain=True):
    fused = fused_db.execute(query)
    plain = plain_db.execute(query)
    assert fused.names == plain.names
    assert fused.relation.display_names == plain.relation.display_names
    assert fused.rows() == plain.rows()  # bit-identical, including order
    if expect_chain:
        assert fused_db.stats.join_chain_fusions > 0
    assert plain_db.stats.join_chain_fusions == 0


@pytest.mark.parametrize("query", CHAIN_QUERIES)
def test_join_chain_matches_staged_pipeline(query):
    fused_db = _chain_db(True)
    plain_db = _chain_db(False)
    _assert_chain_matches(query, fused_db, plain_db)


@pytest.mark.parametrize("query", CHAIN_QUERIES)
def test_join_chain_charges_staged_motion(query, monkeypatch):
    """The chain's virtual frames charge byte-for-byte the motion the
    staged (but equally pruned) pipeline charges — the comparison the
    column-pruning delta of ``use_fusion=False`` would obscure.

    The chained execution runs *before* the no-chain patch lands (the
    patch is class-level), and the engagement counters prove each side
    took its intended path.
    """
    from repro.sqlengine import physicalplan

    chained_db = _chain_db(True)
    chained = chained_db.execute(query)
    original = physicalplan._Compiler.compile_core

    def compile_without_chain(self, core):
        plan = original(self, core)
        plan.chain = False
        return plan

    monkeypatch.setattr(physicalplan._Compiler, "compile_core",
                        compile_without_chain)
    staged_db = _chain_db(True)
    staged = staged_db.execute(query)
    assert chained.rows() == staged.rows()
    assert chained_db.stats.join_chain_fusions > 0
    assert staged_db.stats.join_chain_fusions == 0
    assert chained_db.stats.motion_bytes == staged_db.stats.motion_bytes


@pytest.mark.parametrize("query", CHAIN_QUERIES)
def test_join_chain_with_empty_build_side(query):
    """A chain over an empty build side collapses every downstream step to
    zero rows without a kernel error on either path."""
    fused_db = _chain_db(True, empty_build=True)
    plain_db = _chain_db(False, empty_build=True)
    _assert_chain_matches(query, fused_db, plain_db)
    assert fused_db.execute(CHAIN_QUERIES[0]).rowcount == 0


@pytest.mark.parametrize("query", CHAIN_QUERIES)
def test_join_chain_with_zero_row_middle_join(query):
    """The middle join of the chain matches nothing: every later map is
    empty and the output is the staged pipeline's empty relation."""
    fused_db = _chain_db(True, middle_empty=True)
    plain_db = _chain_db(False, middle_empty=True)
    _assert_chain_matches(query, fused_db, plain_db)
    assert fused_db.execute(CHAIN_QUERIES[0]).rowcount == 0


def test_join_chain_with_all_null_keys():
    """NULL join keys never match (SQL semantics); a chain whose first
    edge runs over a NULL-bearing column must drop exactly the rows the
    staged pipeline drops."""
    query = ("select en.v2, rv.rep, rw.rep from en, r as rv, r as rw "
             "where en.v1 = rv.v and en.v2 = rw.v")
    fused_db = _chain_db(True, null_keys=True)
    plain_db = _chain_db(False, null_keys=True)
    _assert_chain_matches(query, fused_db, plain_db)
    # All-NULL key column: zero output rows, no kernel error.
    all_null = ("select rv.rep from en, r as rv where en.v1 = rv.v "
                "and en.v1 != en.v1")
    assert fused_db.execute(all_null).rowcount == \
        plain_db.execute(all_null).rowcount


def test_join_chain_followed_by_left_join():
    """LEFT JOINs stream inside the chain: the null-extended probe rows
    ride the composed maps as a validity mask and only materialisation
    resolves them — output identical to the staged padded frame."""
    query = ("select e.w, rv.rep, lj.rep from e join r as rv "
             "on (e.v1 = rv.v) join r as rw on (e.v2 = rw.v) "
             "left outer join r as lj on (rv.rep = lj.v)")
    fused_db = _chain_db(True)
    plain_db = _chain_db(False)
    _assert_chain_matches(query, fused_db, plain_db)
    assert fused_db.stats.left_chain_fusions > 0
    assert plain_db.stats.left_chain_fusions == 0


def test_join_chain_counter_requires_two_joins():
    """A single join is not a chain — the counter must stay silent."""
    db = _chain_db(True)
    db.execute("select e.w, rv.rep from e, r as rv where e.v1 = rv.v")
    assert db.stats.join_chain_fusions == 0
    db.execute("select e.w, rv.rep, rw.rep from e, r as rv, r as rw "
               "where e.v1 = rv.v and e.v2 = rw.v")
    assert db.stats.join_chain_fusions == 1


# ---------------------------------------------------------------------------
# LEFT JOINs streaming inside the chain: edge cases and fused finals
# ---------------------------------------------------------------------------


LEFT_CHAIN_QUERIES = [
    # Inner step then a LEFT JOIN, projection only.
    "select e.w, rv.rep, lj.rep from e join r as rv on (e.v1 = rv.v) "
    "left outer join r as lj on (e.v2 = lj.v)",
    # LEFT JOIN feeding a second LEFT JOIN (outer build over outer output).
    "select e.w, a.rep, b.rep from e left join r as a on (e.v1 = a.v) "
    "left join r as b on (a.rep = b.v)",
    # LEFT JOIN tail into the fused DISTINCT final.
    "select distinct rv.rep, lj.rep from e join r as rv on (e.v1 = rv.v) "
    "left outer join r as lj on (e.v2 = lj.v)",
    # LEFT JOIN tail into the fused GROUP BY final (keys on the left side;
    # aggregates over the null-extended build columns).
    "select rv.rep g, count(*) c, min(lj.rep) m, count(lj.v) k from e "
    "join r as rv on (e.v1 = rv.v) left join r as lj on (e.v2 = lj.v) "
    "group by rv.rep",
    # ... with a residual predicate filtering the padded stream.
    "select e.v1 g, count(*) c, sum(lj.rep) s from e join r as rv "
    "on (e.v1 = rv.v) left join r as lj on (e.v2 = lj.v) "
    "where e.w > 2 group by e.v1",
]


def _assert_left_chain_matches(query, fused_db, plain_db):
    _assert_chain_matches(query, fused_db, plain_db)
    assert fused_db.stats.left_chain_fusions > 0
    assert plain_db.stats.left_chain_fusions == 0


@pytest.mark.parametrize("query", LEFT_CHAIN_QUERIES)
def test_left_join_chain_matches_staged_pipeline(query):
    _assert_left_chain_matches(query, _chain_db(True), _chain_db(False))


@pytest.mark.parametrize("query", LEFT_CHAIN_QUERIES)
def test_left_join_chain_with_empty_build_side(query):
    """An empty outer build side pads every probe row with NULLs — the
    chain must resolve its all-NO_MATCH maps to the staged all-NULL
    columns without indexing into the empty frame."""
    fused_db = _chain_db(True, empty_build=True)
    plain_db = _chain_db(False, empty_build=True)
    _assert_left_chain_matches(query, fused_db, plain_db)


def test_left_join_chain_with_all_null_probe_keys():
    """NULL probe keys never match (SQL semantics) but — unlike an inner
    join — their rows survive null-extended; the chain must carry exactly
    the staged pipeline's masks through both outer joins."""
    queries = [
        "select en.v2, rv.rep, lj.rep from en join r as rv "
        "on (en.v2 = rv.v) left join r as lj on (en.v1 = lj.v)",
        # All-NULL probe key column via an always-NULL left-join chain.
        "select en.v1, a.rep, b.rep from en left join r as a "
        "on (en.v1 = a.v) left join r as b on (en.v1 = b.v)",
    ]
    for query in queries:
        fused_db = _chain_db(True, null_keys=True)
        plain_db = _chain_db(False, null_keys=True)
        _assert_left_chain_matches(query, fused_db, plain_db)


def test_left_join_chain_motion_matches_staged(monkeypatch):
    """The chain's virtual frames charge byte-for-byte the motion the
    staged pipeline charges, null-extension masks included."""
    from repro.sqlengine import physicalplan

    query = LEFT_CHAIN_QUERIES[1]
    chained_db = _chain_db(True)
    chained = chained_db.execute(query)
    original = physicalplan._Compiler.compile_core

    def compile_without_chain(self, core):
        plan = original(self, core)
        plan.chain = False
        return plan

    monkeypatch.setattr(physicalplan._Compiler, "compile_core",
                        compile_without_chain)
    staged_db = _chain_db(True)
    staged = staged_db.execute(query)
    assert chained.rows() == staged.rows()
    assert chained_db.stats.left_chain_fusions > 0
    assert staged_db.stats.left_chain_fusions == 0
    assert chained_db.stats.motion_bytes == staged_db.stats.motion_bytes


# ---------------------------------------------------------------------------
# chain motion accounting for text columns: exact per-row bytes
# ---------------------------------------------------------------------------


def _text_chain_db(use_fusion: bool) -> Database:
    """The e ⋈ r ⋈ r chain with a skewed-width text payload on e: a few
    very long labels among many short ones, the shape a mean-row-width
    estimate misprices when the join's row multiplicities correlate with
    the width."""
    db = Database(n_segments=4, use_fusion=use_fusion)
    rng = np.random.default_rng(41)
    n = 2000
    v1 = rng.integers(0, 150, n)
    labels = np.array(["x" * int(w) for w in rng.integers(1, 8, n)],
                      dtype=object)
    # Skew: low keys (which join to many reps rows) carry huge labels.
    labels[v1 < 20] = "the-skewed-extremely-wide-label-" * 8
    db.load_table("e", {"v1": v1, "v2": rng.integers(0, 150, n),
                        "lbl": labels}, distributed_by="v1")
    db.load_table("r", {
        "v": np.arange(150, dtype=np.int64),
        "rep": rng.integers(0, 150, 150),
    }, distributed_by="v")
    return db


TEXT_CHAIN_QUERIES = [
    "select e.lbl, rv.rep, rw.rep from e, r as rv, r as rw "
    "where e.v1 = rv.v and e.v2 = rw.v",
    "select e.lbl, rv.rep, lj.rep from e join r as rv on (e.v1 = rv.v) "
    "join r as rw on (e.v2 = rw.v) left outer join r as lj "
    "on (rv.rep = lj.v)",
]


# ---------------------------------------------------------------------------
# fused GROUP BY through outer padding: group keys on the padded (right)
# binding of a left-outer final join — padded rows form NULL-key groups
# ---------------------------------------------------------------------------


OUTER_GROUP_QUERIES = [
    # Single LEFT JOIN straight into GROUP BY on the padded binding (the
    # shape that previously fell back to materialisation).
    "select lj.rep g, count(*) c, min(e.w) m from e "
    "left join r as lj on (e.v2 = lj.v) group by lj.rep",
    # LEFT JOIN tail of an inner chain, keyed on the padded binding.
    "select lj.rep g, count(*) c, sum(e.w) s from e join r as rv "
    "on (e.v1 = rv.v) left join r as lj on (e.v2 = lj.v) group by lj.rep",
    # Multi-key: padded-binding key alongside a probe-side key.
    "select lj.v a, e.w b, count(*) c from e join r as rv "
    "on (e.v1 = rv.v) left join r as lj on (e.v2 = lj.v) "
    "group by lj.v, e.w",
    # LEFT JOIN feeding a LEFT JOIN, tail into GROUP BY on the final
    # padded binding (padding over already-padded probe rows).
    "select b.rep g, count(*) c, min(a.rep) m from e left join r as a "
    "on (e.v1 = a.v) left join r as b on (a.rep = b.v) group by b.rep",
    # Residual predicate filtering the padded stream before grouping.
    "select lj.rep g, count(*) c from e join r as rv on (e.v1 = rv.v) "
    "left join r as lj on (e.v2 = lj.v) where e.w > 3 group by lj.rep",
]


def _assert_outer_group_matches(query, fused_db, plain_db):
    fused = fused_db.execute(query)
    plain = plain_db.execute(query)
    assert fused.names == plain.names
    assert fused.relation.display_names == plain.relation.display_names
    assert fused.rows() == plain.rows()  # bit-identical, including order
    assert fused_db.stats.fused_group_pipelines > 0
    assert fused_db.stats.fused_outer_groups > 0
    assert plain_db.stats.fused_group_pipelines == 0


@pytest.mark.parametrize("query", OUTER_GROUP_QUERIES)
def test_outer_padded_group_keys_match_staged_pipeline(query):
    _assert_outer_group_matches(query, _chain_db(True), _chain_db(False))


@pytest.mark.parametrize("query", OUTER_GROUP_QUERIES)
def test_outer_padded_group_keys_with_empty_build_side(query):
    """An empty build side pads *every* probe row: the padded key column
    is all-NULL and collapses to the single NULL-key group (or one group
    per surviving left-side key combination on multi-key shapes)."""
    fused_db = _chain_db(True, empty_build=True)
    plain_db = _chain_db(False, empty_build=True)
    _assert_outer_group_matches(query, fused_db, plain_db)


def test_outer_padded_group_keys_with_null_probe_keys():
    """NULL probe keys never match but survive null-extended: their padded
    rows must land in the NULL-key group exactly as the staged pipeline
    groups them."""
    query = ("select lj.rep g, count(*) c, count(lj.v) k from en "
             "left join r as lj on (en.v1 = lj.v) group by lj.rep")
    fused_db = _chain_db(True, null_keys=True)
    plain_db = _chain_db(False, null_keys=True)
    _assert_outer_group_matches(query, fused_db, plain_db)


def test_outer_padded_group_aggregates_see_padded_nulls():
    """Aggregates over the padded binding's columns: count(col) skips the
    padded NULLs, count(*) keeps them — per group, on both pipelines."""
    def build(use_fusion):
        db = Database(n_segments=4, use_fusion=use_fusion)
        db.execute("create table e (v1 int64, v2 int64)")
        db.execute("insert into e values (1, 10), (1, 99), (2, 11), "
                   "(2, 99), (3, 98)")
        db.execute("create table w (v int64, x int64)")
        db.execute("insert into w values (10, 7), (11, 5)")
        return db

    q = ("select w.x g, count(*) c, count(w.v) k from e "
         "left join w on (e.v2 = w.v) group by w.x")
    fused, plain = build(True), build(False)
    assert fused.execute(q).rows() == plain.execute(q).rows()
    rows = dict((g, (c, k)) for g, c, k in fused.execute(q).rows())
    assert rows[None] == (3, 0)  # the padded NULL-key group
    assert fused.stats.fused_outer_groups > 0


@pytest.mark.parametrize("query", TEXT_CHAIN_QUERIES)
def test_text_column_chain_motion_is_exact(query, monkeypatch):
    """Chained and staged pipelines must charge identical motion bytes for
    text columns: the chain gathers exact per-row byte lengths through its
    composed maps instead of estimating by mean row width."""
    from repro.sqlengine import physicalplan

    chained_db = _text_chain_db(True)
    chained = chained_db.execute(query)
    original = physicalplan._Compiler.compile_core

    def compile_without_chain(self, core):
        plan = original(self, core)
        plan.chain = False
        return plan

    monkeypatch.setattr(physicalplan._Compiler, "compile_core",
                        compile_without_chain)
    staged_db = _text_chain_db(True)
    staged = staged_db.execute(query)
    assert chained.rows() == staged.rows()
    assert chained_db.stats.join_chain_fusions > 0
    assert staged_db.stats.join_chain_fusions == 0
    assert chained_db.stats.motion_bytes == staged_db.stats.motion_bytes
