"""Tests for the in-repo computation of pi's hexadecimal digits."""

import pytest

from repro.ff.pi_digits import pi_fractional_hex_digits, pi_words


def test_first_hex_digits_match_known_expansion():
    # pi = 3.243F6A8885A308D313198A2E03707344...
    known = [0x2, 0x4, 0x3, 0xF, 0x6, 0xA, 0x8, 0x8, 0x8, 0x5,
             0xA, 0x3, 0x0, 0x8, 0xD, 0x3]
    assert pi_fractional_hex_digits(16) == known


def test_known_blowfish_p_array_words():
    words = pi_words(4)
    assert words[0] == 0x243F6A88
    assert words[1] == 0x85A308D3
    assert words[2] == 0x13198A2E
    assert words[3] == 0x03707344


def test_known_first_s_box_word():
    # S-box 0 starts at word 18 of the expansion: 0xD1310BA6.
    words = pi_words(19)
    assert words[18] == 0xD1310BA6


def test_digit_count_matches_request():
    assert len(pi_fractional_hex_digits(100)) == 100


def test_digits_are_in_range():
    assert all(0 <= d <= 15 for d in pi_fractional_hex_digits(64))


def test_longer_prefix_extends_shorter_prefix():
    short = pi_fractional_hex_digits(32)
    long = pi_fractional_hex_digits(64)
    assert long[:32] == short


def test_word_packing_is_big_endian():
    digits = pi_fractional_hex_digits(8)
    value = 0
    for d in digits:
        value = (value << 4) | d
    assert pi_words(1)[0] == value


def test_rejects_non_positive_digit_counts():
    with pytest.raises(ValueError):
        pi_fractional_hex_digits(0)
    with pytest.raises(ValueError):
        pi_fractional_hex_digits(-3)
