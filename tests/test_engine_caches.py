"""Tests for the engine's caching layer.

Covers the three caches the hot path relies on:

* the **plan/statement cache** (template-normalised parsed ASTs),
* the **table-level index cache** (versioned per-column sorted indexes),
* the executor's **join pruning** from index min/max stats,

plus the acceptance-level integration: a full Randomised Contraction run
must populate both caches and produce bit-for-bit identical labels with the
caches disabled.
"""

import numpy as np
import pytest

from repro.core import RandomisedContraction
from repro.core.unionfind import unionfind_labels
from repro.graphs import gnm_random_graph
from repro.graphs.io import load_edges_into
from repro.sqlengine import Database
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.plancache import PlanCache, normalize_statement


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------


def test_normalize_parameterises_integers_and_name_suffixes():
    template, params = normalize_statement(
        "create table ccreps3 as select v1 v, axplusb(v2, 123, 45) r "
        "from ccgraph where v1 != 9"
    )
    assert params == ["3", "1", "2", "123", "45", "1", "9"]
    assert "ccreps$0" in template
    assert "$3" in template and "$4" in template
    # Floats and mid-identifier digits stay literal.
    t2, p2 = normalize_statement("select 1.5, 2e5, x2y from t12")
    assert "1.5" in t2 and "2e5" in t2 and "x2y" in t2
    assert p2 == ["12"]


def test_plan_cache_hits_across_table_suffixes_and_constants():
    cache = PlanCache()
    first, hit1 = cache.statement_for(
        "create table r7 as select v1, 10 c from g7 where v1 != 3"
    )
    second, hit2 = cache.statement_for(
        "create table r8 as select v1, 99 c from g8 where v1 != 5"
    )
    assert not hit1 and hit2
    # The patched template must equal a from-scratch parse.
    assert second == parse_statement(
        "create table r8 as select v1, 99 c from g8 where v1 != 5"
    )


def test_plan_cache_statements_execute_correctly(db):
    db.execute("create table t1 (v int64, w int64)")
    db.execute("insert into t1 values (1, 10), (2, 20)")
    db.execute("create table t2 (v int64, w int64)")
    db.execute("insert into t2 values (3, 30), (4, 40)")
    first = db.execute("select w from t1 where v = 2").scalar()
    second = db.execute("select w from t2 where v = 4").scalar()
    assert (first, second) == (20, 40)
    assert db.stats.plan_cache_hits >= 2  # the insert + select templates


def test_plan_cache_falls_back_on_uncacheable_sql(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (7)")
    # Comments and "$" bypass the template machinery entirely.
    assert db.execute("select v from t -- trailing comment\n").scalar() == 7
    before = len(db._plans)
    db.execute("select v /* block */ from t")
    assert len(db._plans) == before
    # Digits inside string literals are not parameterised.
    db.execute("create table s (name text)")
    db.execute("insert into s values ('agent 47')")
    assert db.execute("select name from s").scalar() == "agent 47"


def test_dollar_placeholders_are_template_only(db):
    """User SQL can never smuggle a template placeholder into the engine."""
    from repro.sqlengine.errors import ParseError

    db.execute("create table t (v int64)")
    db.execute("insert into t values (1)")
    for bad in ["select $0 from t", "select x$3 from t"]:
        with pytest.raises(ParseError):
            db.execute(bad)


def test_plan_cache_is_bounded():
    cache = PlanCache(max_entries=8)
    for i in range(50):
        # Distinct templates: the column alias varies structurally.
        cache.statement_for(f"select 1 a{'x' * (i % 25)} from t")
    assert len(cache) <= 8


def test_plan_cache_repeated_hits_reuse_one_entry():
    cache = PlanCache()
    results = []
    for i in range(5):
        statement, hit = cache.statement_for(f"select {i} from t{i}")
        results.append((statement, hit))
    assert [hit for _, hit in results] == [False, True, True, True, True]
    assert len(cache) == 1


# ---------------------------------------------------------------------------
# table index cache
# ---------------------------------------------------------------------------


def test_index_cache_hit_and_build(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (3), (1), (2)")
    table = db.table("t")
    assert table.cached_index("v") is None
    index = table.ensure_index("v")
    assert index is not None and index.is_unique
    assert table.cached_index("v") is index
    assert table.ensure_index("v") is index


def test_index_cache_invalidated_by_append(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (3), (1)")
    table = db.table("t")
    stale = table.ensure_index("v")
    db.execute("insert into t values (2)")
    assert table.cached_index("v") is None  # version moved on
    fresh = table.ensure_index("v")
    assert fresh is not stale
    assert fresh.n_rows == 3
    assert (fresh.min_value, fresh.max_value) == (1, 3)


def test_index_cache_invalidated_by_truncate(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (5)")
    table = db.table("t")
    table.ensure_index("v")
    db.execute("truncate table t")
    assert table.cached_index("v") is None
    assert table.n_rows == 0


def test_stale_index_never_serves_a_join(db):
    """Append between two identical joins: the second must see the new row."""
    db.execute("create table r (v int64, rep int64)")
    db.execute("insert into r values (1, 10), (2, 20)")
    db.execute("create table e (v int64)")
    db.execute("insert into e values (1), (2), (3)")
    q = "select e.v, r.rep from e, r where e.v = r.v"
    assert len(db.execute(q).rows()) == 2
    db.execute("insert into r values (3, 30)")
    rows = sorted(db.execute(q).rows())
    assert rows == [(1, 10), (2, 20), (3, 30)]


def test_unindexable_columns_return_none(db):
    db.execute("create table t (name text, v int64)")
    db.execute("insert into t values ('a', 1)")
    table = db.table("t")
    assert table.ensure_index("name") is None
    db.execute("insert into t values ('b', null)")
    assert table.ensure_index("v") is None  # NULL-bearing column


def test_dense_index_defers_its_sort(db):
    """Dense-key columns get O(n) stats only; the argsort that the
    direct-address join never consumes must not be paid up front."""
    values = np.random.default_rng(0).permutation(10_000).astype(np.int64)
    db.load_table("t", {"v": values})
    index = db.table("t").ensure_index("v")
    assert index.is_unique and (index.min_value, index.max_value) == (0, 9_999)
    assert index._order is None  # not materialised by stats-only consumers
    # First consumer that needs the order materialises it correctly.
    assert np.array_equal(index.order, np.argsort(values, kind="stable"))
    assert index._order is not None


def test_join_pruning_skips_motion(db):
    """Disjoint key ranges: join is proven empty, no data motion charged."""
    n = 5000  # large enough that the planner would redistribute, not broadcast
    db.load_table("lo", {"v": np.arange(n, dtype=np.int64)})
    db.load_table("hi", {"v": np.arange(n, dtype=np.int64) + 10 ** 12,
                         "w": np.ones(n, dtype=np.int64)})
    # The probe side's index is never built speculatively; any earlier keyed
    # operation (here a GROUP BY, as in the contraction rounds) warms it.
    db.execute("select v, count(*) c from lo group by v")
    motion_before = db.stats.motion_bytes
    pruned_before = db.stats.joins_pruned
    query = "select count(*) from lo, hi where lo.v = hi.v"
    assert db.execute(query).scalar() == 0
    assert db.stats.joins_pruned == pruned_before + 1
    assert db.stats.motion_bytes == motion_before


# ---------------------------------------------------------------------------
# subquery result cache
# ---------------------------------------------------------------------------


def _counting_db() -> Database:
    db = Database(n_segments=4)
    db.execute("create table t (v int64, w int64)")
    db.execute("insert into t values (1, 10), (2, 20), (3, 30)")
    return db


def test_result_cache_serves_repeated_scalar_subquery(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1), (2), (3)")
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 3
    assert db.stats.subquery_cache_misses == 1
    assert db.execute(q).scalar() == 3
    assert db.execute(q).scalar() == 3
    assert db.stats.subquery_cache_hits == 2
    assert db.stats.subquery_cache_misses == 1
    # Each served statement still counts as a query (the paper counts SQL
    # statements, not executions).
    assert db.stats.queries >= 5


def test_result_cache_invalidated_by_append():
    db = _counting_db()
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 3
    assert db.execute(q).scalar() == 3
    assert db.stats.subquery_cache_hits == 1
    db.execute("insert into t values (4, 40)")  # version bump
    assert db.execute(q).scalar() == 4
    assert db.stats.subquery_cache_hits == 1
    assert db.stats.subquery_cache_misses == 2


def test_result_cache_invalidated_by_truncate():
    db = _counting_db()
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 3
    db.execute("truncate table t")
    assert db.execute(q).scalar() == 0


def test_result_cache_invalidated_by_drop_and_recreate():
    db = _counting_db()
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 3
    db.execute("drop table t")
    db.execute("create table t (v int64, w int64)")
    db.execute("insert into t values (9, 90)")
    # Same name, same schema, same version number (0 on both) — only the
    # table uid distinguishes them; the stale result must not be served.
    assert db.execute(q).scalar() == 1


def test_result_cache_invalidated_by_rename():
    from repro.sqlengine.errors import CatalogError

    db = _counting_db()
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 3
    db.execute("alter table t rename to u")
    with pytest.raises(CatalogError):
        db.execute(q)  # the cached result must not mask the missing table
    # Renaming back restores the very same table state: serving the cached
    # result is correct (uid and version both still match).
    db.execute("alter table u rename to t")
    assert db.execute(q).scalar() == 3
    assert db.stats.subquery_cache_hits == 1


def test_result_cache_skips_udf_statements(db):
    """A statement with a scalar function call may be non-deterministic
    (user-defined); it must always execute."""
    calls = []

    def impulse(v):
        calls.append(1)
        return v * 0 + len(calls)

    db.create_function("impulse", impulse)
    db.execute("create table t (v int64)")
    db.execute("insert into t values (7)")
    q = "select impulse(v) x from t"
    assert db.execute(q).scalar() == 1
    assert db.execute(q).scalar() == 2  # executed again, not served
    assert db.stats.subquery_cache_hits == 0
    assert db.stats.subquery_cache_misses == 0


def test_result_cache_keys_on_parameters(db):
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1), (2), (3)")
    # Same template, different parameter: must not cross-serve...
    assert db.execute("select count(*) c from t where v != 1").scalar() == 2
    assert db.execute("select count(*) c from t where v != 2").scalar() == 2
    assert db.stats.subquery_cache_hits == 0
    assert db.stats.subquery_cache_misses == 2
    # ...but both parameterisations now stay warm side by side.
    assert db.execute("select count(*) c from t where v != 1").scalar() == 2
    assert db.execute("select count(*) c from t where v != 2").scalar() == 2
    assert db.stats.subquery_cache_hits == 2
    assert db.stats.subquery_cache_misses == 2


def test_result_cache_alternating_parameters_all_hit(db):
    """The thrash case the single-slot cache lost: two parameter sets
    alternating must miss once each and then hit forever."""
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1), (2), (3), (4)")
    for round_no in range(10):
        assert db.execute("select count(*) c from t where v < 3").scalar() == 2
        assert db.execute("select count(*) c from t where v < 4").scalar() == 3
    assert db.stats.subquery_cache_misses == 2
    assert db.stats.subquery_cache_hits == 18
    assert db.stats.subquery_cache_evictions == 0


def test_result_cache_capacity_eviction(db):
    """More live parameterisations than the per-template LRU holds: the
    oldest entries age out and the eviction counter says so."""
    from repro.sqlengine.database import RESULT_CACHE_MAX_ENTRIES

    db.execute("create table t (v int64)")
    db.execute("insert into t values (1)")
    n_params = RESULT_CACHE_MAX_ENTRIES + 3
    for k in range(n_params):
        db.execute(f"select count(*) c from t where v != {k + 10}")
    assert db.stats.subquery_cache_misses == n_params
    assert db.stats.subquery_cache_evictions == 3
    # The newest entries survived; the oldest were evicted and re-miss.
    db.execute(f"select count(*) c from t where v != {n_params + 9}")
    assert db.stats.subquery_cache_hits == 1
    db.execute("select count(*) c from t where v != 10")
    assert db.stats.subquery_cache_misses == n_params + 1


def test_result_cache_ddl_churn_interleaved(db):
    """Append/rename/drop DDL interleaved with alternating parameters:
    every mutation moves the fingerprint, so stale entries never serve,
    and the counters account each transition exactly."""
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1), (2)")
    q_low, q_high = ("select count(*) c from t where v < 2",
                     "select count(*) c from t where v < 9")
    assert db.execute(q_low).scalar() == 1
    assert db.execute(q_high).scalar() == 2
    assert db.execute(q_low).scalar() == 1
    assert (db.stats.subquery_cache_hits,
            db.stats.subquery_cache_misses) == (1, 2)
    # Append: both entries' fingerprints go stale -> two fresh misses.
    db.execute("insert into t values (5)")
    assert db.execute(q_low).scalar() == 1
    assert db.execute(q_high).scalar() == 3
    assert (db.stats.subquery_cache_hits,
            db.stats.subquery_cache_misses) == (1, 4)
    # Rename away and back: the table keeps uid+version, so the round-trip
    # serves the warm entries again.
    db.execute("alter table t rename to t2")
    db.execute("alter table t2 rename to t")
    assert db.execute(q_low).scalar() == 1
    assert (db.stats.subquery_cache_hits,
            db.stats.subquery_cache_misses) == (2, 4)
    # Drop and re-create: same name, new uid -> miss, then hit again.
    db.execute("drop table t")
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1)")
    assert db.execute(q_low).scalar() == 1
    assert db.execute(q_low).scalar() == 1
    assert (db.stats.subquery_cache_hits,
            db.stats.subquery_cache_misses) == (3, 5)


def test_result_cache_skips_large_results(db):
    from repro.sqlengine.database import RESULT_CACHE_MAX_ROWS

    n = RESULT_CACHE_MAX_ROWS + 1
    db.load_table("big", {"v": np.arange(n, dtype=np.int64)})
    q = "select v from big"
    assert len(db.execute(q).rows()) == n
    assert len(db.execute(q).rows()) == n
    # Too large to admit: never served, and every execution counts as a
    # miss so the hit rate reflects executions the cache failed to save.
    assert db.stats.subquery_cache_hits == 0
    assert db.stats.subquery_cache_misses == 2


def test_result_cache_can_be_disabled():
    db = Database(n_segments=4, use_result_cache=False)
    db.execute("create table t (v int64)")
    db.execute("insert into t values (5)")
    q = "select count(*) from t"
    assert db.execute(q).scalar() == 1
    assert db.execute(q).scalar() == 1
    assert db.stats.subquery_cache_hits == 0
    assert db.stats.subquery_cache_misses == 0


# ---------------------------------------------------------------------------
# integration: Randomised Contraction end-to-end
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["fast", "deterministic-space"])
def test_randomised_contraction_exercises_caches(variant):
    edges = gnm_random_graph(600, 1100, np.random.default_rng(11))

    def run(use_caches: bool):
        db = Database(n_segments=4, use_plan_cache=use_caches,
                      use_index_cache=use_caches)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction(variant=variant).run(db, "edges", seed=5)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        return vertices[order], labels[order], result.stats

    v_on, l_on, stats_on = run(True)
    v_off, l_off, stats_off = run(False)
    # Acceptance: caches must actually engage during the run...
    assert stats_on.plan_cache_hits > 0
    assert stats_on.index_cache_hits > 0
    assert stats_off.plan_cache_hits == 0
    assert stats_off.index_cache_hits == 0
    # ...without changing a single output bit.
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)
    # And the labelling partitions vertices exactly like union-find does.
    truth = unionfind_labels(edges)
    by_vertex = dict(zip(v_on.tolist(), l_on.tolist()))
    assert set(by_vertex) == set(truth)
    grouped: dict[int, set[int]] = {}
    for vertex, label in by_vertex.items():
        grouped.setdefault(label, set()).add(vertex)
    truth_grouped: dict[int, set[int]] = {}
    for vertex, label in truth.items():
        truth_grouped.setdefault(label, set()).add(vertex)
    assert sorted(map(sorted, grouped.values())) == \
        sorted(map(sorted, truth_grouped.values()))
