"""Tests for the Spark SQL comparison backend (Section VII-C)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import connected_components
from repro.graphs import gnm_random_graph, path_graph, streets_like_graph
from repro.spark import SparkSQLDatabase
from repro.spark.engine import SparkExecutor, _partition_ids
from repro.sqlengine import Database
from repro.sqlengine.operators import NO_MATCH, join_indices, left_join_indices
from repro.sqlengine.types import Column

from .conftest import edge_lists


def test_spark_join_group_by_matches_mpp_above_task_threshold():
    """Regression: the Spark model's partitioned join emits partition-major
    (non-monotone) left indices, so the fused join->GROUP BY expansion must
    not run on it — it silently mislabelled groups before the
    ``monotone_join_output`` gate existed."""
    from repro.graphs import load_edges_into

    rng = np.random.default_rng(8)
    n = 3000  # far above n_tasks * 4, so the partitioned join kernel engages
    groups = rng.integers(0, 40, n)
    keys = rng.integers(0, 500, n)
    weights = rng.integers(0, 99, 500)
    mpp = Database()
    spark = SparkSQLDatabase()
    for db in (mpp, spark):
        db.load_table("t", {"g": groups, "k": keys})
        db.load_table("u", {"k": np.arange(500, dtype=np.int64),
                            "b": weights})
    q = ("select t.g, count(*) c, sum(u.b) s, min(u.b) lo "
         "from t, u where t.k = u.k group by t.g")
    assert sorted(mpp.execute(q).rows()) == sorted(spark.execute(q).rows())
    assert mpp.stats.fused_group_pipelines == 1
    assert spark.stats.fused_group_pipelines == 0  # staged fallback


def test_same_sql_same_answers():
    sql = """
        create table doubled as
        select v1, v2 from g union all select v2, v1 from g
        distributed by (v1)
    """
    edges = gnm_random_graph(200, 300, np.random.default_rng(0))
    mpp = Database()
    spark = SparkSQLDatabase()
    from repro.graphs import load_edges_into

    for db in (mpp, spark):
        load_edges_into(db, "g", edges)
        db.execute(sql)
    query = "select v1, count(*) from doubled group by v1"
    assert sorted(mpp.execute(query).rows()) == sorted(spark.execute(query).rows())


@given(edge_lists(max_vertices=16, max_edges=24))
@settings(max_examples=10)
def test_algorithms_agree_across_backends(edges):
    mpp = connected_components(edges, "rc", seed=4, validate=True)
    spark = connected_components(edges, "rc", seed=4,
                                 db=SparkSQLDatabase(), validate=True)
    assert mpp.n_components == spark.n_components


def test_spark_charges_more_motion():
    edges = path_graph(5000)
    mpp = connected_components(edges, "rc", seed=1)
    spark = connected_components(edges, "rc", seed=1, db=SparkSQLDatabase())
    assert spark.run.stats.motion_bytes > mpp.run.stats.motion_bytes


def test_spark_launches_tasks():
    spark = SparkSQLDatabase(n_tasks=16)
    edges = path_graph(3000)
    connected_components(edges, "rc", seed=1, db=spark)
    assert spark.tasks_launched > 50


def test_partition_ids_cover_all_tasks():
    column = Column.from_values(np.arange(10_000, dtype=np.int64))
    parts = _partition_ids(column, 16)
    assert set(parts.tolist()) == set(range(16))


def test_partition_ids_send_nulls_to_task_zero():
    column = Column.from_values(np.array([1, 2, 3], dtype=np.int64),
                                mask=np.array([False, True, False]))
    parts = _partition_ids(column, 8)
    assert parts[1] == 0


def make_spark_executor(n_tasks=8):
    db = SparkSQLDatabase(n_tasks=n_tasks)
    return db._executor


def int_column(values):
    return Column.from_values(np.asarray(values, dtype=np.int64))


def test_partitioned_join_matches_plain_join():
    rng = np.random.default_rng(3)
    left = int_column(rng.integers(0, 200, size=2000))
    right = int_column(rng.integers(0, 200, size=1500))
    expected = sorted(zip(*[arr.tolist() for arr in
                            join_indices([left], [right])]))
    executor = make_spark_executor()
    got = sorted(zip(*[arr.tolist() for arr in
                       executor._join_kernel([left], [right])]))
    assert got == expected


def test_partitioned_left_join_matches_plain():
    rng = np.random.default_rng(4)
    left = int_column(rng.integers(0, 100, size=1200))
    right = int_column(rng.integers(50, 150, size=900))
    expected = sorted(zip(*[arr.tolist() for arr in
                            left_join_indices([left], [right])]))
    executor = make_spark_executor()
    got = sorted(zip(*[arr.tolist() for arr in
                       executor._left_join_kernel([left], [right])]))
    assert got == expected


def test_partitioned_group_covers_all_rows():
    rng = np.random.default_rng(5)
    keys = int_column(rng.integers(0, 50, size=3000))
    executor = make_spark_executor()
    order, starts = executor._group_kernel([keys])
    assert sorted(order.tolist()) == list(range(3000))
    # Group count must match the number of distinct keys.
    assert starts.shape[0] == len(set(keys.values.tolist()))


def test_partitioned_distinct_matches_plain():
    rng = np.random.default_rng(6)
    a = int_column(rng.integers(0, 30, size=2500))
    b = int_column(rng.integers(0, 30, size=2500))
    executor = make_spark_executor()
    kept = executor._distinct_kernel([a, b])
    pairs = {(int(a.values[i]), int(b.values[i])) for i in kept.tolist()}
    expected = set(zip(a.values.tolist(), b.values.tolist()))
    assert pairs == expected


def test_section_viic_shape_spark_is_slower():
    """The qualitative VII-C result: same SQL, slower on the Spark model.

    Uses the streets dataset (the comparison graph of the paper's VII-C)
    at a size where task overhead dominates; asserts a ratio > 1 only, the
    magnitude is reported by the benchmark."""
    edges = streets_like_graph(80, 80)
    mpp = connected_components(edges, "rc", seed=2)
    spark = connected_components(edges, "rc", seed=2, db=SparkSQLDatabase())
    assert spark.run.elapsed_seconds > 0.8 * mpp.run.elapsed_seconds
