"""Tests for the user-defined SQL functions (axplusb, axbmodp, blowfish)."""

import numpy as np
import pytest

from repro.core.udfs import register_udfs
from repro.ff.blowfish import Blowfish
from repro.ff.gf2_64 import gf2_axplusb, to_signed
from repro.sqlengine import Database
from repro.sqlengine.errors import SqlError


@pytest.fixture()
def db():
    database = Database()
    register_udfs(database)
    database.execute("create table t (x int)")
    database.execute("insert into t values (0), (1), (7), (12345), (-3)")
    return database


def test_axplusb_matches_reference(db):
    a, b = 0x123456789ABCDEF1, 0x42
    rows = db.execute(
        f"select x, axplusb({to_signed(a)}, x, {to_signed(b)}) from t"
    ).rows()
    for x, result in rows:
        assert result == to_signed(gf2_axplusb(a, x, b))


def test_axplusb_identity(db):
    rows = db.execute("select x, axplusb(1, x, 0) from t").rows()
    for x, result in rows:
        assert result == x


def test_axplusb_rejects_zero_a(db):
    with pytest.raises(SqlError, match="bijection"):
        db.execute("select axplusb(0, x, 5) from t")


def test_axbmodp(db):
    rows = db.execute("select x, axbmodp(3, x, 4, 2147483647) from t where x >= 0").rows()
    for x, result in rows:
        assert result == (3 * x + 4) % 2147483647


def test_blowfish_matches_cipher(db):
    cipher = Blowfish.from_round_key(99)
    rows = db.execute("select x, blowfish(99, x) from t where x >= 0").rows()
    for x, result in rows:
        assert result == to_signed(cipher.encrypt_block(x))


def test_udfs_propagate_nulls(db):
    db.execute("insert into t values (null)")
    rows = db.execute("select x, axplusb(7, x, 1) from t where x is null").rows()
    assert rows[0][1] is None


def test_udf_on_scalar_literal(db):
    value = db.execute("select axplusb(1, 41, 1)").scalar()
    assert value == gf2_axplusb(1, 41, 1)


def test_registration_is_idempotent(db):
    register_udfs(db)
    assert db.execute("select axplusb(1, 5, 0)").scalar() == 5


def test_text_least_greatest_alongside_udfs(db):
    """least/greatest are the algorithm's builtins; their TEXT overload
    must coexist with the registered UDFs in one statement."""
    db.execute("create table lbl (x int, name text)")
    db.execute("insert into lbl values (1, 'beta'), (7, 'alpha'), "
               "(12345, null)")
    rows = db.execute(
        "select axplusb(1, x, 0), least(name, 'delta'), "
        "greatest(name, 'delta') from lbl"
    ).rows()
    assert rows == [(1, "beta", "delta"), (7, "alpha", "delta"),
                    (12345, "delta", "delta")]


def test_custom_udf_registration():
    db = Database()

    def double_plus(x, k):
        return np.asarray(x) * 2 + k

    db.create_function("double_plus", double_plus)
    db.execute("create table t (x int)")
    db.execute("insert into t values (5), (10)")
    rows = db.execute("select double_plus(x, 1) from t").rows()
    assert [r[0] for r in rows] == [11, 21]


def test_udf_wrong_row_count_rejected():
    db = Database()
    db.create_function("broken", lambda x: np.array([1, 2, 3]))
    db.execute("create table t (x int)")
    db.execute("insert into t values (5)")
    with pytest.raises(SqlError, match="rows"):
        db.execute("select broken(x) from t")
