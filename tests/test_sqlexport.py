"""Tests for the PostgreSQL export of Randomised Contraction.

The exported PL/pgSQL procedure cannot run here (no PostgreSQL offline),
but its round queries are shared templates that *are* executed against our
engine — one full contraction driven with the exported SQL skeleton, and
validated against ground truth.
"""

import random

import numpy as np
import pytest

from repro.core.labels import validate_labelling
from repro.core.sqlexport import engine_round_queries, postgres_script
from repro.ff.gfp import MERSENNE_31
from repro.graphs import EdgeList, gnm_random_graph, load_edges_into
from repro.sqlengine import Database


def test_script_contains_the_figure3_structure():
    script = postgres_script()
    assert "create or replace procedure randomised_contraction()" in script
    assert "union all" in script
    assert f"% {MERSENNE_31}" in script
    assert "left outer join" in script
    assert "coalesce" in script
    assert "exit when row_count = 0" in script


def test_script_parameterisation():
    script = postgres_script(edges_table="my_edges", result_table="labels",
                             p=101, prefix="x_")
    assert "my_edges" in script
    assert "labels" in script
    assert "% 101" in script
    assert "x_e" in script


def test_script_rejects_composite_p():
    with pytest.raises(ValueError, match="not prime"):
        postgres_script(p=100)


def test_script_rejects_weird_table_names():
    with pytest.raises(ValueError, match="suspicious"):
        postgres_script(edges_table="edges; drop table users")


def test_round_queries_reject_zero_a():
    with pytest.raises(ValueError):
        engine_round_queries("cc", a=0, b=1, p=101)


def run_exported_skeleton(db: Database, edges: EdgeList, p: int = MERSENNE_31,
                          seed: int = 0) -> None:
    """Drive the exported Figure-3 queries against our engine."""
    rng = random.Random(seed)
    load_edges_into(db, "edges", edges)
    db.execute(
        "create table cc_e as select v1, v2 from edges "
        "union all select v2, v1 from edges distributed by (v1)"
    )
    first_round = True
    while True:
        a = rng.randrange(1, p)
        b = rng.randrange(0, p)
        queries = engine_round_queries("cc_", a, b, p)
        db.execute(queries["representatives"])
        row_count = db.execute(queries["contract"]).rowcount
        db.execute("drop table cc_e")
        db.execute("alter table cc_t rename to cc_e")
        if first_round:
            first_round = False
            db.execute("alter table cc_r rename to cc_l")
        else:
            db.execute(queries["compose"])
            db.execute("drop table cc_l, cc_r")
            db.execute("alter table cc_t rename to cc_l")
        if row_count == 0:
            break
    db.execute("alter table cc_l rename to ccresult")
    db.execute("drop table cc_e")


def test_exported_queries_run_on_our_engine():
    edges = gnm_random_graph(80, 120, np.random.default_rng(3))
    db = Database()
    run_exported_skeleton(db, edges, seed=5)
    table = db.table("ccresult")
    vertices = table.column("v").values
    labels = table.column("rep").values
    report = validate_labelling(edges, vertices, labels)
    assert report.valid, report.reason


def test_exported_queries_handle_loops_and_multiple_components():
    edges = EdgeList.from_pairs([(1, 2), (2, 3), (10, 11), (42, 42)])
    db = Database()
    run_exported_skeleton(db, edges, seed=1)
    table = db.table("ccresult")
    report = validate_labelling(
        edges, table.column("v").values, table.column("rep").values
    )
    assert report.valid, report.reason
