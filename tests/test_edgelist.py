"""Tests for the EdgeList container."""

import numpy as np
import pytest
from hypothesis import given

from repro.graphs import EdgeList

from .conftest import edge_lists


def test_from_pairs_and_lengths():
    edges = EdgeList.from_pairs([(1, 2), (3, 4)])
    assert edges.n_edges == 2
    assert edges.n_vertices == 4


def test_empty():
    edges = EdgeList.empty()
    assert edges.n_edges == 0
    assert edges.n_vertices == 0
    assert edges.max_vertex_id() == -1


def test_vertices_sorted_unique():
    edges = EdgeList.from_pairs([(5, 1), (1, 5), (3, 3)])
    assert edges.vertices().tolist() == [1, 3, 5]


def test_canonical_dedups_and_orients():
    edges = EdgeList.from_pairs([(2, 1), (1, 2), (1, 2)])
    canonical = edges.canonical()
    assert canonical.n_edges == 1
    assert (canonical.src[0], canonical.dst[0]) == (1, 2)


def test_canonical_keeps_loop_only_for_isolated_vertices():
    edges = EdgeList.from_pairs([(1, 2), (1, 1), (7, 7)])
    canonical = edges.canonical()
    pairs = set(zip(canonical.src.tolist(), canonical.dst.tolist()))
    assert pairs == {(1, 2), (7, 7)}


def test_doubled():
    edges = EdgeList.from_pairs([(1, 2)])
    doubled = edges.doubled()
    pairs = set(zip(doubled.src.tolist(), doubled.dst.tolist()))
    assert pairs == {(1, 2), (2, 1)}


@given(edge_lists())
def test_canonical_preserves_vertex_set(edges):
    assert np.array_equal(edges.canonical().vertices(), edges.vertices())


@given(edge_lists())
def test_randomised_ids_preserve_structure(edges):
    rng = np.random.default_rng(0)
    relabelled = edges.with_randomised_ids(rng)
    assert relabelled.n_edges == edges.n_edges
    assert relabelled.n_vertices == edges.n_vertices
    # Degree multiset is invariant under relabelling.
    assert relabelled.degree_histogram() == edges.degree_histogram()


def test_randomised_ids_rejects_small_id_space():
    edges = EdgeList.from_pairs([(1, 2), (3, 4)])
    with pytest.raises(ValueError):
        edges.with_randomised_ids(np.random.default_rng(0), id_space=2)


def test_relabelled_explicit_mapping():
    edges = EdgeList.from_pairs([(1, 2), (2, 3)])
    out = edges.relabelled(np.array([1, 2, 3]), np.array([10, 20, 30]))
    assert set(zip(out.src.tolist(), out.dst.tolist())) == {(10, 20), (20, 30)}


def test_relabelled_requires_full_coverage():
    edges = EdgeList.from_pairs([(1, 2)])
    with pytest.raises(ValueError):
        edges.relabelled(np.array([1]), np.array([10]))


def test_concat_and_offset():
    a = EdgeList.from_pairs([(1, 2)])
    b = EdgeList.from_pairs([(1, 2)]).offset_ids(10)
    both = a.concat(b)
    assert both.n_edges == 2
    assert both.n_vertices == 4


def test_degree_histogram_ignores_loops():
    edges = EdgeList.from_pairs([(1, 2), (2, 3), (9, 9)])
    histogram = edges.degree_histogram()
    assert histogram == {1: 2, 2: 1}


def test_byte_size():
    edges = EdgeList.from_pairs([(1, 2), (3, 4)])
    assert edges.byte_size() == 32


def test_equality_is_structural():
    a = EdgeList.from_pairs([(1, 2), (3, 4)])
    b = EdgeList.from_pairs([(4, 3), (2, 1), (1, 2)])
    assert a == b
    c = EdgeList.from_pairs([(1, 2)])
    assert a != c


def test_mismatched_arrays_rejected():
    with pytest.raises(ValueError):
        EdgeList(np.array([1, 2]), np.array([1]))
