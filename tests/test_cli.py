"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_run_on_dataset(capsys):
    code, out = run_cli(capsys, "run", "pathunion10", "--scale", "0.05",
                        "--validate")
    assert code == 0
    assert "components      : 10" in out
    assert "validation" in out


def test_run_with_method_and_variant(capsys):
    code, out = run_cli(
        capsys, "run", "pathunion10", "--scale", "0.05",
        "--method", "encryption", "--variant", "deterministic-space",
    )
    assert code == 0
    assert "encryption" in out


def test_run_on_spark_backend(capsys):
    code, out = run_cli(capsys, "run", "pathunion10", "--scale", "0.05",
                        "--backend", "spark")
    assert code == 0
    assert "spark" in out


def test_run_on_csv_file(capsys, tmp_path):
    path = tmp_path / "g.csv"
    path.write_text("v1,v2\n1,2\n2,3\n7,7\n")
    code, out = run_cli(capsys, "run", str(path))
    assert code == 0
    assert "components      : 2" in out


def test_run_unknown_graph_errors(capsys):
    with pytest.raises(SystemExit):
        main(["run", "no-such-thing"])


def test_datasets_listing(capsys):
    code, out = run_cli(capsys, "datasets")
    assert code == 0
    assert "andromeda" in out
    assert "pathunion10" in out


def test_datasets_build(capsys):
    code, out = run_cli(capsys, "datasets", "--build", "--scale", "0.02")
    assert code == 0
    assert "TABLE II" in out


def test_bench_small_grid(capsys):
    code, out = run_cli(
        capsys, "bench", "--datasets", "pathunion10",
        "--algorithms", "rc", "tp", "--scale", "0.05",
    )
    assert code == 0
    assert "TABLE III" in out
    assert "TABLE IV" in out
    assert "TABLE V" in out
    assert "FIGURE 6" in out


def test_gamma(capsys):
    code, out = run_cli(capsys, "gamma", "pathunion10", "--scale", "0.05",
                        "--rounds", "4")
    assert code == 0
    assert "gamma" in out
    assert "OK" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
