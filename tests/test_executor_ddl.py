"""DDL/DML execution tests: create, insert, drop, rename, truncate."""

import numpy as np
import pytest

from repro.sqlengine import CatalogError, Database, PlanError


def test_create_table_as_returns_rowcount():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("insert into a values (1), (2), (3)")
    result = db.execute("create table b as select x from a where x > 1")
    assert result.rowcount == 2
    assert db.table("b").n_rows == 2


def test_create_table_as_distribution_column_recorded():
    db = Database()
    db.execute("create table a (x int, y int)")
    db.execute("insert into a values (1, 2)")
    db.execute("create table b as select x, y from a distributed by (y)")
    assert db.table("b").distribution_column == "y"


def test_create_table_as_rejects_unknown_distribution_column():
    db = Database()
    db.execute("create table a (x int)")
    with pytest.raises(PlanError, match="not in the select list"):
        db.execute("create table b as select x from a distributed by (nope)")


def test_create_table_as_rejects_duplicate_columns():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("insert into a values (1)")
    with pytest.raises(PlanError, match="[Dd]uplicate"):
        db.execute("create table b as select x, x from a")


def test_create_existing_table_rejected():
    db = Database()
    db.execute("create table a (x int)")
    with pytest.raises(CatalogError, match="already exists"):
        db.execute("create table a (y int)")


def test_insert_values_and_nulls():
    db = Database()
    db.execute("create table t (a int, b int)")
    assert db.execute("insert into t values (1, 2), (3, null)").rowcount == 2
    rows = db.execute("select a, b from t").rows()
    assert sorted(rows, key=str) == [(1, 2), (3, None)]


def test_insert_select():
    db = Database()
    db.execute("create table src (a int)")
    db.execute("insert into src values (1), (2)")
    db.execute("create table dst (a int)")
    assert db.execute("insert into dst select a from src").rowcount == 2
    assert db.table("dst").n_rows == 2


def test_insert_select_arity_mismatch():
    db = Database()
    db.execute("create table src (a int, b int)")
    db.execute("create table dst (a int)")
    with pytest.raises(PlanError, match="arity"):
        db.execute("insert into dst select a, b from src")


def test_insert_row_arity_mismatch():
    db = Database()
    db.execute("create table t (a int, b int)")
    with pytest.raises(PlanError):
        db.execute("insert into t values (1)")


def test_drop_table():
    db = Database()
    db.execute("create table t (a int)")
    db.execute("drop table t")
    assert "t" not in db.table_names()


def test_drop_missing_table_raises():
    db = Database()
    with pytest.raises(CatalogError):
        db.execute("drop table ghost")


def test_drop_if_exists_is_silent():
    db = Database()
    db.execute("drop table if exists ghost")


def test_drop_multiple_tables():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("create table b (x int)")
    db.execute("drop table a, b")
    assert db.table_names() == []


def test_rename():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("alter table a rename to b")
    assert "b" in db.table_names()
    assert "a" not in db.table_names()


def test_rename_onto_existing_raises():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("create table b (x int)")
    with pytest.raises(CatalogError, match="already exists"):
        db.execute("alter table a rename to b")


def test_truncate_keeps_schema():
    db = Database()
    db.execute("create table t (a int, b float)")
    db.execute("insert into t values (1, 2.5)")
    db.execute("truncate table t")
    assert db.table("t").n_rows == 0
    db.execute("insert into t values (2, 3.5)")
    assert db.table("t").n_rows == 1


def test_load_table_and_read_back():
    db = Database()
    db.load_table("t", {"a": np.array([5, 6], dtype=np.int64)})
    assert db.execute("select a from t").column("a").tolist() == [5, 6]


def test_load_table_duplicate_name_rejected():
    db = Database()
    db.load_table("t", {"a": np.array([1], dtype=np.int64)})
    with pytest.raises(CatalogError, match="already exists"):
        db.load_table("t", {"a": np.array([1], dtype=np.int64)})


def test_table_names_sorted():
    db = Database()
    for name in ("zz", "aa", "mm"):
        db.execute(f"create table {name} (x int)")
    assert db.table_names() == ["aa", "mm", "zz"]


def test_case_insensitive_table_names():
    db = Database()
    db.execute("create table MyTable (x int)")
    db.execute("insert into mytable values (1)")
    assert db.execute("select x from MYTABLE").scalar() == 1


def test_scalar_on_multi_row_result_raises():
    db = Database()
    db.execute("create table t (a int)")
    db.execute("insert into t values (1), (2)")
    with pytest.raises(Exception, match="1x1"):
        db.execute("select a from t").scalar()


def test_execute_script_runs_all_statements():
    db = Database()
    results = db.execute_script(
        "create table t (a int); insert into t values (1); select a from t"
    )
    assert len(results) == 3
    assert results[2].scalar() == 1
