"""Tests for Randomised Contraction — the paper's algorithm."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro import connected_components
from repro.core import RandomisedContraction, register_udfs
from repro.core.labels import validate_labelling
from repro.graphs import EdgeList, load_edges_into, path_graph
from repro.sqlengine import Database

from .conftest import FIGURE1_EDGES, edge_lists

ALL_CONFIGS = [
    ("finite-fields", "fast"),
    ("finite-fields", "deterministic-space"),
    ("prime-field", "fast"),
    ("prime-field", "deterministic-space"),
    ("encryption", "deterministic-space"),
    ("random-reals", "deterministic-space"),
    ("identity", "fast"),
]


@pytest.mark.parametrize("method,variant", ALL_CONFIGS)
def test_figure1_graph_all_configurations(method, variant):
    edges = EdgeList.from_pairs(FIGURE1_EDGES)
    algo = RandomisedContraction(method=method, variant=variant)
    result = connected_components(edges, algo, seed=3, validate=True)
    assert result.n_components == 2
    # {2, 4, 9} is the small component of Figure 1's example graph.
    components = sorted(result.components().values(), key=len)
    assert components[0] == [2, 4, 9]
    assert components[1] == [1, 3, 5, 6, 7, 8, 10]


@given(edge_lists())
@settings(max_examples=20)
def test_random_graphs_fast_variant(edges):
    connected_components(edges, "rc", seed=1, validate=True)


@given(edge_lists(max_vertices=14, max_edges=20))
@settings(max_examples=10)
def test_random_graphs_deterministic_space(edges):
    algo = RandomisedContraction(variant="deterministic-space")
    connected_components(edges, algo, seed=1, validate=True)


@given(edge_lists(max_vertices=12, max_edges=16))
@settings(max_examples=8)
def test_random_graphs_random_reals(edges):
    algo = RandomisedContraction(method="random-reals",
                                 variant="deterministic-space")
    connected_components(edges, algo, seed=1, validate=True)


def test_figure1_representative_table_matches_paper():
    """With h = identity, round 1 must reproduce Figure 1(c) exactly."""
    db = Database()
    register_udfs(db)
    load_edges_into(db, "g", EdgeList.from_pairs(FIGURE1_EDGES))
    db.execute(
        "create table e as select v1, v2 from g union all "
        "select v2, v1 from g distributed by (v1)"
    )
    reps = dict(db.execute(
        "select v1 v, least(axplusb(1, v1, 0), min(axplusb(1, v2, 0))) rep "
        "from e group by v1"
    ).rows())
    assert reps == {1: 1, 2: 2, 3: 3, 4: 2, 5: 1, 6: 5, 7: 5, 8: 3, 9: 2, 10: 1}


def test_identity_on_sequential_path_is_worst_case():
    """Figure 2(a): deterministic min-contraction takes n - 1 rounds."""
    n = 24
    algo = RandomisedContraction(method="identity")
    result = connected_components(path_graph(n), algo, seed=0, validate=True)
    assert result.run.rounds == n - 1


def test_randomisation_beats_worst_case():
    """Section V-B: randomising escapes the linear-round worst case."""
    n = 256
    result = connected_components(path_graph(n), "rc", seed=5, validate=True)
    assert result.run.rounds <= 3 * math.log2(n)


def test_rounds_grow_logarithmically():
    rounds = []
    for n in (64, 512, 4096):
        result = connected_components(path_graph(n), "rc", seed=9)
        rounds.append(result.run.rounds)
    # Quadrupling n adds only a few rounds.
    assert rounds[1] - rounds[0] <= 5
    assert rounds[2] - rounds[1] <= 5


def test_fast_variant_rejects_encryption():
    with pytest.raises(ValueError, match="not affine"):
        RandomisedContraction(method="encryption", variant="fast")


def test_fast_variant_rejects_table_methods():
    with pytest.raises(ValueError, match="pointwise"):
        RandomisedContraction(method="random-reals", variant="fast")


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="variant"):
        RandomisedContraction(variant="turbo")


def test_loop_edges_label_isolated_vertices():
    edges = EdgeList.from_pairs([(1, 1), (2, 3), (7, 7)])
    result = connected_components(edges, "rc", seed=2, validate=True)
    assert result.n_components == 3
    by_vertex = result.labels_by_vertex
    assert by_vertex[2] == by_vertex[3]
    assert by_vertex[1] != by_vertex[7]


def test_single_loop_vertex():
    result = connected_components(EdgeList.from_pairs([(5, 5)]), "rc", seed=2)
    assert result.n_components == 1
    assert result.vertices.tolist() == [5]


def test_reproducible_with_seed():
    edges = path_graph(100)
    a = connected_components(edges, "rc", seed=42)
    b = connected_components(edges, "rc", seed=42)
    assert a.run.rounds == b.run.rounds
    assert np.array_equal(a.labels, b.labels)


def test_temp_tables_cleaned_up():
    db = Database()
    edges = path_graph(50)
    connected_components(edges, "rc", seed=1, db=db)
    leftovers = [n for n in db.table_names()
                 if n.startswith("cc") and n not in ("ccinput", "ccresult")]
    assert leftovers == []


def test_contraction_shrinks_edge_table_each_round():
    """The scalability property: the edge table decreases every round."""
    db = Database()
    edges = path_graph(2000)
    connected_components(edges, "rc", seed=7, db=db)
    sizes = [record.rows for record in db.stats.log
             if record.label.endswith(":contract")]
    assert all(b < a for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] == 0


def test_negative_and_large_vertex_ids():
    """GF(2^64) treats IDs as raw 64-bit values; negatives must work."""
    edges = EdgeList.from_pairs(
        [(-5, 3), (3, (1 << 62)), (-5, -9), (100, 200)]
    )
    result = connected_components(edges, "rc", seed=4, validate=True)
    assert result.n_components == 2


def test_prime_field_rejects_ids_outside_field():
    from repro.sqlengine.errors import SqlError

    edges = EdgeList.from_pairs([(1, 1 << 40)])
    algo = RandomisedContraction(method="prime-field")
    with pytest.raises((ValueError, SqlError)):
        connected_components(edges, algo, seed=1)


def test_query_count_is_linear_in_rounds():
    result = connected_components(path_graph(300), "rc", seed=8)
    rounds = result.run.rounds
    # Fast variant: setup + 5/round forward + ~3/round backward + 2 final.
    assert result.run.sql_queries <= 9 * rounds + 4


# ---------------------------------------------------------------------------
# overlapped composition: round i composes while round i+1 contracts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method,variant", [
    ("finite-fields", "deterministic-space"),
    ("random-reals", "deterministic-space"),
])
def test_overlapped_composition_bit_identical(method, variant):
    """With a multi-worker pool the looping variants run round i's
    representative composition on the pool while round i+1 contracts; the
    final labels must be bit-identical to the serial schedule and the
    engagement counter must prove the overlap actually happened."""
    from repro.graphs import gnm_random_graph
    edges = gnm_random_graph(800, 1400, np.random.default_rng(13))

    def run(parallel):
        db = Database(n_segments=4, parallel=parallel)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction(method=method, variant=variant).run(
            db, "edges", seed=6)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        stats = db.stats.snapshot()
        db.close()
        return vertices[order], labels[order], stats

    v_on, l_on, stats_on = run(True)
    v_off, l_off, stats_off = run(False)
    assert stats_on.overlapped_compositions > 0
    assert stats_off.overlapped_compositions == 0
    # Same statements ran on both schedules, just on different threads.
    assert stats_on.queries == stats_off.queries
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)


def test_overlapped_composition_waits_out_failures():
    """An error raised by a background composition must surface to the
    caller, not vanish on the worker thread."""
    from repro.core.dataflow import DataflowScheduler
    from repro.sqlengine.errors import CatalogError

    db = Database(n_segments=4, parallel=True)
    sched = DataflowScheduler(db)
    task = sched.submit(["drop table never_created"])
    with pytest.raises(CatalogError):
        sched.wait(task)
    sched.drain()  # idempotent, swallows nothing further
    # A broken schedule must refuse further submissions with the original
    # error rather than silently extending a half-applied plan.
    with pytest.raises(CatalogError):
        sched.submit(["drop table never_created_either"])
    db.close()


def test_overlapped_rounds_can_outrun_one_composition():
    """The DAG scheduler runs every composed round's composing CREATE
    concurrently with that round's contraction — two independent
    statements overlapping per round, where the old composer held a single
    background slot.  The dataflow_overlaps counter must record at least
    one genuinely concurrent pair per composed round (cheap drop/rename
    tasks may add more, timing permitting).  The per-round bound is safe
    to assert: the contraction is submitted microseconds after the
    composing CREATE, which joins the never-shrinking label table and so
    cannot have finished inside that window."""
    from repro.graphs import gnm_random_graph
    edges = gnm_random_graph(600, 1000, np.random.default_rng(21))
    db = Database(n_segments=4, parallel=True)
    load_edges_into(db, "edges", edges)
    RandomisedContraction(variant="deterministic-space").run(db, "edges",
                                                             seed=6)
    stats = db.stats.snapshot()
    assert stats.overlapped_compositions > 0
    assert stats.dataflow_overlaps >= stats.overlapped_compositions
    db.close()
    serial = Database(n_segments=4, parallel=False)
    load_edges_into(serial, "edges", edges)
    RandomisedContraction(variant="deterministic-space").run(serial, "edges",
                                                             seed=6)
    assert serial.stats.dataflow_overlaps == 0
    serial.close()


def test_fast_variant_composition_chain_overlaps():
    """The fast variant's back-to-front composition chain runs on the
    dataflow scheduler with per-round scratch names: round k's retire
    (the drop of the composed-over tables) is independent of round k-1's
    composing join, so a multi-worker pool overlaps them — the serial
    driver used to stall on every drop/rename.  Labels and round counts
    stay bit-identical to the serial schedule, and the warm composition
    loop derives its effect sets from cached templates."""
    from repro.graphs import gnm_random_graph
    edges = gnm_random_graph(800, 1000, np.random.default_rng(29))

    def run(parallel):
        db = Database(n_segments=4, parallel=parallel)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction().run(db, "edges", seed=11)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        stats = db.stats.snapshot()
        db.close()
        return vertices[order], labels[order], stats, result.rounds

    v_on, l_on, stats_on, rounds_on = run(True)
    v_off, l_off, stats_off, rounds_off = run(False)
    assert rounds_on == rounds_off
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)
    composed_rounds = rounds_on - 1
    assert composed_rounds >= 2  # the graph must actually exercise the chain
    # At least one genuinely concurrent pair per composed round: the
    # retire of round k is in flight when round k-1's compose is submitted
    # (the composing join over the still-large reps tables cannot finish
    # inside the submission window).
    assert stats_on.dataflow_overlaps >= composed_rounds
    assert stats_on.effects_cache_hits > 0
    assert stats_off.dataflow_overlaps == 0


def test_overlapped_composition_disabled_under_space_budget():
    """Overlap briefly holds two rounds' tables at once, which would make
    space-budget violations (the harness's DNF signal) timing-dependent —
    a budgeted database must compose inline and keep the serial peak."""
    from repro.graphs import gnm_random_graph
    edges = gnm_random_graph(300, 500, np.random.default_rng(2))
    db = Database(n_segments=4, parallel=True,
                  space_budget_bytes=1 << 30)
    load_edges_into(db, "edges", edges)
    RandomisedContraction(variant="deterministic-space").run(
        db, "edges", seed=3)
    assert db.stats.overlapped_compositions == 0
    db.close()
