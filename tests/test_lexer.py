"""Tests for the SQL tokenizer."""

import pytest

from repro.sqlengine.errors import ParseError
from repro.sqlengine.lexer import (
    EOF,
    FLOAT,
    IDENT,
    INTEGER,
    KEYWORD,
    OP,
    STRING,
    tokenize,
)


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


def test_simple_select():
    tokens = tokenize("select v1, v2 from g")
    assert [t.kind for t in tokens] == [
        KEYWORD, IDENT, OP, IDENT, KEYWORD, IDENT, EOF,
    ]


def test_keywords_are_case_insensitive():
    tokens = tokenize("SELECT Distinct FROM")
    assert all(t.kind == KEYWORD for t in tokens[:-1])


def test_identifiers_keep_case_in_value():
    assert tokenize("MyTable")[0].value == "MyTable"


def test_integer_and_float_literals():
    tokens = tokenize("1 23 4.5 0.25 1e3 2.5e-2")
    assert [t.kind for t in tokens[:-1]] == [
        INTEGER, INTEGER, FLOAT, FLOAT, FLOAT, FLOAT,
    ]


def test_dot_after_integer_is_member_access_when_not_digit():
    # "r1.rep" style: the dot must not be swallowed by a number.
    tokens = tokenize("t1.c")
    assert [t.kind for t in tokens[:-1]] == [IDENT, OP, IDENT]


def test_string_literal_with_escaped_quote():
    token = tokenize("'it''s'")[0]
    assert token.kind == STRING
    assert token.value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_multi_char_operators():
    assert values("a <= b >= c != d <> e || f") == [
        "a", "<=", "b", ">=", "c", "!=", "d", "<>", "e", "||", "f",
    ]


def test_line_comment_skipped():
    assert values("select -- comment here\n 1") == ["select", "1"]


def test_block_comment_skipped():
    assert values("select /* a block \n comment */ 1") == ["select", "1"]


def test_unterminated_block_comment_raises():
    with pytest.raises(ParseError):
        tokenize("select /* never closed")


def test_unexpected_character_raises_with_position():
    with pytest.raises(ParseError) as info:
        tokenize("select @")
    assert "offset 7" in str(info.value)


def test_token_positions_track_offsets():
    tokens = tokenize("ab  cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 4


def test_matches_helper():
    token = tokenize("SELECT")[0]
    assert token.matches(KEYWORD, "select")
    assert token.matches(KEYWORD)
    assert not token.matches(IDENT)
    assert not token.matches(KEYWORD, "from")


def test_empty_input_yields_only_eof():
    tokens = tokenize("   \n\t ")
    assert len(tokens) == 1
    assert tokens[0].kind == EOF
