"""Tests for GF(p) arithmetic — the SQL-only finite-field variant."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ff.gfp import (
    MERSENNE_31,
    GfpAffineMap,
    choose_field_prime,
    is_prime,
    next_prime,
    random_affine_map,
)


KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, MERSENNE_31, (1 << 61) - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1 << 31, 7917, (1 << 32) - 1]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites(n):
    assert not is_prime(n)


def test_carmichael_numbers_rejected():
    for n in (561, 1105, 1729, 2465, 2821, 6601):
        assert not is_prime(n)


def test_next_prime():
    assert next_prime(1) == 2
    assert next_prime(2) == 3
    assert next_prime(10) == 11
    assert next_prime(7919) == 7927


def test_choose_field_prime_default():
    assert choose_field_prime(1000) == MERSENNE_31
    assert choose_field_prime(MERSENNE_31 - 1) == MERSENNE_31


def test_choose_field_prime_above_mersenne():
    p = choose_field_prime(MERSENNE_31 + 5)
    assert is_prime(p)
    assert p > MERSENNE_31 + 5
    assert p < 1 << 32


def test_choose_field_prime_rejects_huge_ids():
    with pytest.raises(ValueError):
        choose_field_prime(1 << 33)
    with pytest.raises(ValueError):
        choose_field_prime(-1)


@given(st.integers(min_value=1, max_value=MERSENNE_31 - 1),
       st.integers(min_value=0, max_value=MERSENNE_31 - 1))
def test_affine_map_matches_direct_formula(a, b):
    mapping = GfpAffineMap(a, b)
    xs = np.array([0, 1, 2, 12345, MERSENNE_31 - 1], dtype=np.uint64)
    out = mapping.apply(xs)
    for i, x in enumerate(xs.tolist()):
        assert int(out[i]) == (a * x + b) % MERSENNE_31


@given(st.integers(min_value=1, max_value=MERSENNE_31 - 1),
       st.integers(min_value=0, max_value=MERSENNE_31 - 1))
def test_affine_map_inverse(a, b):
    mapping = GfpAffineMap(a, b)
    xs = np.arange(100, dtype=np.uint64)
    assert np.array_equal(mapping.inverse().apply(mapping.apply(xs)), xs)


def test_affine_map_is_bijective_on_small_field():
    mapping = GfpAffineMap(3, 4, 17)
    images = {mapping.apply_scalar(x) for x in range(17)}
    assert images == set(range(17))


def test_rejects_zero_a():
    with pytest.raises(ValueError):
        GfpAffineMap(0, 5)
    with pytest.raises(ValueError):
        GfpAffineMap(MERSENNE_31, 5)  # a % p == 0


def test_rejects_composite_modulus():
    with pytest.raises(ValueError):
        GfpAffineMap(3, 4, 15)


def test_rejects_oversized_modulus():
    with pytest.raises(ValueError):
        GfpAffineMap(3, 4, (1 << 61) - 1)


def test_rejects_out_of_field_input():
    mapping = GfpAffineMap(3, 4, 17)
    with pytest.raises(ValueError):
        mapping.apply(np.array([17], dtype=np.uint64))
    with pytest.raises(ValueError):
        mapping.apply_scalar(99)


def test_random_affine_map_uses_rng():
    import random

    m1 = random_affine_map(random.Random(1))
    m2 = random_affine_map(random.Random(1))
    m3 = random_affine_map(random.Random(2))
    assert (m1.a, m1.b) == (m2.a, m2.b)
    assert (m1.a, m1.b) != (m3.a, m3.b)
