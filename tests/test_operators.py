"""Property tests for the vectorised relational operator kernels.

The hash/dictionary kernels are *plan-stable*: whatever path the dispatch
picks (dense direct-address, cached sorted index, sort-merge fallback),
the returned index arrays must be identical — element for element — to the
sort-merge reference.  The ``*_agrees_with_reference`` tests pin that down
over randomized inputs covering dense and sparse key ranges, duplicates,
NULLs, empties, and multi-column/text fallback."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sqlengine.operators import (
    NO_MATCH,
    _hash_distinct_int,
    _pack_int_pair,
    build_key_index,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
    merge_join_indices,
    sorted_group_rows,
)
from repro.sqlengine.types import Column

small_ints = st.integers(min_value=0, max_value=8)
key_lists = st.lists(small_ints, min_size=0, max_size=30)


def int_column(values, mask_positions=()):
    values = np.asarray(list(values), dtype=np.int64)
    mask = None
    if mask_positions:
        mask = np.zeros(values.shape[0], dtype=bool)
        mask[list(mask_positions)] = True
    return Column(values, "int64", mask)


def brute_force_join(left, right):
    return sorted(
        (i, j)
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if a == b
    )


@given(key_lists, key_lists)
def test_join_matches_brute_force(left, right):
    l_idx, r_idx = join_indices([int_column(left)], [int_column(right)])
    assert sorted(zip(l_idx.tolist(), r_idx.tolist())) == brute_force_join(left, right)


@given(key_lists, key_lists)
def test_left_join_covers_every_left_row_exactly_right(left, right):
    l_idx, r_idx = left_join_indices([int_column(left)], [int_column(right)])
    right_set = set(right)
    expected_rows = sum(
        max(1, right.count(a)) if True else 0 for a in left
    )
    # Matched rows multiply, unmatched appear once with NO_MATCH.
    expected = sum(right.count(a) if a in right_set else 1 for a in left)
    assert l_idx.shape[0] == expected
    unmatched = {i for i, a in enumerate(left) if a not in right_set}
    got_unmatched = {int(l) for l, r in zip(l_idx, r_idx) if r == NO_MATCH}
    assert got_unmatched == unmatched


def test_join_empty_sides():
    empty = int_column([])
    filled = int_column([1, 2, 3])
    for left, right in [(empty, filled), (filled, empty), (empty, empty)]:
        l_idx, r_idx = join_indices([left], [right])
        assert l_idx.shape[0] == 0 and r_idx.shape[0] == 0


def test_null_keys_never_match():
    left = int_column([1, 2, 3], mask_positions=[1])
    right = int_column([2, 3], mask_positions=[0])
    l_idx, r_idx = join_indices([left], [right])
    assert list(zip(l_idx.tolist(), r_idx.tolist())) == [(2, 1)]


def test_null_left_keys_survive_left_join():
    left = int_column([1, 2], mask_positions=[0])
    right = int_column([1, 2])
    l_idx, r_idx = left_join_indices([left], [right])
    pairs = dict(zip(l_idx.tolist(), r_idx.tolist()))
    assert pairs[0] == NO_MATCH
    assert pairs[1] == 1


def test_multi_key_join():
    left_a = int_column([1, 1, 2])
    left_b = int_column([1, 2, 1])
    right_a = int_column([1, 2])
    right_b = int_column([2, 1])
    l_idx, r_idx = join_indices([left_a, left_b], [right_a, right_b])
    assert sorted(zip(l_idx.tolist(), r_idx.tolist())) == [(1, 0), (2, 1)]


def test_many_to_many_join_multiplicity():
    left = int_column([7, 7])
    right = int_column([7, 7, 7])
    l_idx, r_idx = join_indices([left], [right])
    assert l_idx.shape[0] == 6


@given(key_lists)
def test_group_rows_partitions_input(keys):
    column = int_column(keys)
    order, starts = group_rows([column])
    assert sorted(order.tolist()) == list(range(len(keys)))
    # Every group is a run of equal keys.
    values = column.values[order]
    boundaries = set(starts.tolist())
    for i in range(1, len(keys)):
        if values[i] != values[i - 1]:
            assert i in boundaries


def test_group_rows_null_forms_single_group():
    column = int_column([1, 5, 1], mask_positions=[1])
    order, starts = group_rows([column])
    assert starts.shape[0] == 2  # {1, 1} and {NULL}


def test_group_rows_two_nulls_group_together():
    column = int_column([7, 9], mask_positions=[0, 1])
    _, starts = group_rows([column])
    assert starts.shape[0] == 1


def test_group_rows_empty():
    order, starts = group_rows([int_column([])])
    assert order.shape[0] == 0 and starts.shape[0] == 0


@given(key_lists)
def test_distinct_matches_python_set(keys):
    column = int_column(keys)
    kept = distinct_rows([column])
    assert sorted(column.values[kept].tolist()) == sorted(set(keys))


def test_distinct_multi_column():
    a = int_column([1, 1, 2, 1])
    b = int_column([1, 2, 1, 1])
    kept = distinct_rows([a, b])
    pairs = {(int(a.values[i]), int(b.values[i])) for i in kept.tolist()}
    assert pairs == {(1, 1), (1, 2), (2, 1)}


def test_distinct_treats_nulls_as_equal():
    a = int_column([5, 5, 5], mask_positions=[0, 2])
    kept = distinct_rows([a])
    assert kept.shape[0] == 2  # one NULL row + one 5 row


# ---------------------------------------------------------------------------
# hash kernels vs. the sort-merge reference
# ---------------------------------------------------------------------------

#: Key regimes the dispatch must handle: dense small ranges (vertex IDs),
#: sparse 64-bit values (randomised representatives), and negatives.
dense_keys = st.lists(st.integers(min_value=-3, max_value=40), max_size=60)
sparse_keys = st.lists(
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62), max_size=60
)
any_keys = st.one_of(dense_keys, sparse_keys)


def assert_same_pairs(got, expected):
    """Exact equality including order — the kernels must be plan-stable."""
    assert np.array_equal(got[0], expected[0])
    assert np.array_equal(got[1], expected[1])


@given(any_keys, any_keys)
def test_hash_join_agrees_with_reference(left, right):
    lcol, rcol = int_column(left), int_column(right)
    expected = merge_join_indices([lcol], [rcol])
    assert_same_pairs(join_indices([lcol], [rcol]), expected)
    # And with pre-built indexes on either or both sides.
    l_index = build_key_index(lcol.values)
    r_index = build_key_index(rcol.values)
    assert_same_pairs(join_indices([lcol], [rcol], right_index=r_index), expected)
    assert_same_pairs(
        join_indices([lcol], [rcol], left_index=l_index, right_index=r_index),
        expected,
    )


@given(any_keys, any_keys)
def test_hash_left_join_agrees_with_reference(left, right):
    lcol, rcol = int_column(left), int_column(right)
    r_index = build_key_index(rcol.values)
    expected = left_join_indices([lcol], [rcol])
    got = left_join_indices([lcol], [rcol], right_index=r_index)
    assert_same_pairs(got, expected)


@given(dense_keys, dense_keys, st.data())
def test_hash_join_with_nulls_agrees_with_reference(left, right, data):
    left_nulls = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(len(left) - 1, 0)))
        if left else st.just(set())
    )
    right_nulls = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(len(right) - 1, 0)))
        if right else st.just(set())
    )
    lcol = int_column(left, mask_positions=sorted(left_nulls))
    rcol = int_column(right, mask_positions=sorted(right_nulls))
    expected = merge_join_indices([lcol], [rcol])
    assert_same_pairs(join_indices([lcol], [rcol]), expected)


def test_join_ignores_index_when_nulls_were_filtered():
    # The index describes unfiltered row positions; the kernel must drop it
    # once NULL rows are removed rather than produce misaligned matches.
    rcol = int_column([5, 6, 7], mask_positions=[0])
    stale_index = build_key_index(rcol.values)  # built over all three rows
    lcol = int_column([5, 6, 7])
    l_idx, r_idx = join_indices([lcol], [rcol], right_index=stale_index)
    assert sorted(zip(l_idx.tolist(), r_idx.tolist())) == [(1, 1), (2, 2)]


def reference_distinct(columns):
    """The retained sort-based reference: first row of each lexsort group,
    in ascending row order (the kernels' documented output order)."""
    order, starts = sorted_group_rows(columns)
    return np.sort(order[starts]) if order.size else order


@given(any_keys)
def test_distinct_agrees_with_reference(keys):
    column = int_column(keys)
    expected = reference_distinct([column])
    got = distinct_rows([column])
    assert np.array_equal(got, expected)


@given(any_keys)
def test_distinct_with_index_agrees(keys):
    column = int_column(keys)
    index = build_key_index(column.values)
    assert np.array_equal(distinct_rows([column], index=index),
                          distinct_rows([column]))


def test_distinct_text_fallback():
    col = Column(np.array(["b", "a", "b", "c", "a"], dtype=object), "text")
    kept = distinct_rows([col])
    assert sorted(col.values[kept].tolist()) == ["a", "b", "c"]


@given(any_keys, dense_keys)
def test_multi_column_distinct_agrees_with_reference(a_keys, b_keys):
    n = min(len(a_keys), len(b_keys))
    a, b = int_column(a_keys[:n]), int_column(b_keys[:n])
    assert np.array_equal(distinct_rows([a, b]), reference_distinct([a, b]))


@given(sparse_keys, sparse_keys)
def test_unpackable_pair_distinct_uses_hash_kernel(a_keys, b_keys):
    """Two full-range sparse columns defeat pair packing; the hash kernel
    must still match the lexsort reference exactly."""
    n = min(len(a_keys), len(b_keys))
    a, b = int_column(a_keys[:n]), int_column(b_keys[:n])
    note: list = []
    got = distinct_rows([a, b], note=note)
    assert np.array_equal(got, reference_distinct([a, b]))
    if n and _pack_int_pair(a.values, b.values) is None:
        assert note == ["hash"]


@given(dense_keys, dense_keys, dense_keys)
def test_three_column_distinct_agrees_with_reference(a_keys, b_keys, c_keys):
    n = min(len(a_keys), len(b_keys), len(c_keys))
    columns = [int_column(k[:n]) for k in (a_keys, b_keys, c_keys)]
    note: list = []
    got = distinct_rows(columns, note=note)
    assert np.array_equal(got, reference_distinct(columns))
    if n:
        assert note == ["hash"]


@given(any_keys)
def test_hash_distinct_kernel_agrees_on_single_column(keys):
    """The hash kernel itself (bypassing dispatch) on one column."""
    if not keys:
        return
    values = np.asarray(keys, dtype=np.int64)
    got = _hash_distinct_int([values])
    assert np.array_equal(got, reference_distinct([int_column(keys)]))


def test_hash_distinct_duplicate_heavy_and_negative_keys():
    rng = np.random.default_rng(7)
    base = rng.integers(-(2 ** 62), 2 ** 62, 50)
    a = base[rng.integers(0, 50, 5000)]
    b = base[rng.integers(0, 50, 5000)]
    got = _hash_distinct_int([a, b])
    assert np.array_equal(
        got, reference_distinct([int_column(a), int_column(b)])
    )


@given(any_keys)
def test_group_rows_agrees_with_reference(keys):
    column = int_column(keys)
    expected = sorted_group_rows([column])
    got = group_rows([column])
    assert np.array_equal(got[0], expected[0])
    assert np.array_equal(got[1], expected[1])
    index = build_key_index(column.values)
    with_index = group_rows([column], index=index)
    assert np.array_equal(with_index[0], expected[0])
    assert np.array_equal(with_index[1], expected[1])


@given(dense_keys, dense_keys)
def test_multi_column_group_agrees_with_reference(a_keys, b_keys):
    n = min(len(a_keys), len(b_keys))
    a, b = int_column(a_keys[:n]), int_column(b_keys[:n])
    expected = sorted_group_rows([a, b])
    got = group_rows([a, b])
    assert np.array_equal(got[0], expected[0])
    assert np.array_equal(got[1], expected[1])


def test_extreme_key_ranges_do_not_alias():
    # lk - rmin would wrap around int64 here; the bounds check must happen
    # on original values so no phantom matches appear.
    lo, hi = -(2 ** 62) * 3 // 2, 2 ** 62 * 3 // 2
    left = int_column([lo, 0, hi])
    right = int_column([hi, hi - 1])
    expected = merge_join_indices([left], [right])
    got = join_indices([left], [right],
                       right_index=build_key_index(right.values))
    assert_same_pairs(got, expected)


def test_key_index_stats():
    index = build_key_index(np.array([7, 3, 9, 3], dtype=np.int64))
    assert not index.is_unique
    assert (index.min_value, index.max_value) == (3, 9)
    unique = build_key_index(np.array([4, 2, 8], dtype=np.int64))
    assert unique.is_unique
