"""Property tests for the vectorised relational operator kernels."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sqlengine.operators import (
    NO_MATCH,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
)
from repro.sqlengine.types import Column

small_ints = st.integers(min_value=0, max_value=8)
key_lists = st.lists(small_ints, min_size=0, max_size=30)


def int_column(values, mask_positions=()):
    values = np.asarray(list(values), dtype=np.int64)
    mask = None
    if mask_positions:
        mask = np.zeros(values.shape[0], dtype=bool)
        mask[list(mask_positions)] = True
    return Column(values, "int64", mask)


def brute_force_join(left, right):
    return sorted(
        (i, j)
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if a == b
    )


@given(key_lists, key_lists)
def test_join_matches_brute_force(left, right):
    l_idx, r_idx = join_indices([int_column(left)], [int_column(right)])
    assert sorted(zip(l_idx.tolist(), r_idx.tolist())) == brute_force_join(left, right)


@given(key_lists, key_lists)
def test_left_join_covers_every_left_row_exactly_right(left, right):
    l_idx, r_idx = left_join_indices([int_column(left)], [int_column(right)])
    right_set = set(right)
    expected_rows = sum(
        max(1, right.count(a)) if True else 0 for a in left
    )
    # Matched rows multiply, unmatched appear once with NO_MATCH.
    expected = sum(right.count(a) if a in right_set else 1 for a in left)
    assert l_idx.shape[0] == expected
    unmatched = {i for i, a in enumerate(left) if a not in right_set}
    got_unmatched = {int(l) for l, r in zip(l_idx, r_idx) if r == NO_MATCH}
    assert got_unmatched == unmatched


def test_join_empty_sides():
    empty = int_column([])
    filled = int_column([1, 2, 3])
    for left, right in [(empty, filled), (filled, empty), (empty, empty)]:
        l_idx, r_idx = join_indices([left], [right])
        assert l_idx.shape[0] == 0 and r_idx.shape[0] == 0


def test_null_keys_never_match():
    left = int_column([1, 2, 3], mask_positions=[1])
    right = int_column([2, 3], mask_positions=[0])
    l_idx, r_idx = join_indices([left], [right])
    assert list(zip(l_idx.tolist(), r_idx.tolist())) == [(2, 1)]


def test_null_left_keys_survive_left_join():
    left = int_column([1, 2], mask_positions=[0])
    right = int_column([1, 2])
    l_idx, r_idx = left_join_indices([left], [right])
    pairs = dict(zip(l_idx.tolist(), r_idx.tolist()))
    assert pairs[0] == NO_MATCH
    assert pairs[1] == 1


def test_multi_key_join():
    left_a = int_column([1, 1, 2])
    left_b = int_column([1, 2, 1])
    right_a = int_column([1, 2])
    right_b = int_column([2, 1])
    l_idx, r_idx = join_indices([left_a, left_b], [right_a, right_b])
    assert sorted(zip(l_idx.tolist(), r_idx.tolist())) == [(1, 0), (2, 1)]


def test_many_to_many_join_multiplicity():
    left = int_column([7, 7])
    right = int_column([7, 7, 7])
    l_idx, r_idx = join_indices([left], [right])
    assert l_idx.shape[0] == 6


@given(key_lists)
def test_group_rows_partitions_input(keys):
    column = int_column(keys)
    order, starts = group_rows([column])
    assert sorted(order.tolist()) == list(range(len(keys)))
    # Every group is a run of equal keys.
    values = column.values[order]
    boundaries = set(starts.tolist())
    for i in range(1, len(keys)):
        if values[i] != values[i - 1]:
            assert i in boundaries


def test_group_rows_null_forms_single_group():
    column = int_column([1, 5, 1], mask_positions=[1])
    order, starts = group_rows([column])
    assert starts.shape[0] == 2  # {1, 1} and {NULL}


def test_group_rows_two_nulls_group_together():
    column = int_column([7, 9], mask_positions=[0, 1])
    _, starts = group_rows([column])
    assert starts.shape[0] == 1


def test_group_rows_empty():
    order, starts = group_rows([int_column([])])
    assert order.shape[0] == 0 and starts.shape[0] == 0


@given(key_lists)
def test_distinct_matches_python_set(keys):
    column = int_column(keys)
    kept = distinct_rows([column])
    assert sorted(column.values[kept].tolist()) == sorted(set(keys))


def test_distinct_multi_column():
    a = int_column([1, 1, 2, 1])
    b = int_column([1, 2, 1, 1])
    kept = distinct_rows([a, b])
    pairs = {(int(a.values[i]), int(b.values[i])) for i in kept.tolist()}
    assert pairs == {(1, 1), (1, 2), (2, 1)}


def test_distinct_treats_nulls_as_equal():
    a = int_column([5, 5, 5], mask_positions=[0, 2])
    kept = distinct_rows([a])
    assert kept.shape[0] == 2  # one NULL row + one 5 row
