"""Unit tests for the column container, table storage and catalog."""

import numpy as np
import pytest

from repro.sqlengine import CatalogError, Column, Database, ExecutionError
from repro.sqlengine.table import Catalog, Table
from repro.sqlengine.types import BOOL, FLOAT64, INT64, TEXT, sql_type_of_value


def test_column_type_inference():
    assert Column.from_values(np.array([1, 2])).sql_type == INT64
    assert Column.from_values(np.array([1.5])).sql_type == FLOAT64
    assert Column.from_values(np.array([True])).sql_type == BOOL
    assert Column.from_values(np.array(["x"], dtype=object)).sql_type == TEXT


def test_sql_type_of_value():
    assert sql_type_of_value(1) == INT64
    assert sql_type_of_value(1.5) == FLOAT64
    assert sql_type_of_value(True) == BOOL
    assert sql_type_of_value("s") == TEXT
    with pytest.raises(ExecutionError):
        sql_type_of_value(object())


def test_constant_and_nulls():
    c = Column.constant(7, 3)
    assert c.to_list() == [7, 7, 7]
    n = Column.nulls(2)
    assert n.to_list() == [None, None]


def test_all_false_mask_is_normalised_away():
    c = Column(np.array([1, 2]), INT64, np.array([False, False]))
    assert c.mask is None


def test_take_and_filter_carry_masks():
    c = Column(np.array([1, 2, 3]), INT64, np.array([False, True, False]))
    taken = c.take(np.array([2, 1]))
    assert taken.to_list() == [3, None]
    kept = c.filter(np.array([True, True, False]))
    assert kept.to_list() == [1, None]


def test_byte_size_accounting():
    ints = Column.from_values(np.arange(10, dtype=np.int64))
    assert ints.byte_size() == 80
    masked = Column(np.arange(10, dtype=np.int64), INT64,
                    np.array([True] + [False] * 9))
    assert masked.byte_size() == 90  # 8 per value + 1 per mask entry
    text = Column.from_values(np.array(["ab", "c"], dtype=object))
    assert text.byte_size() == 3 + 2


def test_concat_promotes_int_to_float():
    a = Column.from_values(np.array([1, 2]))
    b = Column.from_values(np.array([1.5]))
    merged = Column.concat([a, b])
    assert merged.sql_type == FLOAT64
    assert merged.to_list() == [1.0, 2.0, 1.5]


def test_concat_incompatible_types_rejected():
    a = Column.from_values(np.array([1]))
    b = Column.from_values(np.array(["x"], dtype=object))
    with pytest.raises(ExecutionError):
        Column.concat([a, b])


def test_table_validates_columns():
    with pytest.raises(ExecutionError, match="at least one column"):
        Table("t", {})
    with pytest.raises(ExecutionError, match="ragged"):
        Table("t", {
            "a": Column.from_values(np.array([1])),
            "b": Column.from_values(np.array([1, 2])),
        })
    with pytest.raises(CatalogError, match="distribution column"):
        Table("t", {"a": Column.from_values(np.array([1]))},
              distribution_column="nope")


def test_table_append_invalidates_size_cache():
    table = Table("t", {"a": Column.from_values(np.array([1, 2]))})
    before = table.byte_size()
    added = table.append({"a": Column.from_values(np.array([3]))})
    assert added == 8
    assert table.byte_size() == before + 8
    assert table.n_rows == 3


def test_table_append_requires_matching_columns():
    table = Table("t", {"a": Column.from_values(np.array([1]))})
    with pytest.raises(ExecutionError, match="do not match"):
        table.append({"b": Column.from_values(np.array([1]))})


def test_catalog_roundtrip():
    catalog = Catalog()
    table = Table("t", {"a": Column.from_values(np.array([1]))})
    catalog.put(table)
    assert "t" in catalog
    assert catalog.get("T") is table  # case-insensitive
    catalog.rename("t", "u")
    assert "u" in catalog and "t" not in catalog
    assert catalog.total_bytes() == table.byte_size()
    dropped = catalog.drop("u")
    assert dropped is table
    with pytest.raises(CatalogError):
        catalog.get("u")


def test_catalog_rename_preserves_name_case():
    """Regression: rename used to lower-case the user-visible table name.

    Lookup keys are normalised, but the name shown by ``names()`` and used
    in error messages must keep the casing the caller supplied."""
    catalog = Catalog()
    catalog.put(Table("t", {"a": Column.from_values(np.array([1]))}))
    table = catalog.rename("t", "MixedCase")
    assert table.name == "MixedCase"
    assert catalog.names() == ["MixedCase"]
    # Lookups stay case-insensitive either way.
    assert catalog.get("mixedcase") is table
    assert catalog.get("MIXEDCASE") is table
    assert "mixedCASE" in catalog
    # The preserved-case name surfaces in error messages.
    with pytest.raises(CatalogError, match="'MixedCase'"):
        table.column("ghost")
    catalog.rename("MIXEDcase", "BackAgain")
    assert catalog.names() == ["BackAgain"]


def test_catalog_rejects_duplicates_and_missing():
    catalog = Catalog()
    catalog.put(Table("t", {"a": Column.from_values(np.array([1]))}))
    with pytest.raises(CatalogError, match="already exists"):
        catalog.put(Table("t", {"a": Column.from_values(np.array([1]))}))
    with pytest.raises(CatalogError):
        catalog.drop("ghost")
    catalog.put(Table("x", {"a": Column.from_values(np.array([1]))}))
    with pytest.raises(CatalogError, match="already exists"):
        catalog.rename("x", "t")


def test_differential_random_queries_mpp_vs_spark():
    """The same random analytical queries must agree across backends."""
    from repro.spark import SparkSQLDatabase

    rng = np.random.default_rng(8)
    a = rng.integers(0, 40, size=3000).astype(np.int64)
    b = rng.integers(0, 40, size=3000).astype(np.int64)
    c = rng.integers(0, 7, size=2000).astype(np.int64)
    d = rng.integers(0, 40, size=2000).astype(np.int64)
    queries = [
        "select a, count(*), min(b) from t group by a",
        "select distinct a, b from t where a < 10",
        "select t.a, s.d from t, s where t.b = s.d and t.a != 5",
        "select t.a, s.c from t left outer join s on (t.a = s.d) "
        "where s.c is null",
        "select count(distinct b) from t",
        "select a + b as x, count(*) from t where a between 3 and 20 "
        "group by a, b",
    ]
    results = []
    for factory in (Database, SparkSQLDatabase):
        db = factory()
        db.load_table("t", {"a": a.copy(), "b": b.copy()}, distributed_by="a")
        db.load_table("s", {"c": c.copy(), "d": d.copy()}, distributed_by="c")
        results.append([sorted(db.execute(q).rows()) for q in queries])
    assert results[0] == results[1]
