"""Process-backed SegmentPool tests: lifecycle, hardening, bit-identity.

The process backend's contract has three legs, and each is pinned here:

* **Bit-identical labels** — the shared-memory kernels must return exactly
  what the thread kernels return, from single partitions up to a full
  randomised-contraction run.
* **Explicit lifecycle** — blocks appear on first parallel use, vanish on
  ``Database.close()`` (and at interpreter exit, and when their keyed
  array dies), double-close is a no-op, and a closed database transparently
  re-creates its workers.
* **Hardening** — a killed worker poisons in-flight futures with one clear
  :class:`~repro.sqlengine.errors.ExecutionError` and the pool restarts on
  the next kernel; budgets and non-shareable payloads fall back to
  threads instead of failing.
"""

import gc
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.mpp import ProcessSegmentPool, SegmentPool
from repro.sqlengine.operators import build_key_index, join_indices
from repro.sqlengine.parallel import (
    AggregateSpec,
    group_aggregate,
    parallel_group_aggregate,
    parallel_join_indices,
    parallel_probe_indexed,
)
from repro.sqlengine.shm import ShmRegistry, attach_array
from repro.sqlengine.types import FLOAT64, INT64, TEXT, Column


def process_pool() -> ProcessSegmentPool:
    return ProcessSegmentPool(4, max_workers=4)


def int_column(values) -> Column:
    return Column(np.array(values, dtype=np.int64), INT64)


def _shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


# ---------------------------------------------------------------------------
# kernel bit-identity: process workers vs the single-threaded references
# ---------------------------------------------------------------------------


def test_process_join_bit_identical():
    pool = process_pool()
    try:
        rng = np.random.default_rng(7)
        left = int_column(rng.integers(0, 5000, 20_000))
        right = int_column(
            np.concatenate([rng.permutation(5000), rng.integers(0, 5000, 800)])
        )
        reference = join_indices([left], [right])
        parallel = parallel_join_indices([left], [right], pool)
        assert np.array_equal(reference[0], parallel[0])
        assert np.array_equal(reference[1], parallel[1])
        assert pool.registry.bytes_exported > 0
    finally:
        pool.shutdown()


@pytest.mark.parametrize("unique_build", [True, False])
@pytest.mark.parametrize("dense", [True, False])
def test_process_indexed_probe_bit_identical(unique_build, dense):
    """All four probe shapes — {sorted, dense} x {unique, duplicate} —
    must chunk through worker processes without changing a single index."""
    pool = process_pool()
    try:
        rng = np.random.default_rng(17 * dense + unique_build)
        if dense:
            build = rng.permutation(5000)
        else:
            build = rng.permutation(2 ** 62 // 7 * np.arange(1, 5001))
        if not unique_build:
            build = np.concatenate([build, build[:500]])
        probe = np.concatenate([
            build[rng.integers(0, build.shape[0], 20_000)],
            rng.integers(5001, 9000, 2_000),  # misses
        ])
        left_col, right_col = int_column(probe), int_column(build)
        index = build_key_index(right_col.values)
        note: list = []
        reference = join_indices([left_col], [right_col], right_index=index)
        parallel = parallel_probe_indexed([left_col], [right_col], index,
                                          pool, note)
        assert note[-1].startswith("parallel-")
        assert np.array_equal(reference[0], parallel[0])
        assert np.array_equal(reference[1], parallel[1])
    finally:
        pool.shutdown()


def test_process_group_aggregate_bit_identical():
    pool = process_pool()
    try:
        rng = np.random.default_rng(3)
        n = 6000
        group_keys = rng.integers(0, 150, n)
        int_values = rng.integers(-100, 100, n)
        float_values = rng.normal(size=n)
        mask = rng.random(n) < 0.2
        specs = [
            AggregateSpec("count*"),
            AggregateSpec("count", int_values, mask.copy(), INT64),
            AggregateSpec("min", int_values, None, INT64),
            AggregateSpec("max", int_values, mask.copy(), INT64),
            AggregateSpec("sum", int_values, None, INT64),
            AggregateSpec("sum", float_values, mask.copy(), FLOAT64),
            AggregateSpec("avg", float_values, mask.copy(), FLOAT64),
        ]
        ref_keys, ref_results = group_aggregate(group_keys, specs)
        par_keys, par_results = parallel_group_aggregate(group_keys, specs,
                                                         pool)
        assert np.array_equal(ref_keys, par_keys)
        for (ref_vals, ref_mask), (par_vals, par_mask) in zip(ref_results,
                                                              par_results):
            assert ref_vals.dtype == par_vals.dtype
            assert np.array_equal(ref_vals, par_vals)
            if ref_mask is None:
                assert par_mask is None
            else:
                assert np.array_equal(ref_mask, par_mask)
    finally:
        pool.shutdown()


def test_rc_end_to_end_process_identical(monkeypatch):
    """The tentpole contract: a full randomised-contraction run produces
    bit-identical labels on the thread and process backends."""
    import repro.sqlengine.executor as executor_module

    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    edges = gnm_random_graph(500, 900, np.random.default_rng(23))

    def run(backend):
        db = Database(n_segments=4, parallel=True, pool_backend=backend,
                      use_index_cache=False)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction().run(db, "edges", seed=13)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        stats = db.stats
        db.close()
        return vertices[order], labels[order], stats

    v_thread, l_thread, stats_thread = run("thread")
    v_process, l_process, stats_process = run("process")
    assert np.array_equal(v_thread, v_process)
    assert np.array_equal(l_thread, l_process)
    assert stats_process.process_tasks > 0
    assert stats_process.shm_bytes_exported > 0
    assert stats_process.stats_merges > 0
    assert stats_thread.process_tasks == 0


# ---------------------------------------------------------------------------
# crash hardening
# ---------------------------------------------------------------------------


def _echo(payload):
    return payload


def _die(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def test_crashed_worker_poisons_inflight_and_pool_restarts():
    pool = process_pool()
    try:
        assert pool.run_tasks(_echo, [1, 2, 3]) == [1, 2, 3]
        with pytest.raises(ExecutionError, match="worker process died"):
            pool.run_tasks(_die, [0, 1, 2, 3])
        # The broken executor was discarded: the next call restarts the
        # workers and completes normally.
        assert pool.run_tasks(_echo, [4, 5]) == [4, 5]
    finally:
        pool.shutdown()


def test_pool_shutdown_is_idempotent_and_pool_restarts():
    pool = process_pool()
    assert pool.run_tasks(_echo, [1]) == [1]
    pool.shutdown()
    pool.shutdown()  # double shutdown: no error
    assert pool.run_tasks(_echo, [2]) == [2]
    pool.shutdown()


# ---------------------------------------------------------------------------
# shared-memory lifecycle
# ---------------------------------------------------------------------------


def test_database_close_unlinks_blocks_and_stays_usable(monkeypatch):
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    db = Database(n_segments=4, parallel=True, pool_backend="process",
                  use_index_cache=False)
    rng = np.random.default_rng(5)
    n = 3000
    db.load_table("e", {"v1": rng.integers(0, 100, n),
                        "v2": rng.integers(0, 100, n)})
    db.load_table("r", {"v": np.arange(100, dtype=np.int64),
                        "rep": rng.integers(0, 100, 100)})
    query = "select e.v1, r.rep from e, r where e.v1 = r.v"
    expected = sorted(db.execute(query).rows())
    registry = db.pool.registry
    assert db.stats.process_tasks > 0
    assert registry.live_block_count() > 0
    names = registry.created_names()
    assert names and all(_shm_exists(name) for name in names)
    db.close()
    assert registry.live_block_count() == 0
    assert not any(_shm_exists(name) for name in names)
    db.close()  # double close: no error, nothing left to release
    # The database stays usable: workers restart, columns re-export.
    tasks_before = db.stats.process_tasks
    assert sorted(db.execute(query).rows()) == expected
    assert db.stats.process_tasks > tasks_before
    db.close()
    assert not any(_shm_exists(name)
                   for name in registry.created_names())


def test_no_shm_leaks_after_bench_style_rc_run(monkeypatch):
    """Satellite contract: a bench-style contraction run leaves zero
    ``/dev/shm`` segments once the database is closed."""
    import repro.sqlengine.executor as executor_module

    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    db = Database(n_segments=4, parallel=True, pool_backend="process",
                  use_index_cache=False)
    edges = gnm_random_graph(400, 700, np.random.default_rng(9))
    load_edges_into(db, "edges", edges)
    RandomisedContraction().run(db, "edges", seed=4)
    assert db.stats.process_tasks > 0
    names = db.pool.registry.created_names()
    assert names
    db.close()
    leaked = sorted(name for name in names if _shm_exists(name))
    assert leaked == []


def test_block_unlinked_when_keyed_array_dies():
    registry = ShmRegistry()
    array = np.arange(1000, dtype=np.int64)
    descriptor = registry.export_array(array)
    assert descriptor is not None
    assert registry.export_array(array) is descriptor  # cached by identity
    assert registry.live_block_count() == 1
    assert _shm_exists(descriptor.name)
    view = attach_array(descriptor)
    assert np.array_equal(view, array)
    del view, array
    gc.collect()
    assert registry.live_block_count() == 0
    assert not _shm_exists(descriptor.name)


def test_column_export_adopts_shared_storage():
    registry = ShmRegistry()
    values = np.arange(500, dtype=np.int64)
    column = Column(values.copy(), INT64)
    descriptor = registry.export_column(column)
    assert descriptor is not None
    assert np.array_equal(column.values, values)  # bit-identical adoption
    # Re-export is free: same block, no new bytes.
    exported = registry.bytes_exported
    assert registry.export_column(column) is descriptor
    assert registry.bytes_exported == exported
    name = descriptor.name
    del column
    gc.collect()
    registry.release_all()
    assert not _shm_exists(name)


def test_text_columns_are_not_shareable_and_fall_back(monkeypatch):
    registry = ShmRegistry()
    column = Column(np.array(["a", "b"], dtype=object), TEXT)
    assert not column.process_shareable()
    assert registry.export_column(column) is None
    # End-to-end: a text-keyed join on the process backend silently takes
    # the thread kernels and still matches the thread backend.
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)

    def run(backend):
        db = Database(n_segments=4, parallel=True, pool_backend=backend)
        db.execute("create table t (k text, v int64)")
        db.execute("insert into t values ('a', 1), ('b', 2), ('a', 3)")
        rows = db.execute(
            "select x.k, x.v, y.v from t as x, t as y where x.k = y.k"
        ).rows()
        db.close()
        return sorted(rows)

    assert run("process") == run("thread")


def test_release_all_keeps_live_views_readable():
    registry = ShmRegistry()
    column = Column(np.arange(256, dtype=np.int64), INT64)
    descriptor = registry.export_column(column)
    registry.release_all()
    assert not _shm_exists(descriptor.name)
    # POSIX unlink: the adopted view still reads the same pages.
    assert int(column.values.sum()) == 255 * 256 // 2


def test_atexit_sweep_leaves_no_segments(tmp_path):
    """An interpreter that exits mid-run without ``close()`` must still
    leave ``/dev/shm`` clean (the module's atexit sweep)."""
    script = textwrap.dedent("""
        import numpy as np
        import repro.sqlengine.executor as executor_module
        from repro.sqlengine import Database

        executor_module.PARALLEL_MIN_ROWS = 1
        db = Database(n_segments=4, parallel=True, pool_backend="process",
                      use_index_cache=False)
        rng = np.random.default_rng(2)
        db.load_table("e", {"v1": rng.integers(0, 50, 2000),
                            "v2": rng.integers(0, 50, 2000)})
        db.load_table("r", {"v": np.arange(50, dtype=np.int64),
                            "rep": rng.integers(0, 50, 50)})
        db.execute("select e.v1, r.rep from e, r where e.v1 = r.v")
        assert db.stats.process_tasks > 0
        names = db.pool.registry.created_names()
        assert names
        print("\\n".join(sorted(names)))
        # No close(): the atexit sweep must unlink everything.
    """)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    names = [line for line in proc.stdout.splitlines() if line.strip()]
    assert names
    leaked = [name for name in names if _shm_exists(name)]
    assert leaked == []


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------


def test_backend_argument_and_env_selection(monkeypatch):
    assert Database(parallel=True).pool_backend == "thread"
    db = Database(parallel=True, pool_backend="process")
    assert db.pool_backend == "process"
    assert isinstance(db.pool, ProcessSegmentPool)
    db.close()
    monkeypatch.setenv("REPRO_POOL_BACKEND", "process")
    db = Database(parallel=True)
    assert db.pool_backend == "process"
    db.close()
    # An explicit argument beats the environment.
    db = Database(parallel=True, pool_backend="thread")
    assert db.pool_backend == "thread"
    assert type(db.pool) is SegmentPool
    db.close()
    with pytest.raises(ValueError, match="unknown pool backend"):
        Database(pool_backend="greenlet")


def test_space_budget_forces_thread_fallback():
    db = Database(parallel=True, pool_backend="process",
                  space_budget_bytes=1 << 30)
    assert db.pool_backend == "thread"
    assert not db.pool.supports_processes
    db.close()


def test_parallel_disabled_has_no_backend():
    db = Database(parallel=False, pool_backend="process")
    assert db.pool is None
    assert db.pool_backend is None
    db.close()
