"""Property tests for the segment-parallel kernels.

The contract is absolute: :func:`parallel_join_indices` and
:func:`parallel_group_aggregate` must return **bit-identical** output to
their single-threaded references for every input shape, because the
executor switches between the strategies purely on size and pool
availability.  These tests force a multi-worker pool even on single-core
machines so the parallel code path (partitioning, per-partition kernels,
scatter recombination) is always exercised.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database
from repro.sqlengine.mpp import SegmentPool, partition_rows
from repro.sqlengine.operators import (
    build_key_index,
    join_indices,
    left_join_indices,
)
from repro.sqlengine.parallel import (
    AggregateSpec,
    group_aggregate,
    parallel_group_aggregate,
    parallel_join_indices,
    parallel_left_join_indices,
    parallel_left_probe_indexed,
    parallel_probe_indexed,
)
from repro.sqlengine.types import FLOAT64, INT64, Column


POOL = SegmentPool(4, max_workers=4)


def int_column(values) -> Column:
    return Column(np.array(values, dtype=np.int64), INT64)


keys = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=12),  # dense, duplicate-heavy
        st.integers(min_value=-(2 ** 62), max_value=2 ** 62),  # sparse
    ),
    min_size=0,
    max_size=60,
)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


@given(keys, keys)
def test_parallel_join_bit_identical(left, right):
    left_col, right_col = int_column(left), int_column(right)
    reference = join_indices([left_col], [right_col])
    parallel = parallel_join_indices([left_col], [right_col], POOL)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@given(keys, keys)
def test_parallel_left_join_bit_identical(left, right):
    if not left:
        left = [0]
    left_col, right_col = int_column(left), int_column(right)
    reference = left_join_indices([left_col], [right_col])
    parallel = parallel_left_join_indices([left_col], [right_col], POOL)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@pytest.mark.parametrize("n_segments", [1, 2, 3, 4, 7])
def test_parallel_join_large_random(n_segments):
    pool = SegmentPool(n_segments, max_workers=4)
    rng = np.random.default_rng(n_segments)
    left = int_column(rng.integers(0, 5000, 20_000))
    right = int_column(
        np.concatenate([rng.permutation(5000), rng.integers(0, 5000, 800)])
    )
    reference = join_indices([left], [right])
    parallel = parallel_join_indices([left], [right], pool)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


def test_parallel_join_falls_back_on_unsupported_shapes():
    masked = Column(np.array([1, 2, 3], dtype=np.int64), INT64,
                    np.array([False, True, False]))
    plain = int_column([2, 3, 4])
    reference = join_indices([masked], [plain])
    parallel = parallel_join_indices([masked], [plain], POOL)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@given(keys, keys)
def test_parallel_indexed_probe_bit_identical(left, right):
    left_col, right_col = int_column(left), int_column(right)
    index = build_key_index(right_col.values)
    reference = join_indices([left_col], [right_col], right_index=index)
    parallel = parallel_probe_indexed([left_col], [right_col], index, POOL)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@given(keys, keys)
def test_parallel_indexed_left_probe_bit_identical(left, right):
    if not left:
        left = [0]
    left_col, right_col = int_column(left), int_column(right)
    index = build_key_index(right_col.values)
    reference = left_join_indices([left_col], [right_col], right_index=index)
    parallel = parallel_left_probe_indexed([left_col], [right_col], index,
                                           POOL)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@pytest.mark.parametrize("n_segments", [1, 2, 3, 4, 7])
@pytest.mark.parametrize("unique_build", [True, False])
def test_parallel_indexed_probe_large_sparse(n_segments, unique_build):
    """Sparse 64-bit build keys force the sorted-index probe (the warm-loop
    shape); chunked output must match the single-threaded probe exactly."""
    pool = SegmentPool(n_segments, max_workers=4)
    rng = np.random.default_rng(10 * n_segments + unique_build)
    build = rng.permutation(2 ** 62 // 7 * np.arange(1, 5001))
    if not unique_build:
        build = np.concatenate([build, build[:500]])
    probe = np.concatenate([
        build[rng.integers(0, build.shape[0], 20_000)],
        rng.integers(0, 2 ** 62, 2_000),  # misses
    ])
    left_col, right_col = int_column(probe), int_column(build)
    index = build_key_index(right_col.values)
    assert index.is_unique == unique_build
    note: list = []
    reference = join_indices([left_col], [right_col], right_index=index)
    parallel = parallel_probe_indexed([left_col], [right_col], index, pool,
                                      note)
    assert note[-1] in ("parallel-probe", "parallel-merge-probe")
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


@pytest.mark.parametrize("n_segments", [1, 2, 3, 4, 7])
@pytest.mark.parametrize("unique_build", [True, False])
def test_parallel_dense_probe_bit_identical(n_segments, unique_build):
    """Dense build-side spans now chunk the direct-address probe across the
    pool (an existing index no longer forces single-threaded execution);
    output must match the single-threaded dense kernel exactly."""
    pool = SegmentPool(n_segments, max_workers=4)
    rng = np.random.default_rng(30 * n_segments + unique_build)
    build = rng.permutation(5000)
    if not unique_build:
        build = np.concatenate([build, build[:700]])
    probe = np.concatenate([
        rng.integers(0, 5000, 20_000),
        rng.integers(-2000, 0, 1_000),   # below-range misses
        rng.integers(5000, 9000, 1_000),  # above-range misses
    ])
    left_col, right_col = int_column(probe), int_column(build)
    index = build_key_index(right_col.values)
    note: list = []
    parallel = parallel_probe_indexed([left_col], [right_col], index, pool,
                                      note)
    assert note[-1] in ("parallel-dense", "parallel-dense-merge")
    assert note[-1] == (
        "parallel-dense" if unique_build else "parallel-dense-merge"
    )
    reference = join_indices([left_col], [right_col], right_index=index)
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


def test_parallel_dense_left_probe_bit_identical():
    rng = np.random.default_rng(4)
    build = rng.permutation(3000)
    probe = rng.integers(-500, 3500, 10_000)
    left_col, right_col = int_column(probe), int_column(build)
    index = build_key_index(right_col.values)
    note: list = []
    reference = left_join_indices([left_col], [right_col], right_index=index)
    parallel = parallel_left_probe_indexed([left_col], [right_col], index,
                                           POOL, note)
    assert note[-1] == "parallel-dense"
    assert np.array_equal(reference[0], parallel[0])
    assert np.array_equal(reference[1], parallel[1])


def test_executor_engages_parallel_indexed_probe(monkeypatch):
    """The warm-loop case: a cached build-side index no longer disables
    parallel execution — the probe chunks across the pool."""
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    rng = np.random.default_rng(21)
    n = 4000
    # Sparse unique representatives: span far beyond the dense-kernel cap,
    # so the single-threaded dispatch would take the sorted-index probe.
    reps = rng.permutation(np.arange(200) * (2 ** 53 + 12345))
    v1 = reps[rng.integers(0, 200, n)]
    v2 = rng.integers(0, 200, n)

    def build(parallel):
        db = Database(n_segments=4, parallel=parallel)
        db.load_table("e", {"v1": v1, "v2": v2})
        db.load_table("r", {"v": np.arange(200, dtype=np.int64),
                            "rep": reps})
        # Warm the index on the build side, as the round loop's first join
        # does, then re-join: the indexed path must go parallel.
        db.execute("select r.rep, count(*) c from r group by r.rep")
        return db

    query = "select e.v1, r.v from e, r where e.v1 = r.rep"
    on, off = build(True), build(False)
    rows_on = on.execute(query).rows()
    rows_off = off.execute(query).rows()
    assert rows_on == rows_off
    assert on.stats.parallel_indexed_probes > 0
    assert on.stats.index_cache_hits > 0
    assert off.stats.parallel_indexed_probes == 0


def test_executor_engages_parallel_dense_probe(monkeypatch):
    """Dense vertex ids with a warm build-side index: the direct-address
    probe must chunk across the pool rather than run single-threaded."""
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    rng = np.random.default_rng(27)
    n = 4000
    v1 = rng.integers(0, 300, n)
    v2 = rng.integers(0, 300, n)
    rep = rng.integers(0, 300, 300)

    def build(parallel):
        db = Database(n_segments=4, parallel=parallel)
        db.load_table("e", {"v1": v1, "v2": v2})
        db.load_table("r", {"v": np.arange(300, dtype=np.int64),
                            "rep": rep})
        db.execute("select r.v, count(*) c from r group by r.v")  # warm index
        return db

    query = "select e.v2, r.rep from e, r where e.v1 = r.v"
    on, off = build(True), build(False)
    assert on.execute(query).rows() == off.execute(query).rows()
    assert on.stats.parallel_dense_probes > 0
    assert off.stats.parallel_dense_probes == 0


def test_partition_rows_covers_everything_once():
    values = np.random.default_rng(0).integers(-(2 ** 60), 2 ** 60, 5000)
    parts = partition_rows(values, 4)
    joined = np.concatenate(parts)
    assert joined.shape[0] == values.shape[0]
    assert np.array_equal(np.sort(joined), np.arange(values.shape[0]))
    for part in parts:  # partitions preserve original relative order
        assert np.all(np.diff(part) > 0) or part.size <= 1


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def _specs_for(rng, n):
    int_values = rng.integers(-100, 100, n)
    float_values = rng.normal(size=n)
    mask = rng.random(n) < 0.2
    return [
        AggregateSpec("count*"),
        AggregateSpec("count", int_values, mask.copy(), INT64),
        AggregateSpec("min", int_values, None, INT64),
        AggregateSpec("max", int_values, mask.copy(), INT64),
        AggregateSpec("sum", int_values, None, INT64),
        AggregateSpec("sum", float_values, mask.copy(), FLOAT64),
        AggregateSpec("avg", float_values, mask.copy(), FLOAT64),
    ]


@pytest.mark.parametrize("n_keys", [1, 7, 200])
def test_parallel_group_aggregate_bit_identical(n_keys):
    rng = np.random.default_rng(n_keys)
    n = 3000
    group_keys = rng.integers(0, n_keys, n)
    specs = _specs_for(rng, n)
    ref_keys, ref_results = group_aggregate(group_keys, specs)
    par_keys, par_results = parallel_group_aggregate(group_keys, specs, POOL)
    assert np.array_equal(ref_keys, par_keys)
    for (ref_vals, ref_mask), (par_vals, par_mask) in zip(ref_results,
                                                          par_results):
        # Bit-identical, including float sums (per-key rows never split
        # across partitions, so reduction order is preserved).
        assert ref_vals.dtype == par_vals.dtype
        assert np.array_equal(ref_vals, par_vals)
        if ref_mask is None:
            assert par_mask is None
        else:
            assert np.array_equal(ref_mask, par_mask)


@given(st.lists(st.integers(min_value=-5, max_value=5), min_size=0,
                max_size=50))
def test_parallel_group_aggregate_small_inputs(values):
    group_keys = np.array(values, dtype=np.int64)
    arg = np.arange(group_keys.shape[0], dtype=np.int64)
    specs = [AggregateSpec("count*"), AggregateSpec("min", arg, None, INT64)]
    ref_keys, ref_results = group_aggregate(group_keys, specs)
    par_keys, par_results = parallel_group_aggregate(group_keys, specs, POOL)
    assert np.array_equal(ref_keys, par_keys)
    for (ref_vals, _), (par_vals, _) in zip(ref_results, par_results):
        assert np.array_equal(ref_vals, par_vals)


# ---------------------------------------------------------------------------
# executor integration: parallel on/off must be invisible in results
# ---------------------------------------------------------------------------


QUERIES = [
    "select e.v1, r.rep from e, r where e.v1 = r.v",
    "select e.v1, count(*) c, min(e.v2) lo, max(e.v2) hi, sum(e.v2) s "
    "from e group by e.v1",
    "select l.v, coalesce(r.rep, 0 - 1) rep from l "
    "left outer join r on (l.rep = r.v)",
    "select distinct e.v1, r.rep from e, r where e.v2 = r.v and e.v1 != r.rep",
]


@pytest.mark.parametrize("query", QUERIES)
def test_executor_parallel_on_off_identical(query, monkeypatch):
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)

    def build(parallel):
        # The parallel kernels only engage where no cached build-side index
        # already provides a sorted path, so model the index-less case.
        db = Database(n_segments=4, parallel=parallel, use_index_cache=False)
        rng = np.random.default_rng(99)
        n = 2500
        db.load_table("e", {"v1": rng.integers(0, 200, n),
                            "v2": rng.integers(0, 200, n)})
        db.load_table("r", {"v": np.arange(200, dtype=np.int64),
                            "rep": rng.integers(0, 1 << 40, 200)})
        db.load_table("l", {"v": np.arange(50, dtype=np.int64),
                            "rep": rng.integers(0, 400, 50)})
        return db

    on = build(True)
    off = build(False)
    rows_on = on.execute(query).rows()
    rows_off = off.execute(query).rows()
    assert rows_on == rows_off
    assert on.stats.parallel_partitions > 0
    assert off.stats.parallel_partitions == 0


def test_rc_end_to_end_parallel_identical(monkeypatch):
    import repro.sqlengine.executor as executor_module

    from repro.core import RandomisedContraction
    from repro.graphs import gnm_random_graph
    from repro.graphs.io import load_edges_into

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    edges = gnm_random_graph(500, 900, np.random.default_rng(17))

    def run(parallel):
        db = Database(n_segments=4, parallel=parallel, use_index_cache=False)
        load_edges_into(db, "edges", edges)
        result = RandomisedContraction().run(db, "edges", seed=13)
        vertices, labels = result.labels(db)
        order = np.argsort(vertices, kind="stable")
        return vertices[order], labels[order], db.stats

    v_on, l_on, stats_on = run(True)
    v_off, l_off, stats_off = run(False)
    assert np.array_equal(v_on, v_off)
    assert np.array_equal(l_on, l_off)
    assert stats_on.parallel_partitions > 0
    assert stats_off.parallel_partitions == 0
