"""Expression semantics, exercised end-to-end through SQL SELECTs."""

import math

import pytest

from repro.sqlengine import Database, ExecutionError, PlanError


@pytest.fixture()
def db():
    database = Database()
    database.execute("create table t (a int, b int, f float, s text)")
    database.execute(
        "insert into t (a, b, f, s) values "
        "(1, 10, 1.5, 'x'), (2, null, 2.5, 'y'), (3, 30, null, 'z')"
    )
    return database


def one(db, sql):
    return db.execute(sql).scalar()


def test_arithmetic_int():
    db = Database()
    assert db.execute("select 2 + 3 * 4").scalar() == 14
    assert db.execute("select (2 + 3) * 4").scalar() == 20
    assert db.execute("select 7 % 3").scalar() == 1
    assert db.execute("select -5 + 2").scalar() == -3


def test_division_is_float():
    db = Database()
    assert db.execute("select 7 / 2").scalar() == pytest.approx(3.5)


def test_division_by_zero_yields_null():
    db = Database()
    assert db.execute("select 1 / 0").scalar() is None


def test_modulo_by_zero_raises():
    db = Database()
    with pytest.raises(ExecutionError):
        db.execute("select 1 % 0")


def test_string_concat():
    db = Database()
    assert db.execute("select 'a' || 'b'").scalar() == "ab"


def test_comparisons(db):
    rows = db.execute("select a from t where a >= 2").rows()
    assert sorted(r[0] for r in rows) == [2, 3]


def test_null_comparison_is_false(db):
    # b is NULL in row 2: comparing NULL never matches.
    assert one(db, "select count(*) from t where b = 10") == 1
    assert one(db, "select count(*) from t where b != 10") == 1  # only b=30


def test_is_null_and_is_not_null(db):
    assert one(db, "select count(*) from t where b is null") == 1
    assert one(db, "select count(*) from t where f is not null") == 2


def test_not_operator(db):
    assert one(db, "select count(*) from t where not a = 1") == 2


def test_and_or(db):
    assert one(db, "select count(*) from t where a = 1 or a = 3") == 2
    assert one(db, "select count(*) from t where a >= 1 and a <= 2") == 2


def test_in_list(db):
    assert one(db, "select count(*) from t where a in (1, 3, 99)") == 2
    assert one(db, "select count(*) from t where a not in (1, 3)") == 1


def test_between(db):
    assert one(db, "select count(*) from t where a between 2 and 3") == 2


def test_least_greatest():
    db = Database()
    assert db.execute("select least(3, 1, 2)").scalar() == 1
    assert db.execute("select greatest(3, 1, 2)").scalar() == 3


def test_least_ignores_nulls(db):
    rows = dict(db.execute("select a, least(a, b) from t").rows())
    assert rows[1] == 1
    assert rows[2] == 2  # NULL ignored, not propagated
    assert rows[3] == 3


def test_least_greatest_text():
    db = Database()
    assert db.execute("select least('pear', 'apple', 'kiwi')").scalar() \
        == "apple"
    assert db.execute("select greatest('pear', 'apple', 'kiwi')").scalar() \
        == "pear"


def test_least_greatest_text_columns(db):
    rows = dict(db.execute("select a, least(s, 'y') from t").rows())
    assert rows == {1: "x", 2: "y", 3: "y"}
    rows = dict(db.execute("select a, greatest(s, 'y') from t").rows())
    assert rows == {1: "y", 2: "y", 3: "z"}


def test_least_greatest_text_skips_nulls(db):
    # PostgreSQL semantics: NULL arguments are ignored, not propagated;
    # the result is NULL only when every argument is NULL.
    db.execute("create table txt (a text, b text)")
    db.execute("insert into txt values ('m', null), (null, 'q'), "
               "(null, null), ('a', 'b')")
    rows = db.execute("select least(a, b), greatest(a, b) from txt").rows()
    assert rows == [("m", "m"), ("q", "q"), (None, None), ("a", "b")]


def test_least_greatest_mixed_text_numeric_raises(db):
    with pytest.raises(ExecutionError, match="mix"):
        db.execute("select least(s, a) from t")
    with pytest.raises(ExecutionError, match="mix"):
        db.execute("select greatest(s, 1) from t")


def test_coalesce(db):
    rows = dict(db.execute("select a, coalesce(b, -1) from t").rows())
    assert rows == {1: 10, 2: -1, 3: 30}


def test_coalesce_all_null():
    db = Database()
    assert db.execute("select coalesce(null, null)").scalar() is None


def test_nullif():
    db = Database()
    assert db.execute("select nullif(5, 5)").scalar() is None
    assert db.execute("select nullif(5, 6)").scalar() == 5


def test_abs_sign_sqrt():
    db = Database()
    assert db.execute("select abs(-4)").scalar() == 4
    assert db.execute("select sign(-9)").scalar() == -1
    assert db.execute("select sqrt(9.0)").scalar() == pytest.approx(3.0)


def test_mod_function():
    db = Database()
    assert db.execute("select mod(10, 3)").scalar() == 1


def test_case_when(db):
    rows = dict(db.execute(
        "select a, case when a = 1 then 100 when a = 2 then 200 else 0 end from t"
    ).rows())
    assert rows == {1: 100, 2: 200, 3: 0}


def test_case_without_else_yields_null(db):
    rows = dict(db.execute(
        "select a, case when a = 1 then 100 end from t"
    ).rows())
    assert rows == {1: 100, 2: None, 3: None}


def test_null_propagates_through_arithmetic(db):
    rows = dict(db.execute("select a, b + 1 from t").rows())
    assert rows[2] is None


def test_unknown_function_raises():
    db = Database()
    with pytest.raises(Exception, match="unknown function"):
        db.execute("select frobnicate(1)")


def test_unknown_column_raises(db):
    with pytest.raises(PlanError, match="unknown column"):
        db.execute("select nope from t")


def test_text_comparison(db):
    assert one(db, "select count(*) from t where s = 'y'") == 1


def test_unary_minus_on_column(db):
    rows = dict(db.execute("select a, -a from t").rows())
    assert rows[3] == -3
