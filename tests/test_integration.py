"""Cross-module integration tests: datasets -> engine -> algorithms."""

import numpy as np
import pytest

from repro import ALGORITHMS, connected_components
from repro.analysis import fit_scale_free
from repro.bench import Harness, mean_outcomes
from repro.core import make_algorithm
from repro.core.labels import validate_labelling
from repro.graphs import build_dataset
from repro.spark import SparkSQLDatabase

PAPER_ALGORITHMS = ["rc", "hm", "tp", "cr"]

DATASETS_SMALL = [
    "andromeda", "bitcoin_addresses", "bitcoin_full", "candels10",
    "friendster", "rmat", "pathunion10", "streets_of_italy",
]


@pytest.mark.parametrize("dataset", DATASETS_SMALL)
def test_rc_is_correct_on_every_dataset(dataset):
    edges = build_dataset(dataset, scale=0.02)
    result = connected_components(edges, "rc", seed=1)
    report = validate_labelling(edges, result.vertices, result.labels)
    assert report.valid, report.reason


@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_all_algorithms_agree_on_one_dataset(algorithm):
    edges = build_dataset("bitcoin_addresses", scale=0.02)
    result = connected_components(edges, algorithm, seed=1)
    report = validate_labelling(edges, result.vertices, result.labels)
    assert report.valid, f"{algorithm}: {report.reason}"


def test_component_counts_identical_across_algorithms():
    edges = build_dataset("pathunion10", scale=0.05)
    counts = {
        algorithm: connected_components(edges, algorithm, seed=2).n_components
        for algorithm in PAPER_ALGORITHMS
    }
    assert len(set(counts.values())) == 1, counts


def test_registry_aliases_resolve():
    for name in ALGORITHMS:
        assert make_algorithm(name) is not None
    with pytest.raises(KeyError):
        make_algorithm("quantum")


def test_figure5_shapes_on_scaled_datasets():
    """Fig 5: Andromeda and Bitcoin-addresses show scale-free components."""
    for name in ("andromeda", "bitcoin_addresses"):
        edges = build_dataset(name, scale=0.1)
        fit = fit_scale_free(edges)
        assert fit.slope < -0.4, name
        assert fit.n_components > 30, name


def test_andromeda_has_giant_background_outlier():
    edges = build_dataset("andromeda", scale=0.1)
    fit = fit_scale_free(edges)
    assert fit.giant_component_size > edges.n_vertices * 0.3


def test_harness_suite_reproduces_winner_shape():
    """Table III's headline: RC is the fastest algorithm."""
    harness = Harness(scale=0.08)
    outcomes = mean_outcomes(harness.run_suite(
        dataset_names=["candels10"], algorithms=PAPER_ALGORITHMS, reps=1,
    ))
    by_algorithm = {o.algorithm.split("[")[0]: o for o in outcomes}
    rc = by_algorithm["randomised-contraction"]
    assert rc.ok
    for name, outcome in by_algorithm.items():
        if name != "randomised-contraction" and outcome.ok:
            assert rc.seconds <= outcome.seconds * 1.5, (name, outcome.seconds)


def test_rc_writes_least_data():
    """Table V's shape: RC writes the least on image-like datasets."""
    harness = Harness(scale=0.08)
    outcomes = mean_outcomes(harness.run_suite(
        dataset_names=["candels10"], algorithms=PAPER_ALGORITHMS, reps=1,
    ))
    by_algorithm = {o.algorithm.split("[")[0]: o for o in outcomes}
    rc = by_algorithm["randomised-contraction"]
    for name, outcome in by_algorithm.items():
        if outcome.ok and name != "randomised-contraction":
            assert rc.written_bytes < outcome.written_bytes, name


def test_two_phase_uses_least_space():
    """Table IV's shape: TP has the smallest peak space."""
    harness = Harness(scale=0.08)
    outcomes = mean_outcomes(harness.run_suite(
        dataset_names=["candels10"], algorithms=PAPER_ALGORITHMS, reps=1,
    ))
    by_algorithm = {o.algorithm.split("[")[0]: o for o in outcomes}
    tp = by_algorithm["two-phase"]
    for name, outcome in by_algorithm.items():
        if outcome.ok and name != "two-phase":
            assert tp.peak_bytes <= outcome.peak_bytes, name


def test_spark_and_mpp_full_pipeline_agree():
    edges = build_dataset("streets_of_italy", scale=0.05)
    mpp = connected_components(edges, "rc", seed=3)
    spark = connected_components(edges, "rc", seed=3, db=SparkSQLDatabase())
    assert mpp.n_components == spark.n_components
    assert np.array_equal(np.sort(mpp.vertices), np.sort(spark.vertices))


def test_seeded_runs_are_fully_deterministic_end_to_end():
    edges = build_dataset("rmat", scale=0.01)
    first = connected_components(edges, "rc", seed=77)
    second = connected_components(edges, "rc", seed=77)
    assert first.run.rounds == second.run.rounds
    assert first.run.stats.bytes_written == second.run.stats.bytes_written
