"""Tests for the benchmark harness and the paper-table renderers."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import (
    Harness,
    mean_outcomes,
    render_figure6,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.bench.harness import RunOutcome
from repro.bench.scale import bench_reps


@pytest.fixture(scope="module")
def harness():
    return Harness(scale=0.05)


def test_dataset_cache_returns_same_object(harness):
    a = harness.dataset("path100m")
    b = harness.dataset("path100m")
    assert a is b


def test_run_once_ok(harness):
    outcome = harness.run_once("pathunion10", "rc")
    assert outcome.ok
    assert outcome.seconds > 0
    assert outcome.n_components == 10
    assert outcome.peak_bytes > outcome.input_bytes


def test_run_once_dnf_on_tight_budget(harness):
    outcome = harness.run_once(
        "path100m", "hm",
        space_budget_bytes=harness.input_bytes("path100m") * 6,
    )
    assert outcome.status == "dnf"
    assert "budget" in outcome.error


def test_budget_scales_with_largest_dataset(harness):
    budget = harness.budget_bytes(["path100m", "pathunion10"])
    largest = max(harness.input_bytes("path100m"),
                  harness.input_bytes("pathunion10"))
    assert budget == int(harness.budget_factor * largest)


def test_no_budget_when_factor_none():
    harness = Harness(scale=0.05, budget_factor=None)
    assert harness.budget_bytes(["path100m"]) is None


def test_run_suite_covers_grid(harness):
    outcomes = harness.run_suite(
        dataset_names=["pathunion10"], algorithms=["rc", "tp"], reps=2
    )
    assert len(outcomes) == 4
    pairs = {(o.dataset, o.algorithm) for o in outcomes}
    assert len(pairs) == 2


def test_mean_outcomes_averages_and_propagates_dnf():
    ok = RunOutcome("d", "a", "ok", 1.0, 5, 10, 100, 200, 300, 40, 2)
    ok2 = RunOutcome("d", "a", "ok", 3.0, 7, 12, 100, 250, 350, 60, 2)
    dnf = RunOutcome("d2", "a", "dnf", 0.5, 0, 0, 100, 900, 0, 0, 0, "boom")
    ok3 = RunOutcome("d2", "a", "ok", 1.0, 5, 10, 100, 200, 300, 40, 2)
    merged = mean_outcomes([ok, ok2, dnf, ok3])
    assert len(merged) == 2
    first = merged[0]
    assert first.seconds == pytest.approx(2.0)
    assert first.peak_bytes == 250
    assert merged[1].status == "dnf"


def test_reps_env(monkeypatch):
    monkeypatch.setenv("REPRO_REPS", "3")
    assert bench_reps() == 3
    monkeypatch.setenv("REPRO_REPS", "zero")
    with pytest.raises(ValueError):
        bench_reps()
    monkeypatch.setenv("REPRO_REPS", "0")
    with pytest.raises(ValueError):
        bench_reps()


def sample_outcomes():
    return [
        RunOutcome("candels10", "randomised-contraction", "ok",
                   1.5, 8, 40, 1000, 5000, 8000, 2000, 7),
        RunOutcome("candels10", "hash-to-min", "ok",
                   4.5, 10, 50, 1000, 7000, 20000, 9000, 7),
        RunOutcome("path100m", "randomised-contraction", "ok",
                   0.5, 9, 45, 800, 4800, 6000, 1500, 1),
        RunOutcome("path100m", "hash-to-min", "dnf",
                   0.2, 0, 0, 800, 9000, 0, 0, 0, "space"),
    ]


def test_render_table3_marks_dnf():
    text = render_table3(sample_outcomes())
    assert "TABLE III" in text
    assert "candels10" in text
    assert "-" in text
    assert "paper RC" in text


def test_render_table4_shows_ratios():
    text = render_table4(sample_outcomes())
    assert "TABLE IV" in text
    assert "5.0" in text  # 5000/1000 peak ratio


def test_render_table5_shows_written():
    text = render_table5(sample_outcomes())
    assert "TABLE V" in text
    assert "20.0 kB" in text


def test_render_figure6_bars():
    text = render_figure6(sample_outcomes())
    assert "FIGURE 6" in text
    assert "#" in text
    assert "did not finish" in text


def test_render_table1_with_measurements():
    text = render_table1([("path100m", 100_000, 16)])
    assert "TABLE I" in text
    assert "rounds/log2|V|" in text


def test_render_table2():
    text = render_table2([("path100m", 100, 99, 1)])
    assert "TABLE II" in text
    assert "paper |V|" in text


# ---------------------------------------------------------------------------
# scripts/bench_compare.py: baseline diffing must tolerate schema drift
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench_compare():
    path = Path(__file__).parent.parent / "scripts" / "bench_compare.py"
    spec = importlib.util.spec_from_file_location("bench_compare", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_compare_aligned_schemas_exit_zero(tmp_path, bench_compare, capsys):
    baseline = tmp_path / "baseline.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps({"a": {"t_s": 1.0}, "rate": 0.5}))
    fresh.write_text(json.dumps({"a": {"t_s": 0.8}, "rate": 0.6}))
    code = bench_compare.main(["bench_compare.py", str(baseline), str(fresh)])
    out = capsys.readouterr().out
    assert code == 0
    assert "-20.0%" in out and "+20.0%" in out


def test_bench_compare_reports_new_and_removed_keys(tmp_path, bench_compare,
                                                    capsys):
    """A baseline lacking keys for new benchmarks (or carrying stale extra
    ones) must be reported, never crash, with a deterministic exit code."""
    baseline = tmp_path / "baseline.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps({"kept": 1.0, "stale": {"old_s": 2.0}}))
    fresh.write_text(json.dumps({"kept": 1.5, "brand": {"new_s": 0.1}}))
    code = bench_compare.main(["bench_compare.py", str(baseline), str(fresh)])
    out = capsys.readouterr().out
    assert code == 3
    assert "new" in out and "removed" in out
    assert "1 new, 1 removed" in out


def test_bench_compare_nan_metric_is_drift_not_alignment(tmp_path,
                                                         bench_compare,
                                                         capsys):
    """A metric present on both sides but NaN on either must be reported
    as drift (exit 3): NaN means a broken measurement, and treating it as
    aligned would let it pass every future comparison."""
    baseline = tmp_path / "baseline.json"
    fresh = tmp_path / "fresh.json"
    baseline.write_text(json.dumps({"a": {"t_s": 1.0}, "rate": float("nan")}))
    fresh.write_text(json.dumps({"a": {"t_s": float("nan")}, "rate": 0.5}))
    code = bench_compare.main(["bench_compare.py", str(baseline), str(fresh)])
    out = capsys.readouterr().out
    assert code == 3
    assert "nan" in out
    assert "2 NaN metric(s)" in out
    # NaN on both sides is still drift — NaN == NaN never holds.
    baseline.write_text(json.dumps({"rate": float("nan")}))
    fresh.write_text(json.dumps({"rate": float("nan")}))
    assert bench_compare.main(
        ["bench_compare.py", str(baseline), str(fresh)]) == 3
    capsys.readouterr()


def test_bench_compare_missing_or_invalid_inputs(tmp_path, bench_compare,
                                                 capsys):
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps({"a": 1}))
    missing = tmp_path / "nope.json"
    assert bench_compare.main(
        ["bench_compare.py", str(missing), str(fresh)]) == 2
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert bench_compare.main(
        ["bench_compare.py", str(broken), str(fresh)]) == 2
    capsys.readouterr()
