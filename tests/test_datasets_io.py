"""Tests for the dataset registry (Table II roles) and graph I/O."""

import numpy as np
import pytest

from repro.graphs import (
    TABLE_DATASETS,
    EdgeList,
    build_dataset,
    dataset_names,
    edges_from_table,
    get_dataset_spec,
    load_edges_into,
    read_csv,
    write_csv,
)
from repro.graphs.datasets import default_scale
from repro.sqlengine import Database


def test_table_ii_datasets_all_registered():
    expected = [
        "andromeda", "bitcoin_addresses", "bitcoin_full",
        "candels10", "candels20", "candels40", "candels80", "candels160",
        "friendster", "rmat", "path100m", "pathunion10",
    ]
    assert TABLE_DATASETS == expected
    for name in expected:
        assert get_dataset_spec(name).paper_edges_m > 0


def test_streets_registered_as_extra():
    assert "streets_of_italy" in dataset_names()


def test_unknown_dataset_raises():
    with pytest.raises(KeyError, match="unknown dataset"):
        get_dataset_spec("nope")


@pytest.mark.parametrize("name", TABLE_DATASETS)
def test_build_tiny_scale(name):
    edges = build_dataset(name, scale=0.02)
    assert edges.n_edges > 0
    assert edges.n_vertices > 0


def test_candels_series_doubles_in_size():
    sizes = [build_dataset(f"candels{f}", scale=0.05).n_edges
             for f in (10, 20, 40)]
    assert sizes[1] > 1.6 * sizes[0]
    assert sizes[2] > 1.6 * sizes[1]


def test_path100m_is_sequential_path():
    edges = build_dataset("path100m", scale=0.01)
    assert edges.n_edges == edges.n_vertices - 1
    assert (edges.dst - edges.src == 1).all()


def test_scale_env_variable(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert default_scale() == 0.5


def test_scale_env_variable_invalid(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "banana")
    with pytest.raises(ValueError):
        default_scale()
    monkeypatch.setenv("REPRO_SCALE", "-1")
    with pytest.raises(ValueError):
        default_scale()


def test_load_and_read_back_roundtrip():
    db = Database()
    edges = EdgeList.from_pairs([(1, 2), (3, 4)])
    load_edges_into(db, "g", edges)
    assert db.table("g").distribution_column == "v1"
    back = edges_from_table(db, "g")
    assert back == edges


def test_edges_from_table_requires_two_columns():
    db = Database()
    db.execute("create table one_col (v int)")
    with pytest.raises(ValueError):
        edges_from_table(db, "one_col")


def test_csv_roundtrip(tmp_path):
    edges = EdgeList.from_pairs([(10, 20), (30, 40)])
    path = tmp_path / "edges.csv"
    write_csv(edges, path)
    back = read_csv(path)
    assert back == edges


def test_csv_reader_skips_header_and_blank_lines(tmp_path):
    path = tmp_path / "edges.csv"
    path.write_text("v1,v2\n\n1,2\nnot,numbers\n3,4\n")
    back = read_csv(path)
    assert back.n_edges == 2
