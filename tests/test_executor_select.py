"""End-to-end SELECT execution tests against the engine."""

import numpy as np
import pytest

from repro.sqlengine import Database, PlanError


@pytest.fixture()
def db():
    database = Database()
    database.load_table(
        "e",
        {
            "v1": np.array([1, 1, 2, 3, 3], dtype=np.int64),
            "v2": np.array([2, 3, 3, 4, 5], dtype=np.int64),
        },
        distributed_by="v1",
    )
    database.load_table(
        "names",
        {
            "v": np.array([1, 2, 3], dtype=np.int64),
            "w": np.array([10, 20, 30], dtype=np.int64),
        },
        distributed_by="v",
    )
    return database


def test_projection_and_alias(db):
    result = db.execute("select v1 as a, v2 b from e")
    assert result.names == ["a", "b"]
    assert len(result.rows()) == 5


def test_star_select(db):
    result = db.execute("select * from names")
    assert result.names == ["v", "w"]
    assert sorted(result.rows()) == [(1, 10), (2, 20), (3, 30)]


def test_filter_pushdown_result(db):
    rows = db.execute("select v1, v2 from e where v1 = 3").rows()
    assert sorted(rows) == [(3, 4), (3, 5)]


def test_two_table_join_via_where(db):
    rows = db.execute(
        "select e.v1, names.w from e, names where e.v2 = names.v"
    ).rows()
    assert sorted(rows) == [(1, 20), (1, 30), (2, 30)]


def test_three_table_join(db):
    rows = db.execute(
        """
        select e.v1, a.w, b.w
        from e, names as a, names as b
        where e.v1 = a.v and e.v2 = b.v
        """
    ).rows()
    assert sorted(rows) == [(1, 10, 20), (1, 10, 30), (2, 20, 30)]


def test_join_with_residual_inequality(db):
    rows = db.execute(
        "select e.v1, names.v from e, names where e.v1 = names.v and e.v2 != 3"
    ).rows()
    assert sorted(rows) == [(1, 1), (3, 3), (3, 3)]


def test_left_outer_join_nulls(db):
    rows = db.execute(
        """
        select e.v2 as v, names.w as w
        from e left outer join names on (e.v2 = names.v)
        """
    ).rows()
    got = sorted(rows)
    assert (4, None) in got and (5, None) in got
    assert (2, 20) in got and (3, 30) in got


def test_left_join_then_is_null_filter(db):
    rows = db.execute(
        """
        select e.v2 from e left outer join names on (e.v2 = names.v)
        where names.v is null
        """
    ).rows()
    assert sorted(r[0] for r in rows) == [4, 5]


def test_group_by_min_max(db):
    rows = db.execute(
        "select v1, min(v2), max(v2) from e group by v1"
    ).rows()
    assert sorted(rows) == [(1, 2, 3), (2, 3, 3), (3, 4, 5)]


def test_group_by_with_expression_over_aggregate(db):
    rows = db.execute(
        "select v1, least(v1, min(v2)) as m from e group by v1"
    ).rows()
    assert sorted(rows) == [(1, 1), (2, 2), (3, 3)]


def test_count_star_and_count_column():
    db = Database()
    db.execute("create table t (a int, b int)")
    db.execute("insert into t values (1, null), (1, 2), (2, 3)")
    rows = db.execute("select a, count(*), count(b) from t group by a").rows()
    assert sorted(rows) == [(1, 2, 1), (2, 1, 1)]


def test_global_aggregate_without_group_by(db):
    assert db.execute("select count(*) from e").scalar() == 5
    assert db.execute("select min(v2) from e").scalar() == 2
    assert db.execute("select sum(v1) from e").scalar() == 10
    assert db.execute("select avg(v1) from e").scalar() == pytest.approx(2.0)


def test_global_aggregate_on_empty_table():
    db = Database()
    db.execute("create table t (a int)")
    assert db.execute("select count(*) from t").scalar() == 0
    assert db.execute("select min(a) from t").scalar() is None


def test_count_distinct(db):
    assert db.execute("select count(distinct v1) from e").scalar() == 3
    rows = db.execute(
        "select v1, count(distinct v2) from e group by v1"
    ).rows()
    assert sorted(rows) == [(1, 2), (2, 1), (3, 2)]


def test_aggregate_ignores_nulls():
    db = Database()
    db.execute("create table t (a int, b int)")
    db.execute("insert into t values (1, null), (1, 5), (1, 3)")
    rows = db.execute("select a, min(b), sum(b) from t group by a").rows()
    assert rows == [(1, 3, 8)]


def test_non_grouped_column_rejected(db):
    with pytest.raises(PlanError, match="GROUP BY"):
        db.execute("select v1, v2 from e group by v1")


def test_distinct(db):
    rows = db.execute("select distinct v1 from e").rows()
    assert sorted(r[0] for r in rows) == [1, 2, 3]


def test_union_all(db):
    result = db.execute(
        "select v1, v2 from e union all select v2, v1 from e"
    )
    assert result.rowcount == 10


def test_union_all_column_count_mismatch(db):
    with pytest.raises(PlanError, match="UNION ALL"):
        db.execute("select v1 from e union all select v1, v2 from e")


def test_union_all_arity_checked_before_any_arm_runs(db):
    """The arity check fires at compile time: no arm executes — not even
    the well-formed first one — when a later arm's width mismatches."""
    calls = {"n": 0}

    def probe(values):
        calls["n"] += 1
        return values

    db.create_function("probe", probe)
    with pytest.raises(PlanError, match="UNION ALL"):
        db.execute("select probe(v1) from e union all select v1, v2 from e")
    assert calls["n"] == 0


_UNION_SQL = ("select v1 a, v2 b from e where v1 != 2 "
              "union all select v2, v1 from e "
              "union all select v1 + 10, v2 - 1 from e where v2 > 3")


def test_union_all_arms_overlap_on_the_pool():
    """Independent UNION ALL arms fan out on the segment pool; the output
    is the exact serial concatenation (arm order preserved), and the
    per-statement accounting is attributed identically."""
    def build(parallel):
        database = Database(n_segments=4, parallel=parallel)
        rng = np.random.default_rng(17)
        database.load_table("e", {
            "v1": rng.integers(0, 40, 500),
            "v2": rng.integers(0, 40, 500),
        }, distributed_by="v1")
        return database

    serial, parallel = build(False), build(True)
    expected = serial.execute(_UNION_SQL)
    got = parallel.execute(_UNION_SQL)
    assert got.names == expected.names
    assert got.rows() == expected.rows()  # exact order: serial concat
    assert parallel.stats.union_arm_overlaps > 0
    assert serial.stats.union_arm_overlaps == 0
    # Offloaded arms fold their scratch back into the driver's statement.
    assert parallel.stats.motion_bytes == serial.stats.motion_bytes
    serial.close()
    parallel.close()


def test_union_arm_error_matches_serial_order():
    """When an arm fails, the parallel fan-out must surface the same
    (lowest-index) arm's error the serial execution would."""
    db = Database(n_segments=4, parallel=True)
    db.load_table("e", {"v1": np.arange(20, dtype=np.int64),
                        "v2": np.arange(20, dtype=np.int64)},
                  distributed_by="v1")

    def boom(values):
        raise ValueError("arm exploded")

    db.create_function("boom", boom)
    with pytest.raises(Exception, match="arm exploded"):
        db.execute("select v1 from e union all select boom(v1) from e "
                   "union all select v2 from e")
    db.close()


def test_union_arms_inside_pool_tasks_stay_serial():
    """A UNION ALL executed from inside a pool task (a dataflow-scheduled
    statement) must not block a worker on nested futures — the in-task
    guard keeps it serial and deadlock-free.  Nested UNION subqueries in
    a fanned-out arm take the same serial path."""
    from repro.core.dataflow import DataflowScheduler

    db = Database(n_segments=2, parallel=True)  # a single offload slot
    db.load_table("e", {"v1": np.arange(50, dtype=np.int64),
                        "v2": np.arange(50, dtype=np.int64)},
                  distributed_by="v1")
    sched = DataflowScheduler(db)
    task = sched.submit([
        "create table u as select v1 a from e union all select v2 from e"])
    sched.wait(task)
    sched.wait_all()
    assert db.table("u").n_rows == 100
    # A UNION subquery inside a UNION arm: the outer arms may fan out,
    # the nested one stays serial; either way it completes correctly.
    rows = db.execute(
        "select s.a from (select v1 a from e union all select v2 a from e) "
        "as s union all select v1 from e").rowcount
    assert rows == 150
    db.close()


def test_subquery_in_from(db):
    rows = db.execute(
        """
        select q.m from (select v1, min(v2) as m from e group by v1) as q
        where q.m > 2
        """
    ).rows()
    assert sorted(r[0] for r in rows) == [3, 4]


def test_subquery_join_with_base_table(db):
    rows = db.execute(
        """
        select n.w
        from (select distinct v1 from e) as q, names as n
        where q.v1 = n.v
        """
    ).rows()
    assert sorted(r[0] for r in rows) == [10, 20, 30]


def test_select_without_from():
    db = Database()
    assert db.execute("select 1 + 1").scalar() == 2


def test_ambiguous_bare_column_raises(db):
    with pytest.raises(PlanError, match="ambiguous"):
        db.execute("select v from names as a, names as b where a.v = b.v")


def test_unknown_table_raises(db):
    with pytest.raises(Exception, match="unknown table"):
        db.execute("select 1 from missing")


def test_duplicate_binding_rejected(db):
    with pytest.raises(PlanError, match="duplicate"):
        db.execute("select 1 from e, e")


def test_small_cartesian_allowed():
    db = Database()
    db.execute("create table a (x int)")
    db.execute("create table b (y int)")
    db.execute("insert into a values (1), (2)")
    db.execute("insert into b values (10), (20)")
    rows = db.execute("select x, y from a, b").rows()
    assert len(rows) == 4


def test_huge_cartesian_rejected(db):
    db.load_table("big1", {"x": np.arange(3000, dtype=np.int64)})
    db.load_table("big2", {"y": np.arange(3000, dtype=np.int64)})
    with pytest.raises(PlanError, match="cartesian"):
        db.execute("select x, y from big1, big2")


def test_self_join_with_aliases(db):
    rows = db.execute(
        """
        select a.v1, b.v2
        from e as a, e as b
        where a.v2 = b.v1 and a.v1 != b.v2
        """
    ).rows()
    assert (1, 3) in rows  # 1-2 joined with 2-3


def test_join_edge_between_already_joined_tables_becomes_filter(db):
    # Both predicates reference the same pair; the second must filter.
    rows = db.execute(
        "select e.v1 from e, names where e.v1 = names.v and e.v2 = names.w"
    ).rows()
    assert rows == []
