"""Tests for the randomisation-method hierarchy (Section V-C)."""

import random

import numpy as np
import pytest

from repro.ff.gf2_64 import MASK64
from repro.ff.permutation import (
    GF2_64_FIELD,
    POINTWISE,
    TABLE,
    EncryptionMethod,
    FiniteFieldMethod,
    IdentityMethod,
    PrimeFieldMethod,
    RandomRealsMethod,
    get_method,
    gfp_field,
    method_names,
)


def test_registry_contents():
    assert set(method_names()) == {
        "encryption", "finite-fields", "identity", "prime-field", "random-reals",
    }


def test_unknown_method_raises():
    with pytest.raises(ValueError, match="unknown randomisation method"):
        get_method("rot13")


@pytest.mark.parametrize("name", ["finite-fields", "prime-field", "encryption",
                                  "identity"])
def test_pointwise_methods_declare_strategy(name):
    assert get_method(name).strategy == POINTWISE


def test_random_reals_is_table_strategy():
    assert get_method("random-reals").strategy == TABLE


@pytest.mark.parametrize("name", ["finite-fields", "prime-field", "encryption"])
def test_rounds_are_injective(name):
    method = get_method(name)
    round_fn = method.new_round(random.Random(99))
    xs = np.arange(5000, dtype=np.uint64)
    out = round_fn.apply(xs)
    assert len(set(np.asarray(out).tolist())) == 5000


@pytest.mark.parametrize("name", ["finite-fields", "prime-field", "encryption",
                                  "identity"])
def test_scalar_matches_vector(name):
    method = get_method(name)
    round_fn = method.new_round(random.Random(5))
    xs = np.array([0, 1, 7, 12345], dtype=np.uint64)
    out = np.asarray(round_fn.apply(xs))
    for i, x in enumerate(xs.tolist()):
        assert int(out[i]) == round_fn.apply_scalar(x)


def test_rounds_differ_between_draws():
    method = FiniteFieldMethod()
    rng = random.Random(0)
    first = method.new_round(rng)
    second = method.new_round(rng)
    assert (first.a, first.b) != (second.a, second.b)


def test_identity_round_is_identity():
    round_fn = IdentityMethod().new_round(random.Random(0))
    xs = np.array([3, 1, 4], dtype=np.uint64)
    assert np.array_equal(round_fn.apply(xs), xs)
    assert round_fn.sql_expr("v1") == "v1"


def test_finite_field_sql_expr_shape():
    round_fn = FiniteFieldMethod().new_round(random.Random(1))
    expr = round_fn.sql_expr("v2")
    assert expr.startswith("axplusb(")
    assert ", v2, " in expr


def test_prime_field_sql_expr_includes_modulus():
    method = PrimeFieldMethod()
    round_fn = method.new_round(random.Random(1))
    assert round_fn.sql_expr("x").endswith(f", {method.p})")


def test_encryption_sql_expr_shape():
    round_fn = EncryptionMethod().new_round(random.Random(1))
    assert round_fn.sql_expr("v1").startswith("blowfish(")


def test_affine_metadata_present_only_for_affine_rounds():
    assert FiniteFieldMethod().new_round(random.Random(0)).affine is not None
    assert PrimeFieldMethod().new_round(random.Random(0)).affine is not None
    assert IdentityMethod().new_round(random.Random(0)).affine == (1, 0, GF2_64_FIELD)
    assert EncryptionMethod().new_round(random.Random(0)).affine is None


def test_affine_sql_only_on_affine_methods():
    assert hasattr(FiniteFieldMethod(), "affine_sql")
    assert hasattr(PrimeFieldMethod(), "affine_sql")
    assert hasattr(IdentityMethod(), "affine_sql")
    assert not hasattr(EncryptionMethod(), "affine_sql")
    assert not hasattr(RandomRealsMethod(), "affine_sql")


def test_gf2_field_operations():
    field = GF2_64_FIELD
    assert field.mul(field.one, 12345) == 12345
    assert field.add(5, 5) == 0  # XOR
    assert field.add(0, 9) == 9
    assert field.mul(2, 1 << 63) == 0x1B  # reduction kicks in


def test_gfp_field_operations():
    field = gfp_field(17)
    assert field.mul(5, 7) == 35 % 17
    assert field.add(16, 3) == 2


def test_random_reals_memoises_within_round():
    round_fn = RandomRealsMethod().new_round(random.Random(3))
    a = round_fn.apply(np.array([10, 20, 10], dtype=np.uint64))
    assert a[0] == a[2]
    assert a[0] != a[1]
    again = round_fn.apply_scalar(10)
    assert again == pytest.approx(float(a[0]))


def test_random_reals_values_in_unit_interval():
    round_fn = RandomRealsMethod().new_round(random.Random(3))
    values = round_fn.values_for(np.arange(1000, dtype=np.int64))
    assert values.min() >= 0.0
    assert values.max() < 1.0


def test_finite_field_round_a_never_zero():
    method = FiniteFieldMethod()
    for seed in range(50):
        assert method.new_round(random.Random(seed)).a != 0
