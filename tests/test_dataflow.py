"""The statement-level dataflow scheduler (core/dataflow.py).

Covers the effect-set derivation, hazard ordering (RAW/WAW/WAR), the
inline fallbacks that keep budgeted/serial databases on the serial
schedule, error propagation through the DAG, and the engagement counter.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.dataflow import DataflowScheduler, statement_effects
from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError


# ---------------------------------------------------------------------------
# effect derivation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql,reads,writes", [
    ("select v from edges where v > 0", {"edges"}, set()),
    ("select e.v from edges as e, reps as r where e.v = r.v",
     {"edges", "reps"}, set()),
    ("create table t as select v from edges distributed by (v)",
     {"edges"}, {"t"}),
    ("create table t (v int64)", set(), {"t"}),
    ("insert into t values (1)", set(), {"t"}),
    ("insert into t select v from edges", {"edges"}, {"t"}),
    ("drop table a, b", set(), {"a", "b"}),
    ("alter table old rename to new", set(), {"old", "new"}),
    ("truncate table t", set(), {"t"}),
    ("select s.a from (select v a from edges) as s join reps as r "
     "on (s.a = r.v)", {"edges", "reps"}, set()),
])
def test_statement_effects(sql, reads, writes):
    got_reads, got_writes = statement_effects(sql)
    assert got_reads == frozenset(reads)
    assert got_writes == frozenset(writes)


def test_statement_effects_normalises_case():
    reads, writes = statement_effects("create table T as select v from EDGES")
    assert reads == frozenset({"edges"})
    assert writes == frozenset({"t"})


# ---------------------------------------------------------------------------
# scheduling
# ---------------------------------------------------------------------------


def _db(parallel=True, budget=None) -> Database:
    db = Database(n_segments=4, parallel=parallel,
                  space_budget_bytes=budget)
    db.load_table("base", {"v": np.arange(64, dtype=np.int64)},
                  distributed_by="v")
    return db


def test_hazard_chain_executes_in_order():
    """A RAW/WAW/WAR ladder over one table must serialise: every task sees
    exactly the catalog state the serial schedule would give it."""
    db = _db()
    sched = DataflowScheduler(db)
    assert sched.asynchronous
    sched.submit(["create table a as select v from base where v < 32"])
    sched.submit(["create table b as select v from a where v < 16"])  # RAW
    sched.submit(["drop table a"])                                    # WAR
    sched.submit(["create table a as select v from b"])               # WAW
    task = sched.submit(["select count(*) c from a"])
    assert sched.wait(task)[0].scalar() == 16
    sched.wait_all()
    db.close()


def test_rename_chains_are_ordered():
    """The contraction loop's drop/rename churn: renames write both names,
    so a reader of the new name always waits for the rename."""
    db = _db()
    sched = DataflowScheduler(db)
    sched.submit(["create table t as select v from base where v < 10"])
    sched.submit(["alter table t rename to final"])
    got = sched.wait(sched.submit(["select count(*) c from final"]))
    assert got[0].scalar() == 10
    sched.wait_all()
    db.close()


def test_independent_tasks_overlap_and_are_counted():
    """Two tasks with disjoint table sets run concurrently: a slow UDF
    holds the first task on a worker while the second is submitted, which
    the dataflow_overlaps counter must record."""
    db = _db()

    def slow_identity(values):
        time.sleep(0.2)
        return values

    db.create_function("slowid", slow_identity)
    sched = DataflowScheduler(db)
    started = time.perf_counter()
    first = sched.submit(["create table s1 as select slowid(v) a from base"])
    second = sched.submit(["create table s2 as select slowid(v) b from base"])
    sched.wait(first)
    sched.wait(second)
    elapsed = time.perf_counter() - started
    # Serial execution would take >= 0.4s; overlap keeps it well under.
    assert elapsed < 0.35
    assert db.stats.dataflow_overlaps >= 1
    sched.wait_all()
    db.close()


def test_inline_without_pool_and_under_budget():
    """No multi-worker pool, or a space budget: submission executes the
    statements synchronously in submission order (the serial schedule,
    byte-for-byte, so budget violations stay deterministic)."""
    for db in (_db(parallel=False), _db(budget=1 << 30)):
        sched = DataflowScheduler(db)
        assert not sched.asynchronous
        task = sched.submit(["create table t as select v from base",
                             "drop table t"])
        assert task.done.is_set()
        assert len(sched.wait(task)) == 2
        assert "t" not in db.catalog
        assert db.stats.dataflow_overlaps == 0
        sched.wait_all()
        db.close()


def test_budget_violation_raises_at_submit():
    """Inline mode surfaces SpaceBudgetExceeded synchronously, exactly
    like the pre-scheduler serial driver did."""
    from repro.sqlengine.errors import SpaceBudgetExceeded

    db = _db(budget=700)  # base table (512B values) fits, one copy does not
    sched = DataflowScheduler(db)
    with pytest.raises(SpaceBudgetExceeded):
        sched.submit(["create table copy1 as select v from base"])
    db.close()


# ---------------------------------------------------------------------------
# cached effect sets: warm loops derive effects from plan-cache templates
# ---------------------------------------------------------------------------


def test_template_effects_match_fresh_parse():
    """Template-derived effect sets must agree exactly with a fresh parse
    for every statement shape the RC drivers schedule."""
    db = _db()
    sched = DataflowScheduler(db)
    statements = [
        "create table reps7 as select v a from base distributed by (a)",
        "create table g2 as select b.v from base as b, base as c "
        "where b.v = c.v",
        "insert into g2 select v from base",
        "insert into g2 values (41)",
        "drop table reps7, g2",
        "alter table base rename to base2",
        "truncate table base2",
        "select count(*) c from base",
    ]
    for sql in statements:
        assert sched._template_effects_for(sql) == statement_effects(sql), sql
    db.close()


def test_warm_loop_effects_skip_scheduler_parses(monkeypatch):
    """Round N>1 of a templated statement loop derives its effect sets
    without a single scheduler-side parse, counted as effects_cache_hits
    (round 1 builds the shared plan-cache template; later rounds only pay
    the normalisation regex plus the marker substitution)."""
    import repro.core.dataflow as dataflow_module

    db = _db()
    sched = DataflowScheduler(db)
    parses = {"n": 0}
    original = dataflow_module.parse_statement

    def counting(sql):
        parses["n"] += 1
        return original(sql)

    monkeypatch.setattr(dataflow_module, "parse_statement", counting)
    before = db.stats.snapshot().effects_cache_hits
    for round_no in range(1, 6):
        task = sched.submit([
            f"create table r{round_no} as select v from base "
            f"where v < {8 * round_no} distributed by (v)"])
        sched.wait(task)
    sched.wait_all()
    assert parses["n"] == 0  # never fell back to statement_effects
    hits = db.stats.snapshot().effects_cache_hits - before
    assert hits >= 4  # every warm round after the first is a hit
    db.close()


def test_repeated_statement_text_hits_the_memo():
    """Byte-identical statement texts (the fixed drops/renames of the
    round loop) hit the per-scheduler memo without even normalising."""
    db = _db()
    sched = DataflowScheduler(db)
    before = db.stats.snapshot().effects_cache_hits
    for i in range(3):
        sched.wait(sched.submit(["create table fix as select v from base",
                                 "drop table fix"]))
    sched.wait_all()
    assert db.stats.snapshot().effects_cache_hits - before >= 4
    db.close()


def test_effects_fall_back_without_plan_cache():
    """A database without a plan cache still schedules correctly — the
    scheduler parses each statement for its effect sets instead."""
    db = Database(n_segments=4, parallel=True, use_plan_cache=False)
    db.load_table("base", {"v": np.arange(8, dtype=np.int64)},
                  distributed_by="v")
    sched = DataflowScheduler(db)
    sched.wait(sched.submit(["create table t as select v from base"]))
    sched.wait_all()
    assert db.table("t").n_rows == 8
    db.close()


# ---------------------------------------------------------------------------
# error propagation
# ---------------------------------------------------------------------------


def test_failed_task_poisons_dependents_and_submit():
    """A failing statement group must (a) re-raise at wait(), (b) prevent
    its dependents from running on the broken catalog, and (c) refuse
    further submissions."""
    db = _db()
    sched = DataflowScheduler(db)
    bad = sched.submit(["create table x as select v from missing_table"])
    dependent = sched.submit(["select count(*) c from x"])
    with pytest.raises(CatalogError):
        sched.wait(bad)
    with pytest.raises(CatalogError):
        sched.wait(dependent)
    assert dependent.results == []  # poisoned, never executed
    with pytest.raises(CatalogError):
        sched.submit(["select v from base"])
    sched.drain()  # idempotent on a failed schedule
    db.close()


def test_wait_all_raises_first_error():
    db = _db()
    sched = DataflowScheduler(db)
    sched.submit(["create table ok as select v from base"])
    sched.submit(["drop table missing"])
    with pytest.raises(CatalogError):
        sched.wait_all()
    db.close()


def test_two_worker_pool_overlaps_via_driver_help():
    """On a two-worker pool the running cap leaves one pool slot, so the
    waiting driver thread must execute queued ready tasks itself — the
    reported overlap has to be real concurrency, not a queue entry."""
    db = Database(n_segments=2, parallel=True)
    assert db.pool.n_workers == 2
    db.load_table("base", {"v": np.arange(64, dtype=np.int64)},
                  distributed_by="v")

    def slow_identity(values):
        time.sleep(0.2)
        return values

    db.create_function("slowid", slow_identity)
    sched = DataflowScheduler(db)
    started = time.perf_counter()
    first = sched.submit(["create table s1 as select slowid(v) a from base"])
    second = sched.submit(["create table s2 as select slowid(v) b from base"])
    sched.wait(second)
    sched.wait(first)
    elapsed = time.perf_counter() - started
    # One pool slot plus the helping driver: both run concurrently.
    assert elapsed < 0.35
    assert db.stats.dataflow_overlaps >= 1
    sched.wait_all()
    db.close()


def test_many_independent_tasks_respect_worker_cap():
    """More independent tasks than workers: all finish, results intact
    (the ready queue drains as workers free up; no pool deadlock)."""
    db = _db()
    sched = DataflowScheduler(db)
    tasks = [
        sched.submit([f"create table m{i} as select v from base "
                      f"where v < {i + 1}"])
        for i in range(12)
    ]
    for i, task in enumerate(tasks):
        assert sched.wait(task)[0].rowcount == i + 1
    sched.wait_all()
    db.close()
