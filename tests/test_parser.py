"""Tests for the SQL parser."""

import pytest

from repro.sqlengine.ast_nodes import (
    Aggregate,
    AlterRename,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    CreateTableAs,
    DropTable,
    FuncCall,
    InList,
    InsertSelect,
    InsertValues,
    IsNull,
    Literal,
    Select,
    SubqueryRef,
    TableRef,
    TruncateTable,
    UnaryOp,
)
from repro.sqlengine.errors import ParseError
from repro.sqlengine.parser import parse_script, parse_statement


def select_core(sql):
    statement = parse_statement(sql)
    assert isinstance(statement, Select)
    assert len(statement.cores) == 1
    return statement.cores[0]


def test_simple_select():
    core = select_core("select v1, v2 from g")
    assert [i.expr for i in core.items] == [
        ColumnRef(None, "v1"), ColumnRef(None, "v2"),
    ]
    assert core.from_items == (TableRef("g", None),)


def test_bare_alias_without_as():
    core = select_core("select v1 v from g")
    assert core.items[0].alias == "v"


def test_as_alias():
    core = select_core("select v1 as v from g t1")
    assert core.items[0].alias == "v"
    assert core.from_items[0].alias == "t1"


def test_qualified_column():
    core = select_core("select r1.rep from t as r1")
    assert core.items[0].expr == ColumnRef("r1", "rep")


def test_comma_join_and_where():
    core = select_core("select a.x from a, b where a.x = b.y and a.x != 3")
    assert len(core.from_items) == 2
    assert isinstance(core.where, BinaryOp)
    assert core.where.op == "and"


def test_left_outer_join():
    core = select_core(
        "select l.v from l left outer join r on (l.r = r.v)"
    )
    assert len(core.joins) == 1
    assert core.joins[0].kind == "left"


def test_left_join_without_outer():
    core = select_core("select 1 from l left join r on l.a = r.b")
    assert core.joins[0].kind == "left"


def test_inner_join():
    core = select_core("select 1 from a inner join b on a.x = b.y join c on c.z = b.y")
    assert [j.kind for j in core.joins] == ["inner", "inner"]


def test_group_by_multiple_keys():
    core = select_core("select a, b, count(*) from t group by a, b")
    assert core.group_by == (ColumnRef(None, "a"), ColumnRef(None, "b"))


def test_aggregates_parse():
    core = select_core(
        "select min(x), max(x), sum(x), avg(x), count(*), count(distinct x) from t"
    )
    names = [i.expr.name for i in core.items]
    assert names == ["min", "max", "sum", "avg", "count", "count"]
    assert core.items[4].expr.arg is None
    assert core.items[5].expr.distinct


def test_count_star_only_for_count():
    with pytest.raises(ParseError):
        parse_statement("select min(*) from t")


def test_distinct_flag():
    assert select_core("select distinct v1 from g").distinct
    assert not select_core("select v1 from g").distinct


def test_union_all_chain():
    statement = parse_statement(
        "select v1, v2 from g union all select v2, v1 from g union all select 1, 2"
    )
    assert isinstance(statement, Select)
    assert len(statement.cores) == 3


def test_subquery_in_from():
    core = select_core("select q.v from (select v1 as v from g) as q")
    assert isinstance(core.from_items[0], SubqueryRef)
    assert core.from_items[0].alias == "q"


def test_function_calls_nest():
    core = select_core("select least(axplusb(3, v1, 7), min(axplusb(3, v2, 7))) from g")
    outer = core.items[0].expr
    assert isinstance(outer, FuncCall) and outer.name == "least"
    assert isinstance(outer.args[1], Aggregate)


def test_operator_precedence():
    core = select_core("select 1 + 2 * 3")
    expr = core.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_comparison_precedence_with_and():
    core = select_core("select 1 from t where a = 1 and b = 2 or c = 3")
    assert core.where.op == "or"
    assert core.where.left.op == "and"


def test_not_and_is_null():
    core = select_core("select 1 from t where not a is null and b is not null")
    left = core.where.left
    assert isinstance(left, UnaryOp) and left.op == "not"
    assert isinstance(left.operand, IsNull) and not left.operand.negated
    assert isinstance(core.where.right, IsNull) and core.where.right.negated


def test_in_list():
    core = select_core("select 1 from t where x in (1, 2, 3) and y not in (4)")
    assert isinstance(core.where.left, InList)
    assert not core.where.left.negated
    assert core.where.right.negated


def test_between_desugars():
    core = select_core("select 1 from t where x between 2 and 5")
    assert core.where.op == "and"
    assert core.where.left.op == ">="
    assert core.where.right.op == "<="


def test_case_when():
    core = select_core("select case when a = 1 then 'one' else 'many' end from t")
    expr = core.items[0].expr
    assert isinstance(expr, CaseWhen)
    assert len(expr.branches) == 1
    assert expr.default == Literal("many")


def test_case_requires_branch():
    with pytest.raises(ParseError):
        parse_statement("select case else 1 end from t")


def test_unary_minus_folds_into_literal():
    core = select_core("select -5")
    assert core.items[0].expr == Literal(-5)


def test_null_literal():
    assert select_core("select null").items[0].expr == Literal(None)


def test_create_table_as_with_distribution():
    statement = parse_statement(
        "create table t as select v1, v2 from g distributed by (v1)"
    )
    assert isinstance(statement, CreateTableAs)
    assert statement.name == "t"
    assert statement.distributed_by == "v1"


def test_create_table_as_distributed_randomly():
    statement = parse_statement(
        "create table t as select 1 as a distributed randomly"
    )
    assert statement.distributed_by is None


def test_create_table_with_columns():
    statement = parse_statement("create table t (v int, r bigint, x float)")
    assert isinstance(statement, CreateTable)
    assert statement.columns == (("v", "int64"), ("r", "int64"), ("x", "float64"))


def test_create_table_bad_type():
    with pytest.raises(ParseError):
        parse_statement("create table t (v blob)")


def test_drop_table_multiple():
    statement = parse_statement("drop table a, b, c")
    assert isinstance(statement, DropTable)
    assert statement.names == ("a", "b", "c")


def test_drop_table_if_exists():
    statement = parse_statement("drop table if exists a")
    assert statement.if_exists


def test_alter_rename():
    statement = parse_statement("alter table a rename to b")
    assert statement == AlterRename("a", "b")


def test_insert_values():
    statement = parse_statement("insert into t (a, b) values (1, 2), (3, null)")
    assert isinstance(statement, InsertValues)
    assert statement.columns == ("a", "b")
    assert len(statement.rows) == 2


def test_insert_select():
    statement = parse_statement("insert into t select v, r from s")
    assert isinstance(statement, InsertSelect)


def test_truncate():
    assert parse_statement("truncate table t") == TruncateTable("t")
    assert parse_statement("truncate t") == TruncateTable("t")


def test_trailing_garbage_raises():
    with pytest.raises(ParseError, match="trailing"):
        parse_statement("select 1 from t banana nonsense extra")


def test_script_parsing():
    statements = parse_script("select 1; drop table t; alter table a rename to b;")
    assert len(statements) == 3


def test_appendix_a_queries_parse():
    """The exact query shapes of the paper's Appendix A must parse."""
    parse_statement("""
        create table ccgraph as
        select v1, v2 from dataset
        union all
        select v2, v1 from dataset
        distributed by (v1)
    """)
    parse_statement("""
        create table ccreps1 as
        select v1 v,
               least(axplusb(-123, v1, 456), min(axplusb(-123, v2, 456))) rep
        from ccgraph
        group by v1
        distributed by (v)
    """)
    parse_statement("""
        create table ccgraph3 as
        select distinct v1, r2.rep as v2
        from ccgraph2, ccreps1 as r2
        where ccgraph2.v2 = r2.v
          and v1 != r2.rep
        distributed by (v1)
    """)
    parse_statement("""
        create table tmp as
        select r1.v as v, coalesce(r2.rep, axplusb(7, r1.rep, 9)) as rep
        from ccreps1 as r1 left outer join ccreps2 as r2 on (r1.rep = r2.v)
        distributed by (v)
    """)
