"""Differential fuzzing: every fast path vs the retained sort-merge reference.

ConnectIt's lesson (Dhulipala et al., 2020) is that connectivity kernels
only stay trustworthy when the many sampling/finish combinations are
differentially tested against a simple reference.  This engine's
equivalent surface is the SELECT pipeline: plan-cache templating, compiled
physical plans, column pruning, join-chain fusion, fused join->DISTINCT
and join->GROUP BY, segment-parallel kernels, and the subquery result
cache all rewrite how a statement executes — and every one of them claims
bit-identical output.

This harness generates seeded random SELECT statements (join chains up to
depth 3, DISTINCT, GROUP BY with aggregates, LEFT OUTER JOIN — including
a dedicated arm grouping on the outer-padded final binding, where padded
rows must form NULL-key groups — negative constants, NULL-bearing
columns, IS NULL predicates, UNION ALL arms (fanned out on the parallel
configuration's pool), and subquery FROM items — plain, aggregated, and
UNION ALL subqueries joined like tables) over small random tables, and
runs each statement on five configurations:

* **reference** — every cache, fusion and parallel feature off, with the
  executor's kernels swapped for the retained sort-merge references
  (``merge_join_indices``, ``sorted_group_rows``, the sort-based
  DISTINCT).  This is the seed engine, all the way down to the kernels.
* **planned** — the default engine: plan cache, physical plans, fusion,
  join-chain fusion, result cache.
* **warm** — the same statement re-executed on the planned database, so
  the warm template/physical-plan/result-cache paths are exercised.
* **parallel** — fusion plus a forced multi-worker pool with
  ``PARALLEL_MIN_ROWS`` dropped to 1, so the segment-parallel kernels
  engage even on fuzz-sized inputs.
* **process** — the same forced pool on the process backend: kernels run
  in worker processes over shared-memory columns, exercising descriptor
  export, worker rehydration and stats-delta merging on every statement.

All five must produce bit-identical relations: storage names, display
names, column order, SQL types, null masks, non-null values, row order.

Runs in tier-1 under a fixed seed.  Env knobs for CI:

* ``REPRO_FUZZ_ROUNDS`` — statement count (default 200);
* ``REPRO_FUZZ_SEED`` — generator seed (default 20200420).
"""

from __future__ import annotations

import os
import random
from typing import Optional

import numpy as np
import pytest

from repro.sqlengine import Database
from repro.sqlengine.operators import (
    merge_join_indices,
    pad_left_outer,
    sorted_group_rows,
)

FUZZ_ROUNDS = int(os.environ.get("REPRO_FUZZ_ROUNDS", "200"))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20200420"))

#: Fresh random tables (and databases) every this many statements, with a
#: DDL churn step (append + rename round-trip) halfway through each batch.
BATCH = 40

TABLES = {
    "t0": ("k0", "a0", "n0"),
    "t1": ("k1", "a1", "n1"),
    "t2": ("k2", "a2", "n2"),
}
#: Alias pool; t0 appears twice so chains can re-join a table (the paper's
#: per-round ``reps`` pattern) and bare column names can collide.
ALIASES = [("t0", "x"), ("t1", "y"), ("t2", "z"), ("t0", "w")]


# ---------------------------------------------------------------------------
# engine configurations
# ---------------------------------------------------------------------------


def reference_db() -> Database:
    """The seed pipeline over the retained sort-merge reference kernels."""
    db = Database(
        n_segments=4,
        use_plan_cache=False,
        use_index_cache=False,
        use_physical_plans=False,
        use_fusion=False,
        use_result_cache=False,
        parallel=False,
    )
    executor = db._executor

    def join_kernel(left_keys, right_keys, left_index=None, right_index=None,
                    note=None):
        return merge_join_indices(left_keys, right_keys)

    def left_join_kernel(left_keys, right_keys, left_index=None,
                         right_index=None, note=None):
        l_idx, r_idx = merge_join_indices(left_keys, right_keys)
        return pad_left_outer(l_idx, r_idx, len(left_keys[0]))

    def group_kernel(key_columns, index=None):
        return sorted_group_rows(key_columns)

    def distinct_kernel(columns, note=None):
        order, starts = sorted_group_rows(columns)
        return np.sort(order[starts]) if order.size else order

    executor._join_kernel = join_kernel
    executor._left_join_kernel = left_join_kernel
    executor._group_kernel = group_kernel
    executor._distinct_kernel = distinct_kernel
    return db


def planned_db() -> Database:
    return Database(n_segments=4)


def parallel_db() -> Database:
    return Database(n_segments=4, parallel=True)


def process_db() -> Database:
    return Database(n_segments=4, parallel=True, pool_backend="process")


# ---------------------------------------------------------------------------
# statement generation
# ---------------------------------------------------------------------------


def table_statements(rand: random.Random) -> list[str]:
    """CREATE + INSERT statements for one batch of small random tables."""
    statements = []
    for name, (key, val, nullable) in TABLES.items():
        n_rows = rand.randint(8, 28)
        statements.append(
            f"create table {name} ({key} int64, {val} int64, {nullable} int64)"
        )
        rows = []
        for _ in range(n_rows):
            null = "null" if rand.random() < 0.25 else str(rand.randint(0, 4))
            rows.append(f"({rand.randint(0, 6)}, {rand.randint(-5, 5)}, {null})")
        statements.append(f"insert into {name} values {', '.join(rows)}")
    return statements


def churn_statements(rand: random.Random) -> list[str]:
    """Mid-batch DDL churn: appends and a rename round-trip, which must
    invalidate result-cache fingerprints and survive plan re-validation."""
    target = rand.choice(list(TABLES))
    key, val, nullable = TABLES[target]
    null = "null" if rand.random() < 0.5 else str(rand.randint(0, 4))
    return [
        f"insert into {target} values "
        f"({rand.randint(0, 6)}, {rand.randint(-5, 5)}, {null})",
        f"alter table {target} rename to churned",
        f"alter table churned rename to {target}",
    ]


def _table_use(table: str, alias: str) -> tuple:
    """A FROM use: (positional columns, alias, FROM-clause fragment).

    Position 0 is the join-key-ish column, 1 the value column, 2 the
    NULL-bearing column — subquery uses expose the same positional shape
    under renamed columns, so every generation helper works on both.
    """
    return (TABLES[table], alias, f"{table} as {alias}")


def _subquery_use(rand: random.Random, index: int) -> tuple:
    """A subquery FROM item, joined and filtered like a table.

    Three inner shapes: a plain renaming projection (with an optional
    pushable predicate), a GROUP BY aggregation, and a two-arm UNION ALL —
    each exposing the (key-ish, value-ish, nullable) positional contract.
    """
    table = rand.choice(list(TABLES))
    key, val, nul = TABLES[table]
    alias = f"sq{index}"
    roll = rand.random()
    if roll < 0.3:
        inner = (f"select {key} a, min({nul}) b, count(*) c "
                 f"from {table} group by {key}")
    elif roll < 0.45:
        other = rand.choice(list(TABLES))
        okey, oval, onul = TABLES[other]
        inner = (f"select {key} a, {val} b, {nul} c from {table} "
                 f"union all select {okey} a, {oval} b, {onul} c "
                 f"from {other}")
    elif roll < 0.7:
        inner = (f"select {key} a, {val} b, {nul} c from {table} "
                 f"where {val} > {rand.randint(-4, 2)}")
    else:
        inner = f"select {key} a, {val} b, {nul} c from {table}"
    return (("a", "b", "c"), alias, f"({inner}) as {alias}")


def _generate_uses(rand: random.Random) -> list[tuple]:
    n_uses = rand.randint(1, 4)  # up to a depth-3 join chain
    uses = [_table_use(t, a) for t, a in rand.sample(ALIASES, n_uses)]
    if rand.random() < 0.25:
        # Swap one table use for a subquery FROM item.
        position = rand.randrange(n_uses)
        uses[position] = _subquery_use(rand, position)
    return uses


def _join_condition(rand: random.Random, left: tuple, right: tuple) -> str:
    """One equality edge between two FROM uses.  Occasionally joins on the
    NULL-bearing column, exercising the kernels' NULL-key filtering."""
    left_cols, left_alias, _ = left
    right_cols, right_alias, _ = right
    left_col = left_cols[0] if rand.random() < 0.75 else left_cols[2]
    right_col = right_cols[0] if rand.random() < 0.75 else right_cols[2]
    return f"{left_alias}.{left_col} = {right_alias}.{right_col}"


def _predicate(rand: random.Random, uses: list[tuple]) -> str:
    columns, alias, _ = rand.choice(uses)
    column = rand.choice(columns)
    if rand.random() < 0.15:
        negated = "not " if rand.random() < 0.5 else ""
        return f"{alias}.{column} is {negated}null"
    op = rand.choice([">", "<", "!=", "="])
    return f"{alias}.{column} {op} {rand.randint(-4, 4)}"


def _projection_item(rand: random.Random, uses: list[tuple],
                     position: int) -> str:
    columns, alias, _ = rand.choice(uses)
    column = rand.choice(columns)
    ref = f"{alias}.{column}"
    roll = rand.random()
    if roll < 0.2:
        return f"{ref} + {rand.randint(-3, 3)} c{position}"
    if roll < 0.3:
        return f"{ref} * -1 c{position}"
    if roll < 0.5:
        return f"{ref} c{position}"
    return ref


def generate_query(rand: random.Random) -> str:
    if rand.random() < 0.15:
        # UNION ALL: two projection cores of identical arity (every fuzz
        # column is int64, so the arms always concatenate cleanly).
        n_items = rand.randint(1, 3)
        return (f"{_generate_core(rand, forced_items=n_items)} union all "
                f"{_generate_core(rand, forced_items=n_items)}")
    return _generate_core(rand)


def _generate_core(rand: random.Random,
                   forced_items: Optional[int] = None) -> str:
    uses = _generate_uses(rand)
    n_uses = len(uses)
    explicit_joins = rand.random() < 0.5 and n_uses >= 2
    left_join_tail = rand.random() < 0.3 and n_uses >= 2

    conditions = [
        _join_condition(rand, uses[i], uses[i + 1])
        for i in range(n_uses - 1)
    ]
    predicates = [_predicate(rand, uses)
                  for _ in range(rand.randint(0, 2))]

    if explicit_joins:
        from_sql = uses[0][2]
        for i in range(1, n_uses):
            kind = ("left outer join"
                    if left_join_tail and i == n_uses - 1 else "join")
            from_sql += f" {kind} {uses[i][2]} on ({conditions[i - 1]})"
        where = predicates
    else:
        from_sql = ", ".join(use[2] for use in uses)
        where = conditions + predicates

    if forced_items is None and rand.random() < 0.45:
        # GROUP BY + aggregates over random argument columns.
        group_uses = uses[:1] if rand.random() < 0.6 else uses
        if explicit_joins and left_join_tail and rand.random() < 0.6:
            # Dedicated arm: group keys on the outer-padded final binding
            # — the fused outer-group path, where padded rows must form
            # their own NULL-key groups on every configuration.
            group_uses = uses[-1:]
        keys = []
        for _ in range(rand.randint(1, 2)):
            columns, alias, _ = rand.choice(group_uses)
            key = f"{alias}.{rand.choice(columns)}"
            if key not in keys:
                keys.append(key)
        items = list(keys) + ["count(*) c"]
        for position, fn in enumerate(
                rand.sample(["min", "max", "sum", "avg", "count"],
                            rand.randint(1, 3))):
            columns, alias, _ = rand.choice(uses)
            argument = f"{alias}.{rand.choice(columns)}"
            if fn == "count" and rand.random() < 0.4:
                items.append(f"count(distinct {argument}) d{position}")
            else:
                items.append(f"{fn}({argument}) f{position}")
        select_sql = ", ".join(items)
        tail = f" group by {', '.join(keys)}"
        distinct = ""
    else:
        n_items = forced_items if forced_items is not None \
            else rand.randint(1, 4)
        select_sql = ", ".join(
            _projection_item(rand, uses, position)
            for position in range(n_items)
        )
        tail = ""
        distinct = "distinct " if rand.random() < 0.4 else ""

    sql = f"select {distinct}{select_sql} from {from_sql}"
    if where:
        sql += f" where {' and '.join(where)}"
    return sql + tail


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


def assert_identical(sql: str, config: str, got, expected) -> None:
    __tracebackhide__ = True
    assert got.names == expected.names, (config, sql)
    assert got.display_names == expected.display_names, (config, sql)
    for name in expected.names:
        mine = got.column(name)
        theirs = expected.column(name)
        assert mine.sql_type == theirs.sql_type, (config, sql, name)
        mask_mine = mine.null_mask()
        mask_theirs = theirs.null_mask()
        assert np.array_equal(mask_mine, mask_theirs), (config, sql, name)
        valid = ~mask_theirs
        assert np.array_equal(mine.values[valid], theirs.values[valid]), \
            (config, sql, name)


def test_differential_fuzz(monkeypatch):
    import repro.sqlengine.executor as executor_module

    monkeypatch.setattr(executor_module, "PARALLEL_MIN_ROWS", 1)
    rand = random.Random(FUZZ_SEED)
    executed = 0
    engaged = {"chain": 0, "fused": 0, "fused_group": 0, "parallel": 0,
               "result_cache": 0, "left_chain": 0, "fused_outer": 0,
               "union_overlap": 0, "process_tasks": 0}
    shapes = {"union_all": 0, "subquery_from": 0, "outer_group": 0}
    while executed < FUZZ_ROUNDS:
        databases = {
            "reference": reference_db(),
            "planned": planned_db(),
            "parallel": parallel_db(),
            "process": process_db(),
        }
        for statement in table_statements(rand):
            for db in databases.values():
                db.execute(statement)
        batch_rounds = min(BATCH, FUZZ_ROUNDS - executed)
        for batch_position in range(batch_rounds):
            if batch_position == BATCH // 2:
                for statement in churn_statements(rand):
                    for db in databases.values():
                        db.execute(statement)
            sql = generate_query(rand)
            if " union all " in sql:
                shapes["union_all"] += 1
            if "(select" in sql:
                shapes["subquery_from"] += 1
            if "left outer join" in sql and " group by " in sql:
                shapes["outer_group"] += 1
            reference = databases["reference"].execute(sql).relation
            for config in ("planned", "parallel", "process"):
                got = databases[config].execute(sql).relation
                assert_identical(sql, config, got, reference)
                # Warm pass: cached template, physical plan, result cache.
                warm = databases[config].execute(sql).relation
                assert_identical(sql, f"{config}-warm", warm, reference)
            executed += 1
        stats = databases["planned"].stats
        engaged["chain"] += stats.join_chain_fusions
        engaged["left_chain"] += stats.left_chain_fusions
        engaged["fused"] += stats.fused_pipelines
        engaged["fused_group"] += stats.fused_group_pipelines
        engaged["fused_outer"] += stats.fused_outer_groups
        engaged["result_cache"] += stats.subquery_cache_hits
        engaged["parallel"] += databases["parallel"].stats.parallel_partitions
        engaged["union_overlap"] += \
            databases["parallel"].stats.union_arm_overlaps
        engaged["process_tasks"] += databases["process"].stats.process_tasks
        shm_names = databases["process"].pool.registry.created_names()
        for db in databases.values():
            db.close()
        # close() must have unlinked every block this batch exported.
        for name in shm_names:
            assert not os.path.exists(f"/dev/shm/{name}"), name
    assert executed == FUZZ_ROUNDS
    # The fuzz run must actually exercise the paths it claims to pin.
    assert engaged["chain"] > 0
    assert engaged["left_chain"] > 0
    assert engaged["fused"] > 0
    assert engaged["fused_group"] > 0
    assert engaged["fused_outer"] > 0
    assert engaged["result_cache"] > 0
    assert engaged["parallel"] > 0
    assert engaged["union_overlap"] > 0
    assert engaged["process_tasks"] > 0
    # ... and actually generate the statement shapes it claims to cover.
    assert shapes["union_all"] > 0
    assert shapes["subquery_from"] > 0
    assert shapes["outer_group"] > 0


def test_fuzz_generator_is_deterministic():
    """Same seed, same statements — CI reruns must chase the same inputs."""
    first = random.Random(1234)
    second = random.Random(1234)
    for _ in range(25):
        assert generate_query(first) == generate_query(second)
