"""Tests for the baseline algorithms: Hash-to-Min, Two-Phase, Cracker,
BFS and graph squaring (Sections II and IV of the paper)."""

import pytest
from hypothesis import given, settings

from repro import connected_components
from repro.core import (
    BreadthFirstSearchCC,
    Cracker,
    GraphSquaringCC,
    HashToMin,
    TwoPhase,
)
from repro.graphs import (
    EdgeList,
    complete_graph,
    cycle_graph,
    path_graph,
    path_union,
    star_graph,
)
from repro.sqlengine import Database, SpaceBudgetExceeded

from .conftest import edge_lists

BASELINES = ["hm", "tp", "cr", "bfs", "squaring"]


@pytest.mark.parametrize("algorithm", BASELINES)
@given(edges=edge_lists(max_vertices=16, max_edges=24))
@settings(max_examples=10)
def test_baselines_match_ground_truth(algorithm, edges):
    connected_components(edges, algorithm, seed=0, validate=True)


@pytest.mark.parametrize("algorithm", BASELINES)
def test_baselines_handle_loop_edges(algorithm):
    edges = EdgeList.from_pairs([(1, 1), (2, 3), (9, 9)])
    result = connected_components(edges, algorithm, seed=0, validate=True)
    assert result.n_components == 3


@pytest.mark.parametrize("algorithm", BASELINES)
def test_baselines_on_structured_graphs(algorithm):
    for edges, expected in [
        (path_graph(30), 1),
        (cycle_graph(12), 1),
        (star_graph(10), 1),
        (complete_graph(8), 1),
        (path_union(3, 4), 3),
    ]:
        result = connected_components(edges, algorithm, seed=1, validate=True)
        assert result.n_components == expected


def test_bfs_takes_n_minus_one_rounds_on_path():
    """Section IV: BFS needs n - 1 steps on the sequential path."""
    n = 20
    result = connected_components(path_graph(n), "bfs", seed=0)
    # Convergence is detected one round after the last change.
    assert n - 1 <= result.run.rounds <= n


def test_bfs_round_limit_enforced():
    algo = BreadthFirstSearchCC(max_rounds=3)
    with pytest.raises(RuntimeError, match="converge"):
        connected_components(path_graph(30), algo, seed=0)


def test_bfs_is_fast_on_star():
    result = connected_components(star_graph(50), "bfs", seed=0)
    assert result.run.rounds <= 2


def test_squaring_reaches_complete_graph():
    """Section IV: G^2 iteration ends at |V|^2 edges per component."""
    n = 16
    db = Database()
    result = connected_components(path_graph(n), "squaring", seed=0, db=db)
    counts = result.run.extra["edge_counts"]
    # Doubled edge count of the complete graph: n * (n-1).
    assert counts[-1] == n * (n - 1)
    assert result.run.rounds <= 6  # log2(diameter) + slack


def test_squaring_blowup_is_quadratic():
    """The quadratic intermediate data that makes squaring unusable."""
    n = 40
    result = connected_components(path_graph(n), "squaring", seed=0)
    counts = result.run.extra["edge_counts"]
    assert max(counts) >= (n * (n - 1)) // 2


def test_squaring_respects_space_budget():
    edges = path_graph(200)
    with pytest.raises(SpaceBudgetExceeded):
        connected_components(
            edges, "squaring", seed=0,
            space_budget_bytes=edges.byte_size() * 20,
        )


def test_hash_to_min_blows_space_budget_on_path():
    """Table III: Hash-to-Min cannot handle the path datasets."""
    edges = path_graph(4000)
    with pytest.raises(SpaceBudgetExceeded):
        connected_components(
            edges, "hm", seed=0, space_budget_bytes=edges.byte_size() * 8
        )


def test_randomised_contraction_survives_the_same_budget():
    edges = path_graph(4000)
    result = connected_components(
        edges, "rc", seed=0, space_budget_bytes=edges.byte_size() * 8
    )
    assert result.n_components == 1


def test_hash_to_min_rounds_logarithmic_on_random_graph():
    import numpy as np

    from repro.graphs import gnm_random_graph

    edges = gnm_random_graph(400, 600, np.random.default_rng(0))
    result = connected_components(edges, "hm", seed=0)
    assert result.run.rounds <= 14


def test_two_phase_takes_more_rounds_on_pathunion():
    """PathUnion10's role: Two-Phase's log^2 worst case shows up as a
    higher round count than Randomised Contraction needs."""
    edges = path_union(6, 8)
    tp = connected_components(edges, "tp", seed=0, validate=True)
    rc = connected_components(edges, "rc", seed=0, validate=True)
    assert tp.run.rounds >= rc.run.rounds


def test_cracker_propagation_depth_reported():
    result = connected_components(path_graph(100), "cr", seed=0)
    assert result.run.extra["propagation_depth"] >= 1


def test_cracker_on_two_vertex_graph():
    result = connected_components(EdgeList.from_pairs([(1, 2)]), "cr", seed=0)
    assert result.n_components == 1


@pytest.mark.parametrize("algorithm", ["hm", "tp", "cr"])
def test_baseline_temp_tables_cleaned(algorithm):
    db = Database()
    connected_components(path_graph(40), algorithm, seed=0, db=db)
    leftovers = [n for n in db.table_names()
                 if n.startswith("cc") and n not in ("ccinput", "ccresult")]
    assert leftovers == []


def test_dnf_leaves_database_usable():
    db = Database(space_budget_bytes=200_000)
    edges = path_graph(4000)
    from repro.graphs import load_edges_into

    load_edges_into(db, "g", edges)
    algo = HashToMin()
    with pytest.raises(SpaceBudgetExceeded):
        algo.run(db, "g", seed=0)
    # After the failure the temp tables are gone and the db still works.
    leftovers = [n for n in db.table_names() if n.startswith("cc")]
    assert leftovers == []
    assert db.execute("select count(*) from g").scalar() == edges.n_edges
