"""Tests for the Bitcoin, social and street-network dataset generators."""

import numpy as np

from repro.core.unionfind import count_components
from repro.graphs import (
    bitcoin_addresses_graph,
    bitcoin_full_graph,
    friendster_like_graph,
    generate_blockchain,
    streets_like_graph,
)


def test_blockchain_arrays_consistent():
    chain = generate_blockchain(500, np.random.default_rng(0))
    assert chain.input_tx.shape == chain.input_address.shape
    assert chain.output_tx.shape == chain.output_id.shape
    assert chain.output_spent_by.shape == chain.output_id.shape
    assert chain.input_tx.max() < chain.n_transactions
    assert chain.input_address.max() < chain.n_addresses


def test_address_graph_is_bipartite():
    chain = generate_blockchain(500, np.random.default_rng(1))
    graph = chain.address_graph()
    # Sources are addresses (< n_addresses), targets are offset tx ids.
    assert graph.src.max() < chain.n_addresses
    assert graph.dst.min() >= chain.n_addresses


def test_address_graph_has_many_small_components():
    """Role of 'Bitcoin addresses' in Table II: component count is a large
    fraction of the vertex count (216.9M of 878M in the paper)."""
    edges = bitcoin_addresses_graph(4000, seed=2)
    components = count_components(edges)
    assert components > edges.n_vertices * 0.02
    assert components > 50


def test_full_graph_has_few_components():
    """Role of 'Bitcoin full': components are markets — few and large."""
    edges = bitcoin_full_graph(4000, seed=2)
    components = count_components(edges)
    assert components < edges.n_vertices * 0.02


def test_full_graph_is_bipartite_tx_output():
    chain = generate_blockchain(300, np.random.default_rng(3))
    graph = chain.full_graph()
    n_outputs = chain.output_id.shape[0]
    # One side below n_outputs (outputs), the other at/above (transactions).
    sides = np.concatenate([graph.src, graph.dst])
    assert (sides < n_outputs).any() and (sides >= n_outputs).any()


def test_unspent_outputs_do_not_link():
    chain = generate_blockchain(300, np.random.default_rng(4))
    graph = chain.full_graph()
    spent = int((chain.output_spent_by >= 0).sum())
    created = int(chain.output_id.shape[0])
    assert graph.n_edges == created + spent


def test_friendster_like_is_single_component():
    edges = friendster_like_graph(1500, seed=6)
    assert count_components(edges) == 1


def test_friendster_like_is_dense_and_heavy_tailed():
    edges = friendster_like_graph(2000, avg_degree=20, seed=6)
    average = 2 * edges.n_edges / edges.n_vertices
    assert average > 6
    histogram = edges.degree_histogram()
    assert max(histogram) > 3 * average


def test_streets_like_edge_vertex_ratio():
    """Street networks: |E| ~ |V| (19M/20M in the original dataset)."""
    edges = streets_like_graph(60, 60, seed=1)
    ratio = edges.n_edges / edges.n_vertices
    assert 0.8 < ratio < 1.4


def test_streets_like_low_degree():
    edges = streets_like_graph(50, 50, seed=1)
    histogram = edges.degree_histogram()
    assert max(histogram) <= 8  # lattice + diagonals stay low-degree


def test_generators_are_deterministic_per_seed():
    a = bitcoin_addresses_graph(300, seed=9)
    b = bitcoin_addresses_graph(300, seed=9)
    assert a == b
    c = bitcoin_addresses_graph(300, seed=10)
    assert a != c
