"""Tests for the Blowfish cipher — the encryption randomisation method."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ff.blowfish import Blowfish, _initial_boxes

uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_initial_boxes_are_pi_derived():
    p, s = _initial_boxes()
    assert p[0] == 0x243F6A88
    assert p[17] == 0x8979FB1B
    assert s[0][0] == 0xD1310BA6
    assert s[3][255] == 0x3AC372E6


def test_key_schedule_changes_boxes():
    cipher = Blowfish(b"k")
    p, _ = _initial_boxes()
    assert cipher._p != p


@given(uint64s)
def test_decrypt_inverts_encrypt(block):
    cipher = Blowfish(b"round-key-000001")
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_vector_matches_scalar():
    cipher = Blowfish(b"vector-test")
    blocks = np.array([0, 1, 2, 12345, (1 << 64) - 1], dtype=np.uint64)
    encrypted = cipher.encrypt_vector(blocks)
    for i, block in enumerate(blocks.tolist()):
        assert int(encrypted[i]) == cipher.encrypt_block(block)


def test_bijective_on_sample():
    cipher = Blowfish(b"bijection")
    blocks = np.arange(20_000, dtype=np.uint64)
    out = cipher.encrypt_vector(blocks)
    assert len(set(out.tolist())) == 20_000


def test_different_keys_give_different_permutations():
    a = Blowfish((1).to_bytes(16, "big"))
    b = Blowfish((2).to_bytes(16, "big"))
    blocks = np.arange(64, dtype=np.uint64)
    assert not np.array_equal(a.encrypt_vector(blocks), b.encrypt_vector(blocks))


def test_from_round_key_is_deterministic():
    a = Blowfish.from_round_key(0xDEADBEEF)
    b = Blowfish.from_round_key(0xDEADBEEF)
    assert a.encrypt_block(7) == b.encrypt_block(7)


def test_avalanche_flipping_one_plaintext_bit():
    cipher = Blowfish(b"avalanche")
    a = cipher.encrypt_block(0)
    b = cipher.encrypt_block(1)
    differing = bin(a ^ b).count("1")
    # A healthy 64-bit block cipher flips roughly half the bits.
    assert differing > 16


def test_key_length_validation():
    with pytest.raises(ValueError):
        Blowfish(b"")
    with pytest.raises(ValueError):
        Blowfish(b"x" * 57)
    Blowfish(b"x")          # 1 byte ok
    Blowfish(b"x" * 56)     # 56 bytes ok


def test_output_covers_full_64_bit_range():
    cipher = Blowfish(b"range")
    out = cipher.encrypt_vector(np.arange(4096, dtype=np.uint64))
    assert int(out.max()) > 1 << 62
