"""Tests for the image and video pixel-graph converters (paper Sec VII-A)."""

import numpy as np

from repro.core.unionfind import count_components
from repro.graphs import (
    image_to_graph,
    synthetic_flight,
    synthetic_starfield,
    video_to_graph,
)


def uniform_image(height, width, value):
    return np.full((height, width, 3), value, dtype=np.uint8)


def test_uniform_image_is_fully_connected():
    edges = image_to_graph(uniform_image(4, 5, 100), randomise_ids=False)
    # 4-connectivity grid: H*(W-1) + (H-1)*W edges.
    assert edges.n_edges == 4 * 4 + 3 * 5
    assert count_components(edges) == 1


def test_threshold_splits_regions():
    image = uniform_image(4, 6, 10)
    image[:, 3:, :] = 200  # right half very different
    edges = image_to_graph(image, threshold=50, randomise_ids=False)
    assert count_components(edges) == 2


def test_exact_edge_set_on_tiny_image():
    # 1x3 image: [10, 40, 200]; distance(10,40) = sqrt(3*30^2) ~ 52 > 50,
    # so with threshold 52 the first pair connects, the second does not.
    image = np.zeros((1, 3, 3), dtype=np.uint8)
    image[0, 0] = 10
    image[0, 1] = 40
    image[0, 2] = 200
    edges = image_to_graph(image, threshold=52, randomise_ids=False)
    assert set(zip(edges.src.tolist(), edges.dst.tolist())) == {(0, 1)}


def test_colour_distance_is_euclidean_not_per_channel():
    # Per-channel deltas of 35 each exceed threshold 50 jointly
    # (sqrt(3)*35 ~ 60.6) but not individually.
    image = np.zeros((1, 2, 3), dtype=np.uint8)
    image[0, 1] = 35
    assert image_to_graph(image, threshold=50, randomise_ids=False).n_edges == 0
    assert image_to_graph(image, threshold=61, randomise_ids=False).n_edges == 1


def test_image_vertex_ids_randomised_by_default():
    image = uniform_image(6, 6, 50)
    edges = image_to_graph(image, rng=np.random.default_rng(1))
    assert edges.max_vertex_id() > 36  # beyond the raw pixel index range


def test_starfield_properties():
    rng = np.random.default_rng(0)
    image = synthetic_starfield(48, 64, rng)
    assert image.shape == (48, 64, 3)
    assert image.dtype == np.uint8
    # Stars are bright; background is dark: both populations present.
    assert (image.max(axis=2) > 100).any()
    assert (image.max(axis=2) < 30).any()


def test_starfield_graph_has_giant_background_and_small_components():
    rng = np.random.default_rng(3)
    image = synthetic_starfield(40, 60, rng)
    edges = image_to_graph(image, threshold=50, rng=rng)
    from repro.analysis import component_sizes

    sizes = component_sizes(edges)
    assert sizes.shape[0] > 3
    assert sizes[0] > 5 * sizes[1]  # a dominant background component


def test_uniform_video_is_fully_connected():
    video = np.full((3, 3, 3, 3), 77, dtype=np.uint8)
    edges = video_to_graph(video, randomise_ids=False)
    assert count_components(edges) == 1
    # 6-connectivity counts: per-frame grid edges * frames + temporal edges.
    per_frame = 3 * 2 + 2 * 3
    temporal = 2 * 9
    assert edges.n_edges == 3 * per_frame + temporal


def test_video_temporal_edges_obey_threshold():
    video = np.zeros((2, 1, 1, 3), dtype=np.uint8)
    video[1] = 100
    assert video_to_graph(video, threshold=20, randomise_ids=False).n_edges == 0
    assert video_to_graph(video, threshold=200, randomise_ids=False).n_edges == 1


def test_synthetic_flight_shape_and_motion():
    rng = np.random.default_rng(5)
    video = synthetic_flight(4, 24, 32, rng)
    assert video.shape == (4, 24, 32, 3)
    # Frames differ (stars drift).
    assert not np.array_equal(video[0], video[3])


def test_flight_graph_is_mostly_one_background_component():
    rng = np.random.default_rng(5)
    video = synthetic_flight(3, 20, 24, rng)
    edges = video_to_graph(video, threshold=20, rng=rng)
    from repro.analysis import component_sizes

    sizes = component_sizes(edges)
    assert sizes[0] > edges.n_vertices * 0.5
