"""Empty/degenerate-input audit across every fast path.

The termination condition of every reproduced algorithm ("repeat until the
edge table is empty") makes the final round's queries run over zero rows,
and randomised inputs can produce all-NULL key columns.  Every kernel and
every fused pipeline must survive both without crashing and, where a
reference exists, without diverging from it.
"""

import numpy as np
import pytest

from repro.sqlengine import Database
from repro.sqlengine.mpp import SegmentPool
from repro.sqlengine.operators import (
    build_key_index,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
    merge_join_indices,
)
from repro.sqlengine.parallel import (
    AggregateSpec,
    group_aggregate,
    parallel_group_aggregate,
    parallel_join_indices,
    parallel_left_probe_indexed,
    parallel_probe_indexed,
)
from repro.sqlengine.types import Column

POOL = SegmentPool(4, max_workers=4)

EMPTY = Column(np.empty(0, dtype=np.int64), "int64")
FILLED = Column(np.array([1, 2, 3], dtype=np.int64), "int64")
ALL_NULL = Column(np.array([5, 6], dtype=np.int64), "int64",
                  np.array([True, True]))


def test_key_index_over_empty_and_all_null_columns(db):
    index = build_key_index(np.empty(0, dtype=np.int64))
    assert index.n_rows == 0 and index.is_unique and index.is_sorted
    assert index.min_value is None and index.max_value is None
    assert index.order.shape[0] == 0
    db.execute("create table z (v int64, w int64)")
    assert db.table("z").ensure_index("v") is not None
    db.execute("create table nn (v int64)")
    db.execute("insert into nn values (null), (null)")
    assert db.table("nn").ensure_index("v") is None  # NULL-bearing


@pytest.mark.parametrize("left,right", [
    (EMPTY, FILLED), (FILLED, EMPTY), (EMPTY, EMPTY),
    (ALL_NULL, FILLED), (FILLED, ALL_NULL), (ALL_NULL, ALL_NULL),
])
def test_join_kernels_agree_on_degenerate_inputs(left, right):
    expected = merge_join_indices([left], [right])
    index = build_key_index(right.values) if right.mask is None else None
    for got in (
        join_indices([left], [right]),
        join_indices([left], [right], right_index=index),
        parallel_join_indices([left], [right], POOL),
    ):
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])
    if index is not None:
        got = parallel_probe_indexed([left], [right], index, POOL)
        assert np.array_equal(got[0], expected[0])
        assert np.array_equal(got[1], expected[1])


def test_left_join_kernels_on_degenerate_inputs():
    expected = left_join_indices([FILLED], [EMPTY])
    index = build_key_index(EMPTY.values)
    got = parallel_left_probe_indexed([FILLED], [EMPTY], index, POOL)
    assert np.array_equal(got[0], expected[0])
    assert np.array_equal(got[1], expected[1])


def test_distinct_and_group_kernels_on_degenerate_inputs():
    assert distinct_rows([EMPTY]).shape[0] == 0
    assert distinct_rows([EMPTY, EMPTY]).shape[0] == 0
    assert distinct_rows([ALL_NULL]).shape[0] == 1  # NULLs compare equal
    order, starts = group_rows([EMPTY])
    assert order.shape[0] == 0 and starts.shape[0] == 0
    keys, results = parallel_group_aggregate(
        np.empty(0, dtype=np.int64), [AggregateSpec("count*")], POOL
    )
    ref_keys, ref_results = group_aggregate(
        np.empty(0, dtype=np.int64), [AggregateSpec("count*")]
    )
    assert np.array_equal(keys, ref_keys)
    assert np.array_equal(results[0][0], ref_results[0][0])


def test_sql_pipelines_over_empty_and_all_null_tables(db):
    db.execute("create table z (v int64, w int64)")  # zero rows
    db.execute("create table nn (v int64, w int64)")
    db.execute("insert into nn values (null, 1), (null, 2)")
    db.execute("create table f (v int64, w int64)")
    db.execute("insert into f values (1, 10), (2, 20)")
    assert db.execute("select f.v, z.w from f, z where f.v = z.v").rows() == []
    assert db.execute("select f.v from f, nn where f.v = nn.v").rows() == []
    assert db.execute(
        "select distinct f.v, z.w from f, z where f.v = z.v").rows() == []
    assert db.execute(
        "select f.v, count(*) c from f, z where f.v = z.v group by f.v"
    ).rows() == []
    assert db.execute("select v, count(*) c from z group by v").rows() == []
    assert db.execute("select distinct v from nn").rows() == [(None,)]
    assert db.execute("select count(*) c, min(v) lo, sum(w) s from z") \
        .rows() == [(0, None, None)]
    assert db.execute(
        "select f.v, z.w from f left outer join z on (f.v = z.v)"
    ).rows() == [(1, None), (2, None)]
    assert db.execute(
        "select z.v, f.w from z left outer join f on (z.v = f.v)"
    ).rows() == []
    assert db.execute("insert into f select v, w from z").rowcount == 0
