"""Tests for the analysis utilities (Figure 5, Section VII-B metrics)."""

import numpy as np
import pytest

from repro.analysis import (
    binned_histogram,
    bytes_to_human,
    component_sizes,
    fit_scale_free,
    quasi_linearity_exponent,
    relative_stdev,
    render_figure5,
    size_histogram,
)
from repro.graphs import EdgeList, path_union


def power_law_graph(rng, alpha=2.0, scale=400):
    """A disjoint union of paths whose size distribution is a power law:
    the number of components of size s is ~ scale * s^-alpha."""
    pairs = []
    offset = 0
    for size in (2, 3, 4, 6, 8, 12, 16, 24, 32):
        count = max(1, int(scale * size ** -alpha))
        for _ in range(count):
            ids = np.arange(offset, offset + size)
            pairs.extend(zip(ids[:-1], ids[1:]))
            offset += size
    return EdgeList.from_pairs(pairs)


def test_component_sizes_descending():
    edges = path_union(3, 4)  # sizes 4, 8, 16
    assert component_sizes(edges).tolist() == [16, 8, 4]


def test_size_histogram():
    edges = EdgeList.from_pairs([(1, 2), (3, 4), (5, 6), (7, 8), (10, 11),
                                 (11, 12)])
    values, counts = size_histogram(edges)
    assert values.tolist() == [2, 3]
    assert counts.tolist() == [4, 1]


def test_empty_graph_histogram():
    values, counts = size_histogram(EdgeList.empty())
    assert values.shape[0] == 0 and counts.shape[0] == 0


def test_scale_free_fit_detects_power_law():
    rng = np.random.default_rng(0)
    edges = power_law_graph(rng)
    fit = fit_scale_free(edges)
    assert fit.slope < -0.4
    assert fit.looks_scale_free


def test_scale_free_fit_excludes_giant():
    rng = np.random.default_rng(1)
    edges = power_law_graph(rng)
    # Attach one giant component.
    giant = EdgeList.from_pairs(
        [(i, i + 1) for i in range(10_000, 12_000)]
    )
    combined = edges.concat(giant)
    fit = fit_scale_free(combined, drop_giant=True)
    assert fit.giant_component_size == 2001
    assert fit.looks_scale_free


def test_binned_histogram_buckets_by_powers_of_two():
    edges = path_union(4, 4)  # sizes 4, 8, 16, 32
    buckets = dict(binned_histogram(edges))
    assert buckets == {4: 1, 8: 1, 16: 1, 32: 1}


def test_render_figure5_mentions_datasets_and_slope():
    rng = np.random.default_rng(2)
    text = render_figure5({"synthetic": power_law_graph(rng)})
    assert "synthetic" in text
    assert "slope" in text
    assert "#" in text


def test_relative_stdev():
    assert relative_stdev([10.0, 10.0, 10.0]) == 0.0
    assert relative_stdev([1.0]) == 0.0
    value = relative_stdev([9.0, 10.0, 11.0])
    assert 0.05 < value < 0.15


def test_relative_stdev_paper_comparison():
    """Section VII-B: RC's ~4% relative stdev is 'not very high'."""
    randomised = [100, 104, 96]
    deterministic = [100, 102, 98]
    assert relative_stdev(randomised) < 0.10
    assert relative_stdev(randomised) > relative_stdev(deterministic)


def test_quasi_linearity_exponent_linear_data():
    sizes = [100, 200, 400, 800]
    times = [1.0, 2.1, 3.9, 8.2]
    alpha = quasi_linearity_exponent(sizes, times)
    assert 0.9 < alpha < 1.1


def test_quasi_linearity_exponent_quadratic_data():
    sizes = [10, 20, 40]
    times = [1.0, 4.0, 16.0]
    assert quasi_linearity_exponent(sizes, times) == pytest.approx(2.0)


def test_quasi_linearity_exponent_validation():
    with pytest.raises(ValueError):
        quasi_linearity_exponent([1], [1])
    with pytest.raises(ValueError):
        quasi_linearity_exponent([5, 5], [1, 2])


def test_bytes_to_human():
    assert bytes_to_human(999) == "999 B"
    assert bytes_to_human(1200) == "1.2 kB"
    assert bytes_to_human(3_400_000) == "3.4 MB"
    assert bytes_to_human(5_600_000_000) == "5.6 GB"
