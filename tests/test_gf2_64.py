"""Tests for GF(2^64) arithmetic — the paper's axplusb substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ff.gf2_64 import (
    IRREDUCIBLE_POLY,
    MASK64,
    Gf2AffineMap,
    gf2_axplusb,
    gf2_inv,
    gf2_mul,
    gf2_pow,
    gf2_xtime,
    to_signed,
    to_unsigned,
)

uint64s = st.integers(min_value=0, max_value=MASK64)
nonzero_uint64s = st.integers(min_value=1, max_value=MASK64)


def c_reference_axplusb(a: int, x: int, b: int) -> int:
    """Literal transcription of the paper's C UDF (Figure 7)."""
    r = 0
    a &= MASK64
    x &= MASK64
    while x:
        if x & 1:
            r ^= a
        x = (x >> 1) & 0x7FFFFFFFFFFFFFFF
        if a & (1 << 63):
            a = ((a << 1) ^ 0x1B) & MASK64
        else:
            a = (a << 1) & MASK64
    return (r ^ b) & MASK64


def test_irreducible_polynomial_matches_paper():
    # x^64 + x^4 + x^3 + x + 1 has low word 0b11011 = 0x1b.
    assert IRREDUCIBLE_POLY == 0x1B


@given(uint64s, uint64s, uint64s)
def test_matches_transcribed_c_reference(a, x, b):
    assert gf2_axplusb(a, x, b) == c_reference_axplusb(a, x, b)


def test_multiplicative_identity():
    for x in (0, 1, 2, 0xDEADBEEF, MASK64):
        assert gf2_mul(1, x) == x
        assert gf2_mul(x, 1) == x


def test_zero_annihilates():
    assert gf2_mul(0, 12345) == 0
    assert gf2_mul(12345, 0) == 0


@given(uint64s, uint64s)
def test_multiplication_commutes(a, b):
    assert gf2_mul(a, b) == gf2_mul(b, a)


@given(uint64s, uint64s, uint64s)
def test_multiplication_associates(a, b, c):
    assert gf2_mul(gf2_mul(a, b), c) == gf2_mul(a, gf2_mul(b, c))


@given(uint64s, uint64s, uint64s)
def test_distributes_over_xor(a, b, c):
    assert gf2_mul(a, b ^ c) == gf2_mul(a, b) ^ gf2_mul(a, c)


def test_xtime_is_multiplication_by_two():
    for a in (1, 5, 1 << 63, 0xFFFFFFFFFFFFFFFF):
        assert gf2_xtime(a) == gf2_mul(2, a)


@given(nonzero_uint64s)
def test_inverse_is_two_sided(a):
    inv = gf2_inv(a)
    assert gf2_mul(a, inv) == 1
    assert gf2_mul(inv, a) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf2_inv(0)


def test_pow_small_cases():
    assert gf2_pow(7, 0) == 1
    assert gf2_pow(7, 1) == 7
    assert gf2_pow(7, 2) == gf2_mul(7, 7)
    assert gf2_pow(7, 3) == gf2_mul(7, gf2_mul(7, 7))


def test_pow_rejects_negative_exponent():
    with pytest.raises(ValueError):
        gf2_pow(3, -1)


def test_field_order():
    # a^(2^64 - 1) == 1 for any non-zero a (Lagrange).
    for a in (2, 3, 0x123456789ABCDEF):
        assert gf2_pow(a, (1 << 64) - 1) == 1


@given(nonzero_uint64s, uint64s)
def test_affine_map_vector_matches_scalar(a, b):
    mapping = Gf2AffineMap(a, b)
    xs = np.array([0, 1, 2, 3, 1 << 32, MASK64], dtype=np.uint64)
    vector = mapping.apply(xs)
    for i, x in enumerate(xs.tolist()):
        assert int(vector[i]) == mapping.apply_scalar(x)


@given(nonzero_uint64s, uint64s)
def test_affine_map_inverse_roundtrip(a, b):
    mapping = Gf2AffineMap(a, b)
    xs = np.arange(64, dtype=np.uint64) * np.uint64(0x123456789)
    assert np.array_equal(mapping.inverse().apply(mapping.apply(xs)), xs)


def test_affine_map_is_injective_on_sample():
    mapping = Gf2AffineMap(0xABCDEF0123456789, 42)
    xs = np.arange(10_000, dtype=np.uint64)
    assert len(set(mapping.apply(xs).tolist())) == 10_000


def test_affine_map_rejects_zero_a():
    with pytest.raises(ValueError):
        Gf2AffineMap(0, 1)


def test_affine_map_accepts_int64_input():
    mapping = Gf2AffineMap(3, 7)
    signed = np.array([-1, -2, 5], dtype=np.int64)
    out = mapping.apply(signed)
    assert int(out[2]) == mapping.apply_scalar(5)
    assert int(out[0]) == mapping.apply_scalar(MASK64)


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_signed_unsigned_roundtrip(x):
    assert to_signed(to_unsigned(x)) == x


@given(uint64s)
def test_unsigned_signed_roundtrip(x):
    assert to_unsigned(to_signed(x)) == x
