"""MPP simulation and statistics accounting tests — Tables IV/V substrate."""

import numpy as np
import pytest

from repro.sqlengine import Column, Database, SpaceBudgetExceeded
from repro.sqlengine.mpp import Cluster, hash64


def load_big(db, name, n=20_000, distributed_by="v"):
    db.load_table(
        name,
        {"v": np.arange(n, dtype=np.int64), "w": np.arange(n, dtype=np.int64) + 1},
        distributed_by=distributed_by,
    )


def test_hash64_is_deterministic_and_mixing():
    values = np.arange(1000, dtype=np.int64)
    h1 = hash64(values)
    h2 = hash64(values)
    assert np.array_equal(h1, h2)
    # Consecutive inputs should land all over the 64-bit space.
    assert len(set((h1 % np.uint64(16)).tolist())) == 16


def test_segment_assignment_is_balanced():
    cluster = Cluster(n_segments=8)
    column = Column.from_values(np.arange(80_000, dtype=np.int64))
    skew = cluster.skew(column)
    assert skew < 1.05


def test_skew_of_constant_column_is_maximal():
    cluster = Cluster(n_segments=4)
    column = Column.from_values(np.zeros(1000, dtype=np.int64))
    assert cluster.skew(column) == pytest.approx(4.0)


def test_single_segment_cluster_never_moves_data():
    cluster = Cluster(n_segments=1)
    plan = cluster.plan_motion(10_000, 10_000, colocated=False)
    assert plan.kind == "colocated" and plan.moved_bytes == 0


def test_plan_motion_rules():
    cluster = Cluster(n_segments=4, broadcast_row_limit=100)
    assert cluster.plan_motion(800, 50, colocated=False).kind == "broadcast"
    assert cluster.plan_motion(800, 50, colocated=False).moved_bytes == 3200
    assert cluster.plan_motion(9999, 5000, colocated=False).kind == "redistribute"
    assert cluster.plan_motion(9999, 5000, colocated=True).kind == "colocated"


def test_colocated_join_charges_no_motion():
    db = Database(n_segments=4)
    load_big(db, "a", distributed_by="v")
    load_big(db, "b", distributed_by="v")
    before = db.stats.motion_bytes
    db.execute("select a.w from a, b where a.v = b.v")
    assert db.stats.motion_bytes == before


def test_mismatched_join_charges_motion():
    db = Database(n_segments=4)
    load_big(db, "a", distributed_by="v")
    load_big(db, "b", distributed_by="w")  # joined on v -> must move
    before = db.stats.motion_bytes
    db.execute("select a.w from a, b where a.v = b.v")
    assert db.stats.motion_bytes > before


def test_small_table_broadcasts():
    db = Database(n_segments=4, broadcast_row_limit=4096)
    load_big(db, "a", distributed_by="v")
    db.load_table("tiny", {"v": np.arange(10, dtype=np.int64),
                           "x": np.arange(10, dtype=np.int64)},
                  distributed_by="x")
    db.execute("select a.w from a, tiny where a.v = tiny.v")
    assert db.stats.broadcast_bytes > 0


def test_group_by_on_distribution_key_is_colocated():
    db = Database(n_segments=4)
    load_big(db, "a", distributed_by="v")
    before = db.stats.motion_bytes
    db.execute("select v, count(*) from a group by v")
    assert db.stats.motion_bytes == before


def test_group_by_on_other_key_moves_data():
    db = Database(n_segments=4)
    load_big(db, "a", distributed_by="v")
    before = db.stats.motion_bytes
    db.execute("select w, count(*) from a group by w")
    assert db.stats.motion_bytes > before


def test_create_distributed_by_other_column_redistributes():
    db = Database(n_segments=4)
    load_big(db, "a", distributed_by="v")
    before = db.stats.motion_bytes
    db.execute("create table b as select v, w from a distributed by (w)")
    assert db.stats.motion_bytes > before


def test_bytes_written_accumulates_and_live_tracks_drops():
    db = Database()
    load_big(db, "a", n=1000)
    created = db.stats.bytes_written
    assert created == db.stats.live_bytes > 0
    db.execute("create table b as select v, w from a")
    assert db.stats.bytes_written > created
    live_before_drop = db.stats.live_bytes
    db.execute("drop table b")
    assert db.stats.live_bytes < live_before_drop
    # Written never decreases on drops (Table V semantics).
    assert db.stats.bytes_written > created


def test_peak_live_bytes_tracks_high_water_mark():
    db = Database()
    load_big(db, "a", n=1000)
    db.execute("create table b as select v, w from a")
    peak = db.stats.peak_live_bytes
    db.execute("drop table b")
    assert db.stats.peak_live_bytes == peak
    assert db.stats.live_bytes < peak


def test_reset_peak():
    db = Database()
    load_big(db, "a", n=1000)
    db.execute("create table b as select v, w from a")
    db.execute("drop table b")
    db.stats.reset_peak()
    assert db.stats.peak_live_bytes == db.stats.live_bytes


def test_space_budget_enforced():
    db = Database(space_budget_bytes=10_000)
    with pytest.raises(SpaceBudgetExceeded):
        load_big(db, "a", n=5000)


def test_space_budget_allows_within_limit():
    db = Database(space_budget_bytes=1_000_000)
    load_big(db, "a", n=1000)


def test_query_log_records_statements():
    db = Database()
    load_big(db, "a", n=100)
    db.execute("select count(*) from a", label="my-count")
    last = db.stats.log[-1]
    assert last.label == "my-count"
    assert last.rows == 1
    assert last.elapsed_seconds >= 0


def test_query_counter_increments():
    db = Database()
    db.execute("create table t (a int)")
    before = db.stats.queries
    db.execute("insert into t values (1)")
    db.execute("select a from t")
    assert db.stats.queries == before + 2


def test_snapshot_delta():
    db = Database()
    load_big(db, "a", n=500)
    before = db.stats.snapshot()
    db.execute("create table b as select v, w from a")
    delta = db.stats.snapshot().delta(before)
    assert delta.queries == 1
    assert delta.bytes_written == db.table("b").byte_size()


def test_database_close_is_idempotent_and_execute_after_close_works():
    """Pins the ``close()`` contract: double-close is a no-op, and the pool
    genuinely re-creates its worker threads on the next parallel kernel."""
    import repro.sqlengine.executor as executor_module
    from repro.sqlengine.mpp import SegmentPool

    db = Database(n_segments=4, parallel=True, use_index_cache=False)
    rng = np.random.default_rng(1)
    n = 3000
    db.load_table("e", {"v1": rng.integers(0, 100, n),
                        "v2": rng.integers(0, 100, n)})
    db.load_table("r", {"v": np.arange(100, dtype=np.int64),
                        "rep": rng.integers(0, 100, 100)})
    query = "select e.v1, r.rep from e, r where e.v1 = r.v"
    original = executor_module.PARALLEL_MIN_ROWS
    executor_module.PARALLEL_MIN_ROWS = 1
    try:
        expected = sorted(db.execute(query).rows())
        assert db.pool._pool is not None  # workers were spawned
        db.close()
        assert db.pool._pool is None
        db.close()  # double-close: no error, still released
        assert db.pool._pool is None
        # Execute after close: the parallel kernel must engage again ...
        partitions_before = db.stats.parallel_partitions
        assert sorted(db.execute(query).rows()) == expected
        assert db.stats.parallel_partitions > partitions_before
        # ... on freshly created worker threads.
        assert db.pool._pool is not None
    finally:
        executor_module.PARALLEL_MIN_ROWS = original
        db.close()
    assert db.pool._pool is None
    # SegmentPool.shutdown is idempotent in isolation too.
    pool = SegmentPool(2, max_workers=2)
    pool.map(lambda part: part, [0, 1])
    pool.shutdown()
    pool.shutdown()
    assert pool.map(lambda part: part + 1, [0, 1]) == [1, 2]
    pool.shutdown()


def test_close_with_parallel_disabled_is_safe():
    db = Database(n_segments=2, parallel=False)
    assert db.pool is None
    db.close()
    db.close()
    db.execute("create table t (v int64)")
    db.execute("insert into t values (1)")
    assert db.execute("select count(*) from t").scalar() == 1


def test_process_backend_stats_deltas_match_thread_backend():
    """Satellite contract: per-statement counter deltas on the process
    backend equal the thread backend **exactly** — worker-side accounting
    merges back into the same EngineStats the thread kernels update —
    apart from the three process-only counters.  Exercised over a warm
    RC-style round loop (repeated join / group-by / scalar-count
    templates), so merged deltas land on cold and warm paths alike."""
    import dataclasses

    import repro.sqlengine.executor as executor_module

    process_only = {"process_tasks", "shm_bytes_exported", "stats_merges"}
    rng = np.random.default_rng(31)
    n = 3000
    v1 = rng.integers(0, 120, n)
    v2 = rng.integers(0, 120, n)
    rep = rng.integers(0, 120, 120)

    def build(backend):
        db = Database(n_segments=4, parallel=True, pool_backend=backend,
                      use_index_cache=False)
        db.load_table("e", {"v1": v1, "v2": v2})
        db.load_table("r", {"v": np.arange(120, dtype=np.int64),
                            "rep": rep})
        return db

    statements = []
    for round_no in range(3):  # warm loop: same templates, three rounds
        statements += [
            "select e.v1, r.rep from e, r where e.v1 = r.v",
            "select e.v1, count(*) c, min(e.v2) lo, sum(e.v2) s "
            "from e group by e.v1",
            "select count(*) from e",
            f"create table t{round_no} as "
            "select e.v2, r.rep from e, r where e.v2 = r.v",
            f"drop table t{round_no}",
        ]
    thread_db, process_db = build("thread"), build("process")
    original = executor_module.PARALLEL_MIN_ROWS
    executor_module.PARALLEL_MIN_ROWS = 1
    try:
        for sql in statements:
            before_t = thread_db.stats.snapshot()
            before_p = process_db.stats.snapshot()
            thread_db.execute(sql)
            process_db.execute(sql)
            delta_t = thread_db.stats.snapshot().delta(before_t)
            delta_p = process_db.stats.snapshot().delta(before_p)
            for field in dataclasses.fields(delta_t):
                if field.name in process_only:
                    continue
                assert getattr(delta_p, field.name) == \
                    getattr(delta_t, field.name), (sql, field.name)
    finally:
        executor_module.PARALLEL_MIN_ROWS = original
    assert process_db.stats.process_tasks > 0
    assert process_db.stats.stats_merges > 0
    assert process_db.stats.shm_bytes_exported > 0
    assert thread_db.stats.process_tasks == 0
    thread_db.close()
    process_db.close()


def test_merge_worker_delta_rejects_unknown_counters():
    db = Database(parallel=False)
    db.stats.merge_worker_delta({"process_tasks": 3})
    assert db.stats.process_tasks == 3
    assert db.stats.stats_merges == 1
    with pytest.raises(ValueError, match="unknown counter"):
        db.stats.merge_worker_delta({"not_a_counter": 1})


def test_rows_written_counts_inserts():
    db = Database()
    db.execute("create table t (a int)")
    before = db.stats.rows_written
    db.execute("insert into t values (1), (2), (3)")
    assert db.stats.rows_written == before + 3
