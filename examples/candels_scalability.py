#!/usr/bin/env python3
"""Scalability on the Candels video series (Section VII-B).

The paper converts increasing numbers of 4K video frames into 3D pixel
graphs (6-connectivity over x, y and time) to obtain a series of datasets
of doubling size, and observes that Randomised Contraction's runtime "is
essentially linear in the size of the graph".

This example regenerates the series at laptop scale, runs Randomised
Contraction on each member, fits runtime ~ |E|^alpha and prints the series
— the E-SC experiment in script form.

Run:  python examples/candels_scalability.py [scale]
"""

import sys

from repro import connected_components
from repro.analysis import quasi_linearity_exponent
from repro.graphs import build_dataset

SERIES = ["candels10", "candels20", "candels40", "candels80", "candels160"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    sizes = []
    times = []
    print(f"building and solving the Candels series at scale {scale} ...\n")
    print(f"{'dataset':12s} {'|V|':>10s} {'|E|':>10s} {'rounds':>7s} "
          f"{'seconds':>8s} {'components':>11s}")
    for name in SERIES:
        edges = build_dataset(name, scale=scale)
        result = connected_components(edges, "rc", seed=13)
        sizes.append(edges.n_edges)
        times.append(result.run.elapsed_seconds)
        print(f"{name:12s} {edges.n_vertices:>10,d} {edges.n_edges:>10,d} "
              f"{result.run.rounds:>7d} {result.run.elapsed_seconds:>8.2f} "
              f"{result.n_components:>11,d}")

    alpha = quasi_linearity_exponent(sizes, times)
    print(f"\nfitted: runtime ~ |E|^{alpha:.2f}")
    print("the paper's claim: 'its runtime is essentially linear in the "
          "size of the graph' — alpha should be close to 1")


if __name__ == "__main__":
    main()
