#!/usr/bin/env python3
"""Image segmentation by connected components (the Andromeda experiment).

Section VII-A: "Connected component analysis can be used as an image
segmentation technique.  We converted a Gigapixel image of the Andromeda
galaxy to a graph by generating an edge for every pair of horizontally or
vertically adjacent pixels with an 8-bit RGB colour vector distance up to
50."

This example renders a synthetic star field, applies exactly that
conversion, segments it in-database, and reports the segments — the giant
dark background plus one segment per star — together with the scale-free
size distribution of Figure 5.

Run:  python examples/image_segmentation.py [height width]
"""

import sys

import numpy as np

from repro import connected_components
from repro.analysis import fit_scale_free, render_figure5
from repro.graphs import image_to_graph, synthetic_starfield


def main() -> None:
    height = int(sys.argv[1]) if len(sys.argv) > 1 else 160
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 240
    rng = np.random.default_rng(20150105)

    print(f"rendering a {height}x{width} synthetic star field ...")
    image = synthetic_starfield(height, width, rng)

    print("converting to a pixel graph "
          "(4-connectivity, RGB distance <= 50, randomised vertex IDs) ...")
    graph = image_to_graph(image, threshold=50.0, rng=rng)
    print(f"pixel graph: {graph.n_vertices:,} vertices, "
          f"{graph.n_edges:,} edges")

    result = connected_components(graph, algorithm="rc", seed=7)
    print(f"\nsegments found: {result.n_components:,} "
          f"in {result.run.rounds} rounds "
          f"({result.run.elapsed_seconds:.2f}s)")

    fit = fit_scale_free(graph)
    print(f"background segment: {fit.giant_component_size:,} pixels "
          f"(the paper's 'single outlier')")
    print(f"star segment sizes: log-log slope {fit.slope:.2f} "
          f"(scale-free, as in Figure 5)")

    print()
    print(render_figure5({"starfield": graph}))


if __name__ == "__main__":
    main()
