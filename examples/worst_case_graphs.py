#!/usr/bin/env python3
"""Worst-case inputs and adversarial robustness (Sections IV, V-B).

The paper argues that Randomised Contraction is the only contender without
an exploitable worst case: "other algorithms that rely on a worst case
being 'unlikely' are vulnerable in an adversarial scenario where such a
worst case can be exploited to an attacker's advantage".

This example runs the adversarial inputs from the paper's test bench:

* the sequentially numbered path (Path100M's shape) — defeats
  deterministic min-contraction, BFS, and blows up Hash-to-Min's space;
* the interleaved union of doubling paths (PathUnion10's shape) — the
  Two-Phase worst case;

and shows Randomised Contraction handling both in O(log n) rounds.

Run:  python examples/worst_case_graphs.py [n]
"""

import math
import sys

from repro import connected_components
from repro.core import BreadthFirstSearchCC, RandomisedContraction
from repro.graphs import path_graph, path_union
from repro.sqlengine import SpaceBudgetExceeded


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000

    print(f"== sequentially numbered path, n = {n:,} ==")
    path = path_graph(n)

    rc = connected_components(path, "rc", seed=1)
    print(f"randomised contraction: {rc.run.rounds} rounds "
          f"(log2 n = {math.log2(n):.1f}) — robust")

    small = path_graph(min(n, 300))
    identity = connected_components(
        small, RandomisedContraction(method="identity"), seed=1
    )
    print(f"without randomisation : {identity.run.rounds} rounds on "
          f"n = {small.n_vertices} (= n - 1, Figure 2a)")

    bfs = connected_components(
        small, BreadthFirstSearchCC(max_rounds=2 * small.n_vertices), seed=1
    )
    print(f"BFS / MADlib strategy : {bfs.run.rounds} rounds on "
          f"n = {small.n_vertices} (linear in the diameter)")

    budget = path.byte_size() * 8
    try:
        connected_components(path, "hm", seed=1, space_budget_bytes=budget)
        print("hash-to-min           : finished (unexpected at this size)")
    except SpaceBudgetExceeded as exc:
        print(f"hash-to-min           : DID NOT FINISH — {exc}")

    rc_budgeted = connected_components(path, "rc", seed=1,
                                       space_budget_bytes=budget)
    print(f"randomised contraction under the same space budget: "
          f"{rc_budgeted.run.rounds} rounds, fine")

    print(f"\n== union of 6 doubling paths, interleaved IDs "
          f"(Two-Phase worst case) ==")
    union = path_union(6, max(4, n // 128))
    tp = connected_components(union, "tp", seed=1)
    rc2 = connected_components(union, "rc", seed=1)
    print(f"two-phase             : {tp.run.rounds} rounds, "
          f"{tp.run.elapsed_seconds:.2f}s")
    print(f"randomised contraction: {rc2.run.rounds} rounds, "
          f"{rc2.run.elapsed_seconds:.2f}s")
    print(f"components: {rc2.n_components} (both correct: "
          f"{tp.n_components == rc2.n_components})")


if __name__ == "__main__":
    main()
