#!/usr/bin/env python3
"""Bitcoin address clustering — the paper's motivating application.

Section VII-A: "it is a basic step for analysing the cash flows in Bitcoin
to de-anonymise these addresses if possible.  We used a well-known address
clustering heuristic for this: if a transaction uses inputs with multiple
addresses then these addresses are assumed to be controlled by the same
entity."

This example generates a synthetic blockchain, builds the address-
transaction input graph, and computes its connected components in-database
with Randomised Contraction.  Each component is an address cluster — a set
of addresses assumed to be controlled by one entity.

Run:  python examples/bitcoin_address_clustering.py [n_transactions]
"""

import sys

import numpy as np

from repro import connected_components
from repro.analysis import component_sizes, fit_scale_free
from repro.graphs import generate_blockchain


def main() -> None:
    n_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    rng = np.random.default_rng(20190409)

    print(f"generating a synthetic blockchain with {n_transactions:,} "
          "transactions ...")
    chain = generate_blockchain(n_transactions, rng)
    graph = chain.address_graph()
    print(f"address graph: {graph.n_vertices:,} vertices "
          f"({chain.n_addresses:,} addresses + transactions), "
          f"{graph.n_edges:,} input edges")

    result = connected_components(graph, algorithm="rc", seed=1)
    print(f"\naddress clusters found: {result.n_components:,} "
          f"in {result.run.rounds} contraction rounds "
          f"({result.run.elapsed_seconds:.2f}s, "
          f"{result.run.sql_queries} SQL queries)")

    sizes = component_sizes(graph)
    print("\nlargest clusters (addresses + transactions per entity):")
    for rank, size in enumerate(sizes[:8].tolist(), start=1):
        print(f"  #{rank}: {size:,} vertices")

    fit = fit_scale_free(graph)
    print(f"\ncluster sizes are roughly scale-free (Figure 5): "
          f"log-log slope {fit.slope:.2f}, R^2 {fit.r_squared:.2f}")

    # The full transaction graph: components are isolated "markets".
    full = chain.full_graph()
    markets = connected_components(full, algorithm="rc", seed=1)
    print(f"\nfull transaction graph: {full.n_vertices:,} vertices, "
          f"{full.n_edges:,} edges -> {markets.n_components:,} markets "
          "that never interacted")


if __name__ == "__main__":
    main()
