#!/usr/bin/env python3
"""Quickstart: connected components of a small graph, in-database.

Runs the paper's Randomised Contraction algorithm on the worked example of
Figure 1 and shows the two ways of using the library: the one-call API and
the explicit database session (the way the paper's Appendix-A driver
works).

Run:  python examples/quickstart.py
"""

from repro import connected_components
from repro.core import RandomisedContraction
from repro.graphs import EdgeList, load_edges_into
from repro.sqlengine import Database

# The undirected graph of the paper's Figure 1, as an edge list.
FIGURE1 = [
    (1, 5), (1, 10), (2, 4), (2, 9), (3, 8),
    (3, 10), (4, 9), (5, 6), (5, 7), (6, 10),
]


def one_call_api() -> None:
    print("== one-call API ==")
    edges = EdgeList.from_pairs(FIGURE1)
    result = connected_components(edges, algorithm="rc", seed=42)
    print(f"components found: {result.n_components}")
    for label, members in sorted(result.components().items(),
                                 key=lambda kv: kv[1]):
        print(f"  component {label}: vertices {members}")
    print(f"contraction rounds: {result.run.rounds}, "
          f"SQL queries: {result.run.sql_queries}")


def explicit_database_session() -> None:
    print("\n== explicit database session (Appendix-A style) ==")
    db = Database(n_segments=4)
    load_edges_into(db, "my_graph", EdgeList.from_pairs(FIGURE1))

    # Any configuration of the algorithm can be driven over the same table.
    algorithm = RandomisedContraction(method="finite-fields", variant="fast")
    run = algorithm.run(db, "my_graph", result_table="labels", seed=42)

    # The result is a plain table inside the database: query it with SQL.
    rows = db.execute(
        "select rep, count(*) as size from labels group by rep"
    ).rows()
    print("component sizes straight from SQL:", sorted(size for _, size in rows))
    print(f"peak space used: {run.stats.peak_live_bytes:,} bytes; "
          f"data written: {run.stats.bytes_written:,} bytes; "
          f"data motion: {run.stats.motion_bytes:,} bytes")


def main() -> None:
    one_call_api()
    explicit_database_session()


if __name__ == "__main__":
    main()
