#!/usr/bin/env python
"""Diff a fresh BENCH_engine.json against the committed baseline.

Usage: bench_compare.py <baseline.json> <fresh.json>

Prints per-metric deltas (numbers only, flattened by dotted path).  The
comparison is informational: it always exits 0, so CI surfaces regressions
without gating on timing noise.  Seconds-valued metrics show speed deltas
(negative = faster); rates and counters show absolute change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def flatten(node, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    baseline_path, fresh_path = Path(argv[1]), Path(argv[2])
    if not baseline_path.exists():
        print(f"bench-compare: no baseline at {baseline_path} — nothing to "
              f"compare (commit one from benchmarks/results/)")
        return 0
    if not fresh_path.exists():
        print(f"bench-compare: no fresh results at {fresh_path} — run "
              f"`make bench-engine` first")
        return 0
    baseline = flatten(json.loads(baseline_path.read_text()))
    fresh = flatten(json.loads(fresh_path.read_text()))
    width = max((len(k) for k in baseline | fresh), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for key in sorted(baseline | fresh):
        old = baseline.get(key)
        new = fresh.get(key)
        if old is None:
            print(f"{key:<{width}}  {'-':>12}  {new:>12.6g}  {'new':>8}")
        elif new is None:
            print(f"{key:<{width}}  {old:>12.6g}  {'-':>12}  {'gone':>8}")
        else:
            if old:
                delta = f"{(new - old) / abs(old) * 100:+.1f}%"
            else:
                delta = "+inf%" if new else "0.0%"
            print(f"{key:<{width}}  {old:>12.6g}  {new:>12.6g}  {delta:>8}")
    print("\nbench-compare is informational; timing metrics are in seconds "
          "(negative delta = faster).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
