#!/usr/bin/env python
"""Diff a fresh BENCH_engine.json against the committed baseline.

Usage: bench_compare.py <baseline.json> <fresh.json>

Prints per-metric deltas (numbers only, flattened by dotted path).
Seconds-valued metrics show speed deltas (negative = faster); rates and
counters show absolute change.  Metrics present on only one side — a
benchmark added since the baseline was committed, or one that was removed —
are reported as ``new`` / ``removed`` instead of failing the comparison.

Exit codes are deterministic so CI can stay informational on them:

* ``0`` — every metric exists on both sides with comparable values;
* ``2`` — an input file is missing or not valid JSON;
* ``3`` — schema drift: new, removed and/or NaN metrics were reported
  (commit a refreshed baseline from ``benchmarks/results/`` when this is
  intended).

A metric that is present but NaN on either side is **drift**, not
alignment: NaN means the benchmark recorded a division by zero or a
skipped measurement, and ``NaN == NaN`` comparisons would otherwise let a
silently broken metric pass every future comparison.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path


def flatten(node, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def load(path: Path, hint: str) -> dict[str, float] | None:
    if not path.exists():
        print(f"bench-compare: no {hint} at {path} — nothing to compare")
        return None
    try:
        return flatten(json.loads(path.read_text()))
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench-compare: cannot read {hint} {path}: {error}")
        return None


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load(Path(argv[1]), "baseline")
    fresh = load(Path(argv[2]), "fresh results (run `make bench-engine`)")
    if baseline is None or fresh is None:
        return 2
    width = max((len(k) for k in baseline | fresh), default=10)
    new_keys = removed_keys = nan_keys = 0
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for key in sorted(baseline | fresh):
        old = baseline.get(key)
        new = fresh.get(key)
        if old is None:
            new_keys += 1
            print(f"{key:<{width}}  {'-':>12}  {new:>12.6g}  {'new':>8}")
        elif new is None:
            removed_keys += 1
            print(f"{key:<{width}}  {old:>12.6g}  {'-':>12}  {'removed':>8}")
        elif math.isnan(old) or math.isnan(new):
            # Present-but-NaN is a broken measurement, not an aligned one.
            nan_keys += 1
            print(f"{key:<{width}}  {old:>12.6g}  {new:>12.6g}  {'nan':>8}")
        else:
            if old:
                delta = f"{(new - old) / abs(old) * 100:+.1f}%"
            else:
                delta = "+inf%" if new else "0.0%"
            print(f"{key:<{width}}  {old:>12.6g}  {new:>12.6g}  {delta:>8}")
    print("\nbench-compare is informational; timing metrics are in seconds "
          "(negative delta = faster).")
    if new_keys or removed_keys or nan_keys:
        print(f"bench-compare: schema drift — {new_keys} new, "
              f"{removed_keys} removed, {nan_keys} NaN metric(s); refresh "
              f"benchmarks/baselines/ if this is intended.")
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
