"""Legacy setuptools entry point.

Kept so that editable installs work in fully offline environments where the
``wheel`` package (needed by the PEP 517 editable path) is unavailable.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
