"""Stored tables and the catalog.

Tables carry a **versioned per-column index cache**: the first keyed
operation against a stored column builds a :class:`~repro.sqlengine.operators.KeyIndex`
(sorted order, uniqueness, min/max stats) and caches it on the table;
subsequent joins and groupings against the same column reuse it instead of
re-sorting.  Any mutation (``INSERT`` append, ``TRUNCATE``) bumps the table
version, which invalidates every cached index — a stale index can therefore
never be observed.  The paper's algorithms join the per-round ``reps``
table two to three times per contraction round, which is exactly the reuse
pattern this cache targets.

Under the process pool backend a stored column's storage may be
**shm-adopted**: the first parallel kernel touching it swaps
``Column.values`` for a bit-identical view over a shared-memory block (see
:mod:`repro.sqlengine.shm`), so later statements ship workers a descriptor
instead of copying.  Adoption is invisible here — tables hold Column
objects either way, and block lifecycle (unlink on ``Database.close()`` or
when the view dies) is owned entirely by the pool's registry.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Optional

import numpy as np

from .errors import CatalogError, ExecutionError
from .operators import KeyIndex, build_key_index
from .types import TEXT, Column

#: Monotonically increasing table identities.  Unlike ``id()``, a uid is
#: never reused, so a (uid, version) pair uniquely fingerprints table state
#: across drops and re-creates — the subquery result cache keys on it.
_table_uids = itertools.count()


class Table:
    """A named, column-store table with an optional distribution column.

    Tables are created whole (``CREATE TABLE ... AS``) or appended to
    (``INSERT``); rows are never updated in place, matching how the paper's
    algorithms use the database (write-once temporary tables that are
    renamed and dropped).
    """

    def __init__(
        self,
        name: str,
        columns: dict[str, Column],
        distribution_column: Optional[str] = None,
    ):
        if not columns:
            raise ExecutionError(f"table {name!r} needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ExecutionError(f"ragged columns while creating table {name!r}")
        if distribution_column is not None and distribution_column not in columns:
            raise CatalogError(
                f"distribution column {distribution_column!r} is not a column of "
                f"table {name!r}"
            )
        self.name = name
        self.columns = dict(columns)
        self.distribution_column = distribution_column
        self.uid = next(_table_uids)
        self._byte_size: Optional[int] = None
        #: Bumped on every mutation; cached indexes are tagged with the
        #: version they were built against and ignored once it moves on.
        self.version = 0
        self._indexes: dict[str, tuple[int, KeyIndex]] = {}

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def byte_size(self) -> int:
        """Storage footprint (cached; appends invalidate the cache)."""
        if self._byte_size is None:
            self._byte_size = sum(col.byte_size() for col in self.columns.values())
        return self._byte_size

    def append(self, columns: dict[str, Column]) -> int:
        """Append rows; returns the number of bytes added."""
        if set(columns) != set(self.columns):
            raise ExecutionError(
                f"INSERT columns {sorted(columns)} do not match table "
                f"{self.name!r} columns {sorted(self.columns)}"
            )
        before = self.byte_size()
        for name, col in columns.items():
            self.columns[name] = Column.concat([self.columns[name], col])
        self._byte_size = None
        self._invalidate_indexes()
        return self.byte_size() - before

    def truncate(self) -> int:
        """Drop all rows, keeping the schema; returns the bytes freed."""
        freed = self.byte_size()
        for name, col in list(self.columns.items()):
            empty = np.empty(0, dtype=col.values.dtype if col.sql_type != TEXT
                             else object)
            self.columns[name] = Column(empty, col.sql_type)
        self._byte_size = None
        self._invalidate_indexes()
        return freed

    # -- per-column index cache --------------------------------------------

    def _invalidate_indexes(self) -> None:
        self.version += 1
        self._indexes.clear()

    def cached_index(self, column_name: str) -> Optional[KeyIndex]:
        """Return the cached index for a column, or None if absent/stale."""
        entry = self._indexes.get(column_name)
        if entry is None or entry[0] != self.version:
            return None
        return entry[1]

    def ensure_index(self, column_name: str) -> Optional[KeyIndex]:
        """Return (building and caching if needed) the index for a column.

        Returns ``None`` for columns that cannot be indexed: text columns
        (object storage, no cheap stats) and columns with NULLs (the join
        kernels pre-filter NULL rows, which would invalidate positions).
        """
        cached = self.cached_index(column_name)
        if cached is not None:
            return cached
        col = self.column(column_name)
        if col.sql_type == TEXT or col.mask is not None:
            return None
        index = build_key_index(col.values)
        self._indexes[column_name] = (self.version, index)
        return index


class Catalog:
    """Name → table mapping with rename/drop semantics.

    Lookups are case-insensitive (keys are lower-cased), but a table's
    ``name`` — the one error messages and :meth:`names` show — keeps the
    casing it was given.  ``rename`` in particular must not silently
    lower-case the user-visible name while normalising its lookup key.

    Mutations are lock-guarded so an overlapped-composition statement
    executing on a pool worker can create/drop/rename its tables while the
    driving thread runs the next contraction round (the two threads always
    touch disjoint table names; the lock only keeps the dict transitions —
    ``rename`` is a pop plus an insert — atomic).
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._lock = threading.Lock()

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}")

    def put(self, table: Table) -> None:
        key = table.name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"table {table.name!r} already exists")
            self._tables[key] = table

    def drop(self, name: str) -> Table:
        try:
            with self._lock:
                return self._tables.pop(name.lower())
        except KeyError:
            raise CatalogError(f"unknown table {name!r}")

    def rename(self, old: str, new: str) -> Table:
        with self._lock:
            if new.lower() in self._tables:
                raise CatalogError(f"table {new!r} already exists")
            try:
                table = self._tables.pop(old.lower())
            except KeyError:
                raise CatalogError(f"unknown table {old!r}")
            table.name = new
            self._tables[new.lower()] = table
            return table

    def names(self) -> list[str]:
        """User-visible table names, ordered by their lookup key."""
        with self._lock:
            return [self._tables[key].name for key in sorted(self._tables)]

    def total_bytes(self) -> int:
        with self._lock:
            return sum(t.byte_size() for t in self._tables.values())
