"""Stored tables and the catalog."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .errors import CatalogError, ExecutionError
from .types import Column


class Table:
    """A named, column-store table with an optional distribution column.

    Tables are created whole (``CREATE TABLE ... AS``) or appended to
    (``INSERT``); rows are never updated in place, matching how the paper's
    algorithms use the database (write-once temporary tables that are
    renamed and dropped).
    """

    def __init__(
        self,
        name: str,
        columns: dict[str, Column],
        distribution_column: Optional[str] = None,
    ):
        if not columns:
            raise ExecutionError(f"table {name!r} needs at least one column")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise ExecutionError(f"ragged columns while creating table {name!r}")
        if distribution_column is not None and distribution_column not in columns:
            raise CatalogError(
                f"distribution column {distribution_column!r} is not a column of "
                f"table {name!r}"
            )
        self.name = name
        self.columns = dict(columns)
        self.distribution_column = distribution_column
        self._byte_size: Optional[int] = None

    @property
    def n_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def byte_size(self) -> int:
        """Storage footprint (cached; appends invalidate the cache)."""
        if self._byte_size is None:
            self._byte_size = sum(col.byte_size() for col in self.columns.values())
        return self._byte_size

    def append(self, columns: dict[str, Column]) -> int:
        """Append rows; returns the number of bytes added."""
        if set(columns) != set(self.columns):
            raise ExecutionError(
                f"INSERT columns {sorted(columns)} do not match table "
                f"{self.name!r} columns {sorted(self.columns)}"
            )
        before = self.byte_size()
        for name, col in columns.items():
            self.columns[name] = Column.concat([self.columns[name], col])
        self._byte_size = None
        return self.byte_size() - before


class Catalog:
    """Name → table mapping with rename/drop semantics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}")

    def put(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop(self, name: str) -> Table:
        try:
            return self._tables.pop(name.lower())
        except KeyError:
            raise CatalogError(f"unknown table {name!r}")

    def rename(self, old: str, new: str) -> Table:
        if new.lower() in self._tables:
            raise CatalogError(f"table {new!r} already exists")
        table = self.drop(old)
        table.name = new.lower()
        self._tables[new.lower()] = table
        return table

    def names(self) -> list[str]:
        return sorted(self._tables)

    def total_bytes(self) -> int:
        return sum(t.byte_size() for t in self._tables.values())
