"""Recursive-descent parser for the engine's SQL dialect.

Covers everything the paper's code (Appendix A) and the baseline ports use:
``CREATE TABLE ... AS SELECT ... DISTRIBUTED BY (col)``, plain selects with
joins (comma-style and explicit ``[LEFT OUTER] JOIN ... ON``), ``WHERE``,
``GROUP BY``, ``UNION ALL``, ``DISTINCT``, scalar and aggregate functions,
``CASE WHEN``, ``DROP``/``ALTER ... RENAME``/``INSERT``/``TRUNCATE``.
"""

from __future__ import annotations

from .ast_nodes import (
    Aggregate,
    AlterRename,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    CreateTableAs,
    DropTable,
    Expression,
    FromItem,
    FuncCall,
    InList,
    InsertSelect,
    InsertValues,
    IsNull,
    Join,
    Literal,
    Param,
    Select,
    SelectCore,
    SelectItem,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    TruncateTable,
    UnaryOp,
)
from .errors import ParseError
from .lexer import EOF, FLOAT, IDENT, INTEGER, KEYWORD, OP, STRING, Token, tokenize

#: Aggregate function names recognised by the parser.
AGGREGATE_NAMES = frozenset({"min", "max", "sum", "count", "avg"})

_COMPARISONS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, sql: str, allow_params: bool = False):
        self._sql = sql
        self._tokens = tokenize(sql, allow_params=allow_params)
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value or kind
            raise ParseError(
                f"expected {wanted!r} but found {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _expect_keyword(self, *words: str) -> None:
        for word in words:
            self._expect(KEYWORD, word)

    def _accept_keyword(self, *words: str) -> bool:
        """Accept a keyword sequence atomically (all or nothing)."""
        for offset, word in enumerate(words):
            if not self._peek(offset).matches(KEYWORD, word):
                return False
        for _ in words:
            self._advance()
        return True

    def _identifier(self) -> str:
        token = self._peek()
        if token.kind != IDENT:
            raise ParseError(
                f"expected identifier but found {token.value or 'end of input'!r}",
                token.position,
            )
        self._advance()
        return token.value.lower()

    # -- entry points -------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse a single statement, requiring full input consumption."""
        statement = self._statement()
        self._accept(OP, ";")
        token = self._peek()
        if token.kind != EOF:
            raise ParseError(
                f"unexpected trailing input starting at {token.value!r}",
                token.position,
            )
        return statement

    def parse_script(self) -> list[Statement]:
        """Parse a semicolon-separated list of statements."""
        statements = []
        while not self._check(EOF):
            statements.append(self._statement())
            if not self._accept(OP, ";"):
                break
        token = self._peek()
        if token.kind != EOF:
            raise ParseError(
                f"unexpected trailing input starting at {token.value!r}",
                token.position,
            )
        return statements

    # -- statements ----------------------------------------------------------

    def _statement(self) -> Statement:
        if self._check(KEYWORD, "select"):
            return self._select()
        if self._check(KEYWORD, "create"):
            return self._create()
        if self._check(KEYWORD, "drop"):
            return self._drop()
        if self._check(KEYWORD, "alter"):
            return self._alter()
        if self._check(KEYWORD, "insert"):
            return self._insert()
        if self._check(KEYWORD, "truncate"):
            return self._truncate()
        token = self._peek()
        raise ParseError(
            f"expected a statement but found {token.value or 'end of input'!r}",
            token.position,
        )

    def _create(self) -> Statement:
        self._expect_keyword("create")
        temp = bool(self._accept(KEYWORD, "temp") or self._accept(KEYWORD, "temporary"))
        self._expect_keyword("table")
        name = self._identifier()
        if self._accept(KEYWORD, "as"):
            select = self._select()
            distributed_by = self._distribution_clause()
            return CreateTableAs(name, select, distributed_by, temp)
        self._expect(OP, "(")
        columns = []
        while True:
            col_name = self._identifier()
            type_token = self._peek()
            if type_token.kind not in (IDENT, KEYWORD):
                raise ParseError("expected a column type", type_token.position)
            self._advance()
            sql_type = _normalise_type(type_token.value)
            columns.append((col_name, sql_type))
            if not self._accept(OP, ","):
                break
        self._expect(OP, ")")
        distributed_by = self._distribution_clause()
        return CreateTable(name, tuple(columns), distributed_by, temp)

    def _distribution_clause(self) -> str | None:
        if self._accept(KEYWORD, "distributed"):
            if self._accept(KEYWORD, "randomly"):
                return None
            self._expect_keyword("by")
            self._expect(OP, "(")
            column = self._identifier()
            self._expect(OP, ")")
            return column
        return None

    def _drop(self) -> DropTable:
        self._expect_keyword("drop", "table")
        if_exists = self._accept_keyword("if", "exists")
        names = [self._identifier()]
        while self._accept(OP, ","):
            names.append(self._identifier())
        return DropTable(tuple(names), if_exists)

    def _alter(self) -> AlterRename:
        self._expect_keyword("alter", "table")
        old = self._identifier()
        self._expect_keyword("rename", "to")
        new = self._identifier()
        return AlterRename(old, new)

    def _insert(self) -> Statement:
        self._expect_keyword("insert", "into")
        name = self._identifier()
        columns: tuple[str, ...] | None = None
        if self._accept(OP, "("):
            cols = [self._identifier()]
            while self._accept(OP, ","):
                cols.append(self._identifier())
            self._expect(OP, ")")
            columns = tuple(cols)
        if self._accept(KEYWORD, "values"):
            rows = []
            while True:
                self._expect(OP, "(")
                row = [self._expression()]
                while self._accept(OP, ","):
                    row.append(self._expression())
                self._expect(OP, ")")
                rows.append(tuple(row))
                if not self._accept(OP, ","):
                    break
            return InsertValues(name, columns, tuple(rows))
        select = self._select()
        return InsertSelect(name, columns, select)

    def _truncate(self) -> TruncateTable:
        self._expect_keyword("truncate")
        self._accept(KEYWORD, "table")
        return TruncateTable(self._identifier())

    # -- select --------------------------------------------------------------

    def _select(self) -> Select:
        cores = [self._select_core()]
        while self._accept_keyword("union", "all"):
            cores.append(self._select_core())
        return Select(tuple(cores))

    def _select_core(self) -> SelectCore:
        self._expect_keyword("select")
        distinct = bool(self._accept(KEYWORD, "distinct"))
        items = [self._select_item()]
        while self._accept(OP, ","):
            items.append(self._select_item())
        from_items: tuple[FromItem, ...] = ()
        joins: list[Join] = []
        where = None
        group_by: tuple[Expression, ...] = ()
        if self._accept(KEYWORD, "from"):
            tables = [self._from_item()]
            while self._accept(OP, ","):
                tables.append(self._from_item())
            from_items = tuple(tables)
            while True:
                if self._accept_keyword("left", "outer", "join") or self._accept_keyword(
                    "left", "join"
                ):
                    kind = "left"
                elif self._accept_keyword("inner", "join") or self._accept_keyword("join"):
                    kind = "inner"
                else:
                    break
                table = self._from_item()
                self._expect_keyword("on")
                condition = self._expression()
                joins.append(Join(kind, table, condition))
        if self._accept(KEYWORD, "where"):
            where = self._expression()
        if self._accept_keyword("group", "by"):
            exprs = [self._expression()]
            while self._accept(OP, ","):
                exprs.append(self._expression())
            group_by = tuple(exprs)
        return SelectCore(distinct, tuple(items), from_items, tuple(joins), where, group_by)

    def _select_item(self) -> SelectItem:
        if self._accept(OP, "*"):
            return SelectItem(Star(), None)
        expr = self._expression()
        alias = None
        if self._accept(KEYWORD, "as"):
            alias = self._identifier()
        elif self._check(IDENT):
            alias = self._identifier()
        return SelectItem(expr, alias)

    def _from_item(self) -> FromItem:
        if self._accept(OP, "("):
            select = self._select()
            self._expect(OP, ")")
            self._accept(KEYWORD, "as")
            alias = self._identifier()
            return SubqueryRef(select, alias)
        name = self._identifier()
        alias = None
        if self._accept(KEYWORD, "as"):
            alias = self._identifier()
        elif self._check(IDENT):
            alias = self._identifier()
        return TableRef(name, alias)

    # -- expressions ----------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._accept(KEYWORD, "or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._accept(KEYWORD, "and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._accept(KEYWORD, "not"):
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.kind == OP and token.value in _COMPARISONS:
            self._advance()
            op = "!=" if token.value == "<>" else token.value
            return BinaryOp(op, left, self._additive())
        if self._accept(KEYWORD, "is"):
            negated = bool(self._accept(KEYWORD, "not"))
            self._expect(KEYWORD, "null")
            return IsNull(left, negated)
        negated = False
        if self._check(KEYWORD, "not") and self._peek(1).matches(KEYWORD, "in"):
            self._advance()
            negated = True
        if self._accept(KEYWORD, "in"):
            self._expect(OP, "(")
            items = [self._expression()]
            while self._accept(OP, ","):
                items.append(self._expression())
            self._expect(OP, ")")
            return InList(left, tuple(items), negated)
        if self._accept(KEYWORD, "between"):
            low = self._additive()
            self._expect(KEYWORD, "and")
            high = self._additive()
            return BinaryOp(
                "and",
                BinaryOp(">=", left, low),
                BinaryOp("<=", left, high),
            )
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == OP and token.value in ("+", "-", "||"):
                self._advance()
                left = BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == OP and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self._accept(OP, "-"):
            operand = self._unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            if isinstance(operand, Literal) and isinstance(operand.value, Param):
                # Template mode: fold the minus into the placeholder so the
                # patched AST matches the direct parse's folded literal.
                param = operand.value
                return Literal(Param(param.index, not param.negated))
            return UnaryOp("-", operand)
        if self._accept(OP, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == INTEGER:
            self._advance()
            if token.value.startswith("$"):
                # Statement-template placeholder; the plan cache patches the
                # real constant in before execution (see plancache.py).
                return Literal(Param(int(token.value[1:])))
            return Literal(int(token.value))
        if token.kind == FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.kind == STRING:
            self._advance()
            return Literal(token.value)
        if token.matches(KEYWORD, "null"):
            self._advance()
            return Literal(None)
        if token.matches(KEYWORD, "case"):
            return self._case()
        if self._accept(OP, "("):
            expr = self._expression()
            self._expect(OP, ")")
            return expr
        if token.kind == IDENT:
            return self._identifier_expression()
        raise ParseError(
            f"expected an expression but found {token.value or 'end of input'!r}",
            token.position,
        )

    def _case(self) -> Expression:
        self._expect_keyword("case")
        branches = []
        while self._accept(KEYWORD, "when"):
            condition = self._expression()
            self._expect_keyword("then")
            value = self._expression()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch",
                             self._peek().position)
        default = None
        if self._accept(KEYWORD, "else"):
            default = self._expression()
        self._expect_keyword("end")
        return CaseWhen(tuple(branches), default)

    def _identifier_expression(self) -> Expression:
        name = self._identifier()
        if self._accept(OP, "("):
            return self._call(name)
        if self._accept(OP, "."):
            column = self._identifier()
            return ColumnRef(name, column)
        return ColumnRef(None, name)

    def _call(self, name: str) -> Expression:
        lowered = name.lower()
        if lowered in AGGREGATE_NAMES:
            distinct = bool(self._accept(KEYWORD, "distinct"))
            if self._accept(OP, "*"):
                self._expect(OP, ")")
                if lowered != "count":
                    raise ParseError(f"{name}(*) is only valid for count",
                                     self._peek().position)
                return Aggregate("count", None, distinct=False)
            arg = self._expression()
            self._expect(OP, ")")
            return Aggregate(lowered, arg, distinct)
        args: list[Expression] = []
        if not self._accept(OP, ")"):
            args.append(self._expression())
            while self._accept(OP, ","):
                args.append(self._expression())
            self._expect(OP, ")")
        return FuncCall(lowered, tuple(args))


def _normalise_type(raw: str) -> str:
    lowered = raw.lower()
    mapping = {
        "int": "int64", "integer": "int64", "bigint": "int64", "int8": "int64",
        "int64": "int64",
        "float": "float64", "float8": "float64", "double": "float64",
        "real": "float64", "float64": "float64",
        "bool": "bool", "boolean": "bool",
        "text": "text", "varchar": "text",
    }
    if lowered not in mapping:
        raise ParseError(f"unsupported column type {raw!r}")
    return mapping[lowered]


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()


def parse_script(sql: str) -> list[Statement]:
    """Parse a semicolon-separated SQL script."""
    return Parser(sql).parse_script()
