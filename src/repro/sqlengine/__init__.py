"""An in-process, MPP-simulating SQL engine.

This package is the reproduction's substitute for the paper's Apache HAWQ
cluster.  It parses the same SQL dialect the paper prints (including
``distributed by`` clauses and user-defined functions), executes queries
with vectorised numpy kernels, and meters exactly the quantities the
paper's evaluation reports: queries executed, bytes written (Table V), peak
live space (Table IV), and simulated cross-segment data motion.

Entry point: :class:`~repro.sqlengine.database.Database`.
"""

from .database import Database, ResultSet
from .errors import (
    CatalogError,
    ExecutionError,
    ParseError,
    PlanError,
    SpaceBudgetExceeded,
    SqlError,
)
from .executor import Relation
from .mpp import Cluster, hash64
from .stats import EngineStats, StatsSnapshot
from .table import Table
from .types import BOOL, FLOAT64, INT64, TEXT, Column

__all__ = [
    "BOOL",
    "CatalogError",
    "Cluster",
    "Column",
    "Database",
    "EngineStats",
    "ExecutionError",
    "FLOAT64",
    "INT64",
    "ParseError",
    "PlanError",
    "Relation",
    "ResultSet",
    "SpaceBudgetExceeded",
    "SqlError",
    "StatsSnapshot",
    "TEXT",
    "Table",
    "hash64",
]
