"""Vectorised relational operator kernels.

These are the numpy building blocks the executor assembles plans from:
m:n equi-joins (inner and left outer), group-by boundary detection, and
DISTINCT.  All kernels are pure index arithmetic — they return row index
arrays rather than materialised rows, so the executor can gather only the
columns a query actually needs.

Every kernel must behave on empty inputs, because the termination condition
of every reproduced algorithm ("repeat until the edge table is empty") makes
the final round's queries run over zero rows.
"""

from __future__ import annotations

import numpy as np

from .errors import ExecutionError
from .types import TEXT, Column

#: Right-index sentinel for unmatched rows in a left outer join.
NO_MATCH = -1


def _keys_as_arrays(columns: list[Column]) -> list[np.ndarray]:
    arrays = []
    for col in columns:
        if col.sql_type == TEXT:
            arrays.append(col.values)
        else:
            arrays.append(np.ascontiguousarray(col.values))
    return arrays


def _non_null_rows(columns: list[Column]) -> np.ndarray | None:
    """Row mask selecting rows where no key column is NULL, or None if all."""
    mask = None
    for col in columns:
        if col.mask is not None:
            mask = col.mask.copy() if mask is None else (mask | col.mask)
    if mask is None:
        return None
    return ~mask


def _pack_keys(arrays: list[np.ndarray]) -> np.ndarray:
    """Reduce a multi-column key to a single comparable array.

    Single numeric keys pass through untouched (the hot path — every join in
    the reproduced algorithms is single-column).  Multi-column numeric keys
    are packed into a contiguous void view so one argsort handles them;
    anything involving text falls back to Python tuples.
    """
    if len(arrays) == 1:
        return arrays[0]
    if all(a.dtype != object for a in arrays):
        stacked = np.ascontiguousarray(np.stack(arrays, axis=1))
        return stacked.view([("", stacked.dtype)] * stacked.shape[1]).ravel()
    return np.array([tuple(row) for row in zip(*arrays)], dtype=object)


def join_indices(
    left_keys: list[Column], right_keys: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Inner m:n equi-join; returns aligned (left_rows, right_rows).

    NULL keys never match (SQL semantics).
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ExecutionError("join requires matching non-empty key lists")
    left_valid = _non_null_rows(left_keys)
    right_valid = _non_null_rows(right_keys)
    lk = _pack_keys(_keys_as_arrays(left_keys))
    rk = _pack_keys(_keys_as_arrays(right_keys))
    left_rows = np.arange(lk.shape[0])
    right_rows = np.arange(rk.shape[0])
    if left_valid is not None:
        left_rows = left_rows[left_valid]
        lk = lk[left_valid]
    if right_valid is not None:
        right_rows = right_rows[right_valid]
        rk = rk[right_valid]
    if lk.shape[0] == 0 or rk.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    l_idx, r_idx = _merge_join(lk, rk)
    return left_rows[l_idx], right_rows[r_idx]


def left_join_indices(
    left_keys: list[Column], right_keys: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Left outer m:n equi-join.

    Returns (left_rows, right_rows) where unmatched left rows appear exactly
    once with ``right_rows == NO_MATCH``.
    """
    l_idx, r_idx = join_indices(left_keys, right_keys)
    n_left = len(left_keys[0])
    matched = np.zeros(n_left, dtype=bool)
    matched[l_idx] = True
    missing = np.flatnonzero(~matched)
    if missing.size == 0:
        return l_idx, r_idx
    left_rows = np.concatenate([l_idx, missing])
    right_rows = np.concatenate([r_idx, np.full(missing.size, NO_MATCH, dtype=np.int64)])
    return left_rows, right_rows


def _merge_join(lk: np.ndarray, rk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge join core on packed keys without NULLs."""
    r_order = np.argsort(rk, kind="stable")
    r_sorted = rk[r_order]
    lo = np.searchsorted(r_sorted, lk, side="left")
    hi = np.searchsorted(r_sorted, lk, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    l_idx = np.repeat(np.arange(lk.shape[0]), counts)
    run_starts = np.repeat(lo, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within_run = np.arange(total) - np.repeat(offsets, counts)
    r_idx = r_order[run_starts + within_run]
    return l_idx, r_idx


def group_rows(key_columns: list[Column]) -> tuple[np.ndarray, np.ndarray]:
    """Group rows by key equality.

    Returns ``(order, starts)``: ``order`` sorts rows so equal keys are
    adjacent; ``starts`` indexes into ``order`` at each group's first row.
    NULL keys form their own group (SQL GROUP BY treats NULLs as equal).
    """
    n = len(key_columns[0]) if key_columns else 0
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    sort_keys: list[np.ndarray] = []
    for col in key_columns:
        sort_keys.append(col.null_mask())
        sort_keys.append(col.values)
    # np.lexsort sorts by the *last* key first.
    order = np.lexsort(tuple(reversed(sort_keys)))
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for col in key_columns:
        values_sorted = col.values[order]
        mask_sorted = col.null_mask()[order]
        differs = values_sorted[1:] != values_sorted[:-1]
        differs |= mask_sorted[1:] != mask_sorted[:-1]
        # Two NULLs compare equal regardless of their underlying values.
        both_null = mask_sorted[1:] & mask_sorted[:-1]
        differs &= ~both_null
        change[1:] |= differs
    starts = np.flatnonzero(change)
    return order, starts


def distinct_rows(columns: list[Column]) -> np.ndarray:
    """Row indices of the first occurrence of each distinct row."""
    if not columns:
        return np.empty(0, dtype=np.int64)
    order, starts = group_rows(columns)
    if order.size == 0:
        return order
    return order[starts]
