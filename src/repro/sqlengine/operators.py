"""Vectorised relational operator kernels.

These are the numpy building blocks the executor assembles plans from:
m:n equi-joins (inner and left outer), group-by boundary detection, and
DISTINCT.  All kernels are pure index arithmetic — they return row index
arrays rather than materialised rows, so the executor can gather only the
columns a query actually needs.

Two execution strategies coexist:

* **Hash/dictionary kernels** (the hot path) handle the dominant case of
  the reproduced algorithms — single-column ``int64`` keys without NULLs.
  When the key range is dense (span comparable to the row count, as with
  vertex IDs) the join builds a direct-address slot table and the DISTINCT
  kernel scatters first-occurrence positions, both O(n) with no sort at
  all.  Sparse 64-bit keys (post-randomisation representative values) use
  a :class:`KeyIndex` — a sorted order plus uniqueness and min/max stats —
  which stored tables cache across statements (see
  :meth:`repro.sqlengine.table.Table.ensure_index`), so repeated joins
  against the same table pay the sort once.

* **Sort-merge kernels** (:func:`merge_join_indices`,
  :func:`sorted_group_rows`) remain as the reference implementation and
  the fallback for text keys and NULL-bearing inputs.  Multi-column and
  unpackable sparse-pair DISTINCT run on an open-addressing **hash-table
  kernel** (:func:`_hash_distinct_int`, splitmix64 probing) instead of a
  lexsort — the shape of the contraction query's ``select distinct v1, v2``
  once representatives are 64-bit field values whose spans defeat pair
  packing.

Every fast path is *plan-stable*: it returns exactly the same index arrays,
in exactly the same order, as the sort-merge reference.  The property tests
in ``tests/test_operators.py`` enforce this, and it is what makes the
engine's output bit-for-bit reproducible regardless of which kernel the
dispatch picks.  DISTINCT kernels return first-occurrence positions in
ascending *row* order (the key-value ordering of earlier revisions was an
artefact of the sort-based implementation; row order is strategy-neutral,
so the hash path never pays a key sort it does not need).

Every kernel must behave on empty inputs, because the termination condition
of every reproduced algorithm ("repeat until the edge table is empty") makes
the final round's queries run over zero rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .errors import ExecutionError
from .mpp import hash64
from .types import TEXT, Column

#: Right-index sentinel for unmatched rows in a left outer join.
NO_MATCH = -1

#: Dense-key dispatch: a direct-address table is used when the key span is
#: at most ``DENSE_SPAN_FACTOR`` times the build-side row count (or the
#: absolute floor, so tiny inputs with moderate spans still qualify), capped
#: to bound the slot-array allocation.
DENSE_SPAN_FACTOR = 4
DENSE_SPAN_FLOOR = 1 << 16
DENSE_SPAN_CAP = 1 << 24


# ---------------------------------------------------------------------------
# key indexes
# ---------------------------------------------------------------------------


class KeyIndex:
    """A reusable single-column index: key statistics plus sorted order.

    ``is_unique`` and the min/max bounds let the join kernels skip the
    duplicate-expansion machinery and let the planner prove joins empty
    (disjoint key ranges) without touching the data.  ``order`` (the
    stable argsort of the values) and ``sorted_values`` are **lazy**:
    dense-key columns never need them — the direct-address join consumes
    only the O(n) statistics — so building them eagerly would make every
    one-shot dense join pay for a sort it never uses.  The first consumer
    that does need the sorted order (a sparse-key join probe, or GROUP BY
    through the executor's index-aware grouping) materialises it once, and
    the table cache keeps it.
    """

    __slots__ = ("_values", "n_rows", "is_unique", "min_value", "max_value",
                 "is_sorted", "_order", "_sorted_values")

    def __init__(
        self,
        values: np.ndarray,
        is_unique: bool,
        min_value: Optional[int],
        max_value: Optional[int],
        order: Optional[np.ndarray] = None,
        sorted_values: Optional[np.ndarray] = None,
        is_sorted: bool = False,
    ):
        self._values = values
        self.n_rows = int(values.shape[0])
        self.is_unique = is_unique
        self.min_value = min_value
        self.max_value = max_value
        #: True when the column is already non-decreasing on disk — the
        #: stable argsort is then the identity, so sorted consumers (index
        #: probes, GROUP BY) skip both the sort and the gather.  GROUP BY
        #: output tables (the paper's per-round ``reps``) always qualify.
        self.is_sorted = is_sorted
        self._order = order
        self._sorted_values = sorted_values

    @property
    def order(self) -> np.ndarray:
        if self._order is None:
            if self.is_sorted:
                self._order = np.arange(self.n_rows, dtype=np.int64)
            else:
                self._order = np.argsort(self._values, kind="stable")
        return self._order

    @property
    def sorted_values(self) -> np.ndarray:
        if self._sorted_values is None:
            if self.is_sorted:
                self._sorted_values = self._values
            else:
                self._sorted_values = self._values[self.order]
        return self._sorted_values


def _dense_span_limit(n_rows: int) -> int:
    """Largest key span the direct-address kernels will allocate for."""
    return min(max(DENSE_SPAN_FACTOR * n_rows, DENSE_SPAN_FLOOR), DENSE_SPAN_CAP)


def build_key_index(values: np.ndarray) -> KeyIndex:
    """Build a :class:`KeyIndex` over a non-null numeric column."""
    if values.dtype == object:
        raise ExecutionError("key indexes require fixed-width numeric columns")
    n = int(values.shape[0])
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return KeyIndex(values, True, None, None, order=empty,
                        sorted_values=values, is_sorted=True)
    is_sorted = n < 2 or bool(np.all(values[1:] >= values[:-1]))
    if values.dtype.kind in "iu":
        min_value, max_value = int(values.min()), int(values.max())
        span = max_value - min_value + 1
        if span <= _dense_span_limit(n):
            # Dense keys: uniqueness comes from an O(n) bincount and the
            # join kernel will use direct addressing — defer the sort.
            counts = np.bincount(values - min_value)
            return KeyIndex(values, int(counts.max()) <= 1, min_value,
                            max_value, is_sorted=is_sorted)
    else:
        min_value = max_value = None
    if is_sorted:
        # Pre-sorted storage (e.g. any GROUP BY output): the stable argsort
        # is the identity, so sorted consumers are free.
        sorted_values = values
        is_unique = n < 2 or not bool(
            (sorted_values[1:] == sorted_values[:-1]).any()
        )
        return KeyIndex(values, is_unique, min_value, max_value,
                        sorted_values=sorted_values, is_sorted=True)
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    is_unique = n < 2 or not bool(
        (sorted_values[1:] == sorted_values[:-1]).any()
    )
    return KeyIndex(values, is_unique, min_value, max_value, order,
                    sorted_values)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _keys_as_arrays(columns: list[Column]) -> list[np.ndarray]:
    arrays = []
    for col in columns:
        if col.sql_type == TEXT:
            arrays.append(col.values)
        else:
            arrays.append(np.ascontiguousarray(col.values))
    return arrays


def _non_null_rows(columns: list[Column]) -> np.ndarray | None:
    """Row mask selecting rows where no key column is NULL, or None if all."""
    mask = None
    for col in columns:
        if col.mask is not None:
            mask = col.mask.copy() if mask is None else (mask | col.mask)
    if mask is None:
        return None
    return ~mask


def _pack_keys(arrays: list[np.ndarray]) -> np.ndarray:
    """Reduce a multi-column key to a single comparable array.

    Single numeric keys pass through untouched (the hot path — every join in
    the reproduced algorithms is single-column).  Multi-column numeric keys
    are packed into a contiguous void view so one argsort handles them;
    anything involving text falls back to Python tuples.
    """
    if len(arrays) == 1:
        return arrays[0]
    if all(a.dtype != object for a in arrays):
        stacked = np.ascontiguousarray(np.stack(arrays, axis=1))
        return stacked.view([("", stacked.dtype)] * stacked.shape[1]).ravel()
    return np.array([tuple(row) for row in zip(*arrays)], dtype=object)


def _empty_pair() -> tuple[np.ndarray, np.ndarray]:
    empty = np.empty(0, dtype=np.int64)
    return empty, empty.copy()


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    left_index: Optional[KeyIndex] = None,
    right_index: Optional[KeyIndex] = None,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Inner m:n equi-join; returns aligned (left_rows, right_rows).

    NULL keys never match (SQL semantics).  ``left_index``/``right_index``
    are optional precomputed :class:`KeyIndex` objects over the *unfiltered*
    key columns (typically from a stored table's index cache); they let the
    kernel skip its build-side sort.  An index is ignored whenever the
    corresponding side had NULL rows filtered out, since its row numbering
    would no longer line up.

    ``note``, when given, receives the name of the kernel strategy the
    dispatch settled on (``"dense"``, ``"probe-sorted"``, ``"merge"`` ...) —
    the executor records it on the statement's physical plan.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ExecutionError("join requires matching non-empty key lists")
    left_valid = _non_null_rows(left_keys)
    right_valid = _non_null_rows(right_keys)
    lk = _pack_keys(_keys_as_arrays(left_keys))
    rk = _pack_keys(_keys_as_arrays(right_keys))
    left_rows = np.arange(lk.shape[0])
    right_rows = np.arange(rk.shape[0])
    if left_valid is not None:
        left_rows = left_rows[left_valid]
        lk = lk[left_valid]
        left_index = None
    if right_valid is not None:
        right_rows = right_rows[right_valid]
        rk = rk[right_valid]
        right_index = None
    if lk.shape[0] == 0 or rk.shape[0] == 0:
        if note is not None:
            note.append("empty")
        return _empty_pair()
    l_idx, r_idx = _join_core(lk, rk, left_index, right_index, note)
    return left_rows[l_idx], right_rows[r_idx]


def merge_join_indices(
    left_keys: list[Column], right_keys: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """The seed sort-merge join, kept as reference and benchmark baseline.

    Produces identical output to :func:`join_indices`; the hash kernels are
    dispatch-time optimisations only.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ExecutionError("join requires matching non-empty key lists")
    left_valid = _non_null_rows(left_keys)
    right_valid = _non_null_rows(right_keys)
    lk = _pack_keys(_keys_as_arrays(left_keys))
    rk = _pack_keys(_keys_as_arrays(right_keys))
    left_rows = np.arange(lk.shape[0])
    right_rows = np.arange(rk.shape[0])
    if left_valid is not None:
        left_rows = left_rows[left_valid]
        lk = lk[left_valid]
    if right_valid is not None:
        right_rows = right_rows[right_valid]
        rk = rk[right_valid]
    if lk.shape[0] == 0 or rk.shape[0] == 0:
        return _empty_pair()
    l_idx, r_idx = _merge_join(lk, rk)
    return left_rows[l_idx], right_rows[r_idx]


def pad_left_outer(
    l_idx: np.ndarray, r_idx: np.ndarray, n_left: int
) -> tuple[np.ndarray, np.ndarray]:
    """Append unmatched left rows (``right == NO_MATCH``) to an inner-join
    result — the shared left-outer step of every join kernel, so the
    padding order can never diverge between strategies."""
    matched = np.zeros(n_left, dtype=bool)
    matched[l_idx] = True
    missing = np.flatnonzero(~matched)
    if missing.size == 0:
        return l_idx, r_idx
    left_rows = np.concatenate([l_idx, missing])
    right_rows = np.concatenate(
        [r_idx, np.full(missing.size, NO_MATCH, dtype=np.int64)]
    )
    return left_rows, right_rows


def left_join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    left_index: Optional[KeyIndex] = None,
    right_index: Optional[KeyIndex] = None,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left outer m:n equi-join.

    Returns (left_rows, right_rows) where unmatched left rows appear exactly
    once with ``right_rows == NO_MATCH``.
    """
    l_idx, r_idx = join_indices(left_keys, right_keys, left_index, right_index,
                                note)
    return pad_left_outer(l_idx, r_idx, len(left_keys[0]))


def _join_core(
    lk: np.ndarray,
    rk: np.ndarray,
    left_index: Optional[KeyIndex],
    right_index: Optional[KeyIndex],
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch between the hash paths and the sort-merge fallback."""
    if lk.dtype.kind == "i" and rk.dtype.kind == "i":
        return _hash_join_int(lk, rk, left_index, right_index, note)
    if note is not None:
        note.append("merge-indexed" if right_index is not None else "merge")
    if right_index is not None:
        return _merge_join(lk, rk, r_order=right_index.order)
    return _merge_join(lk, rk)


def _hash_join_int(
    lk: np.ndarray,
    rk: np.ndarray,
    left_index: Optional[KeyIndex],
    right_index: Optional[KeyIndex],
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-column integer join: dense direct-address or sorted-index probe."""
    n_right = int(rk.shape[0])
    if right_index is not None and right_index.min_value is not None:
        rmin, rmax = right_index.min_value, right_index.max_value
    else:
        rmin, rmax = int(rk.min()), int(rk.max())
    # Key-range pruning: disjoint min/max ranges cannot produce matches.
    if left_index is not None and left_index.min_value is not None:
        if left_index.min_value > rmax or left_index.max_value < rmin:
            if note is not None:
                note.append("range-pruned")
            return _empty_pair()
    span = rmax - rmin + 1
    if span <= _dense_span_limit(n_right):
        if note is not None:
            note.append("dense")
        return _dense_join(lk, rk, rmin, span, right_index)
    if right_index is not None:
        if right_index.is_unique:
            if note is not None:
                note.append("probe-sorted")
            return _probe_unique_sorted(lk, right_index)
        if note is not None:
            note.append("merge-indexed")
        return _merge_join(lk, rk, r_order=right_index.order)
    if note is not None:
        note.append("merge")
    return _merge_join(lk, rk)


def _dense_join(
    lk: np.ndarray,
    rk: np.ndarray,
    rmin: int,
    span: int,
    right_index: Optional[KeyIndex],
) -> tuple[np.ndarray, np.ndarray]:
    """Direct-address join over a dense build-side key range (no sort)."""
    n_right = int(rk.shape[0])
    rel_right = rk - rmin
    counts: Optional[np.ndarray] = None
    if right_index is not None and right_index.is_unique:
        unique = True
    else:
        counts = np.bincount(rel_right, minlength=span)
        unique = n_right < 2 or int(counts.max()) <= 1
    # Bounds-check on the original values: computing lk - rmin first could
    # wrap around int64 for extreme key ranges and alias into the table.
    in_bounds = (lk >= rmin) & (lk <= rmin + (span - 1))
    l_rel = np.where(in_bounds, lk - rmin, 0)
    if unique:
        slots = np.full(span, NO_MATCH, dtype=np.int64)
        slots[rel_right] = np.arange(n_right, dtype=np.int64)
        candidates = slots[l_rel]
        match = in_bounds & (candidates != NO_MATCH)
        l_idx = np.flatnonzero(match)
        return l_idx, candidates[l_idx]
    # Duplicate build keys: bucket right rows by key code (stable argsort on
    # the small code range is numpy's radix sort — linear, not comparison).
    order = right_index.order if right_index is not None \
        else np.argsort(rel_right, kind="stable")
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    cnt = np.where(in_bounds, counts[l_rel], 0)
    total = int(cnt.sum())
    if total == 0:
        return _empty_pair()
    l_idx = np.repeat(np.arange(lk.shape[0]), cnt)
    run_starts = np.repeat(starts[l_rel], cnt)
    offsets = np.concatenate(([0], np.cumsum(cnt)[:-1]))
    within_run = np.arange(total) - np.repeat(offsets, cnt)
    return l_idx, order[run_starts + within_run]


def _probe_unique_sorted(
    lk: np.ndarray, right_index: KeyIndex
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a cached sorted index with unique keys: one binary search, no
    duplicate expansion."""
    sorted_values = right_index.sorted_values
    pos = np.searchsorted(sorted_values, lk)
    np.minimum(pos, sorted_values.shape[0] - 1, out=pos)
    match = sorted_values[pos] == lk
    l_idx = np.flatnonzero(match)
    if right_index.is_sorted:
        # Identity order: sorted positions are row numbers already.
        return l_idx, pos[l_idx]
    return l_idx, right_index.order[pos[l_idx]]


def _merge_join(
    lk: np.ndarray, rk: np.ndarray, r_order: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge join core on packed keys without NULLs.

    ``r_order`` is an optional precomputed stable argsort of ``rk`` (from a
    table's index cache) that skips the build-side sort.
    """
    if r_order is None:
        r_order = np.argsort(rk, kind="stable")
    r_sorted = rk[r_order]
    lo = np.searchsorted(r_sorted, lk, side="left")
    hi = np.searchsorted(r_sorted, lk, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _empty_pair()
    l_idx = np.repeat(np.arange(lk.shape[0]), counts)
    run_starts = np.repeat(lo, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within_run = np.arange(total) - np.repeat(offsets, counts)
    r_idx = r_order[run_starts + within_run]
    return l_idx, r_idx


# ---------------------------------------------------------------------------
# grouping and distinct
# ---------------------------------------------------------------------------


def group_rows(
    key_columns: list[Column], index: Optional[KeyIndex] = None
) -> tuple[np.ndarray, np.ndarray]:
    """Group rows by key equality.

    Returns ``(order, starts)``: ``order`` sorts rows so equal keys are
    adjacent; ``starts`` indexes into ``order`` at each group's first row.
    NULL keys form their own group (SQL GROUP BY treats NULLs as equal).

    ``index`` is an optional cached :class:`KeyIndex` over a single NULL-free
    key column; it makes grouping sort-free.
    """
    n = len(key_columns[0]) if key_columns else 0
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if (
        index is not None
        and len(key_columns) == 1
        and key_columns[0].mask is None
        and index.n_rows == n
    ):
        return index.order, _boundaries(index.sorted_values)
    if all(col.mask is None for col in key_columns):
        if len(key_columns) == 1:
            values = key_columns[0].values
            order = np.argsort(values, kind="stable")
            return order, _boundaries(values[order])
        if all(col.values.dtype != object for col in key_columns):
            # Null-free multi-column keys: sort on the value arrays alone
            # (the seed path also lexsorts one constant mask key per column,
            # doubling the sort work for nothing).
            arrays = [col.values for col in key_columns]
            order = np.lexsort(tuple(reversed(arrays)))
            change = np.zeros(n, dtype=bool)
            change[0] = True
            for values in arrays:
                values_sorted = values[order]
                change[1:] |= values_sorted[1:] != values_sorted[:-1]
            return order, np.flatnonzero(change)
    return sorted_group_rows(key_columns)


def sorted_group_rows(key_columns: list[Column]) -> tuple[np.ndarray, np.ndarray]:
    """The seed lexsort grouping: reference implementation and NULL/text
    fallback."""
    n = len(key_columns[0]) if key_columns else 0
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    sort_keys: list[np.ndarray] = []
    for col in key_columns:
        sort_keys.append(col.null_mask())
        sort_keys.append(col.values)
    # np.lexsort sorts by the *last* key first.
    order = np.lexsort(tuple(reversed(sort_keys)))
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for col in key_columns:
        values_sorted = col.values[order]
        mask_sorted = col.null_mask()[order]
        differs = values_sorted[1:] != values_sorted[:-1]
        differs |= mask_sorted[1:] != mask_sorted[:-1]
        # Two NULLs compare equal regardless of their underlying values.
        both_null = mask_sorted[1:] & mask_sorted[:-1]
        differs &= ~both_null
        change[1:] |= differs
    starts = np.flatnonzero(change)
    return order, starts


def _boundaries(sorted_values: np.ndarray) -> np.ndarray:
    """Group-start positions within an already-sorted key array."""
    n = sorted_values.shape[0]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    change[1:] = sorted_values[1:] != sorted_values[:-1]
    return np.flatnonzero(change)


def distinct_rows(
    columns: list[Column],
    index: Optional[KeyIndex] = None,
    note: Optional[list] = None,
) -> np.ndarray:
    """First-occurrence row of each distinct key, in ascending row order.

    ``index`` serves callers that hold a cached :class:`KeyIndex` for a
    single-column input; the executor's DISTINCT runs on post-projection
    relations (no table provenance), so it does not pass one.  ``note``,
    when given, receives the kernel strategy the dispatch settled on
    (``"dense"``, ``"hash"``, ``"sort"`` ...) for executor telemetry.
    """
    if not columns:
        return np.empty(0, dtype=np.int64)
    n = len(columns[0])
    if n == 0:
        if note is not None:
            note.append("empty")
        return np.empty(0, dtype=np.int64)
    if all(c.mask is None and c.values.dtype.kind == "i" for c in columns):
        if len(columns) == 1:
            return _distinct_int(columns[0].values, index, note)
        if len(columns) == 2:
            packed = _pack_int_pair(columns[0].values, columns[1].values)
            if packed is not None:
                # The packing is a bijection, so the single-column kernel
                # keeps exactly the rows the group-based reference keeps.
                return _distinct_int(packed, None, note)
        # Unpackable pairs (spans overflow 63 bits — 64-bit field values)
        # and wider integer keys: hash table instead of a lexsort.
        return _hash_distinct_int([c.values for c in columns], note)
    if note is not None:
        note.append("sort")
    order, starts = group_rows(columns, index=index)
    if order.size == 0:
        return order
    return np.sort(order[starts])


def _pack_int_pair(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Pack two int64 columns into one when their spans fit 63 bits.

    DISTINCT over two integer columns — the shape of every contraction
    query's ``select distinct v1, v2`` — then runs the O(n) single-column
    kernel instead of a lexsort over a structured view.
    """
    a_min, a_max = int(a.min()), int(a.max())
    b_min, b_max = int(b.min()), int(b.max())
    b_span = b_max - b_min + 1
    if (a_max - a_min + 1) * b_span >= (1 << 62):  # Python ints: no overflow
        return None
    return (a - a_min) * np.int64(b_span) + (b - b_min)


def _distinct_int(
    values: np.ndarray, index: Optional[KeyIndex], note: Optional[list] = None
) -> np.ndarray:
    """DISTINCT over one NULL-free integer column.

    Dense key ranges use a first-occurrence scatter (O(n), no sort): writing
    positions in reverse order leaves each slot holding the *first* original
    occurrence, so the kept row set matches the sort-based reference exactly.
    """
    n = int(values.shape[0])
    if index is not None and index.n_rows == n:
        if note is not None:
            note.append("index")
        return np.sort(index.order[_boundaries(index.sorted_values)])
    vmin, vmax = int(values.min()), int(values.max())
    span = vmax - vmin + 1
    if span <= _dense_span_limit(n):
        if note is not None:
            note.append("dense")
        rel = values - vmin
        first = np.full(span, -1, dtype=np.int64)
        first[rel[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        firsts = first[first >= 0]
        return np.sort(firsts)
    # Sparse keys: an *unstable* sort (numpy's introsort is ~4x faster than
    # the stable radix argsort here) followed by a per-group position
    # minimum.  The minimum of each equal-key run is its first original
    # occurrence, so the result matches the stable reference exactly.
    if note is not None:
        note.append("sparse-sort")
    order = np.argsort(values, kind="quicksort")
    sorted_values = values[order]
    starts = _boundaries(sorted_values)
    return np.sort(np.minimum.reduceat(order, starts))


#: Open-addressing hash tables are sized to the next power of two at or
#: above ``HASH_TABLE_LOAD`` times the row count (load factor <= 0.5).
HASH_TABLE_LOAD = 2


def _hash_distinct_int(
    arrays: list[np.ndarray], note: Optional[list] = None
) -> np.ndarray:
    """DISTINCT over NULL-free integer key columns via an open-addressing
    hash table, O(n) expected — no lexsort over the full input.

    Every row probes a splitmix64-addressed slot table with linear probing,
    all rows in lock-step per probe distance: unclaimed slots are claimed by
    the *lowest* pending row that hashes to them (a reversed scatter makes
    the first writer win), rows whose slot holder carries an equal key are
    duplicates and drop out, everything else moves one slot over.  Equal
    keys share a probe sequence, so the first occurrence always either
    claims the slot or is the row every later duplicate compares against —
    the kept set is exactly the reference's, returned in row order.
    """
    if note is not None:
        note.append("hash")
    n = int(arrays[0].shape[0])
    size = 1 << max(int(HASH_TABLE_LOAD * n - 1).bit_length(), 4)
    slot_mask = np.int64(size - 1)
    mixed = None
    for array in arrays:
        unsigned = array.astype(np.uint64, copy=False)
        mixed = hash64(unsigned if mixed is None else unsigned ^ mixed)
    slot = (mixed.astype(np.int64) & slot_mask)
    slot_of = np.full(size, -1, dtype=np.int64)
    keep = np.zeros(n, dtype=bool)
    pending = np.arange(n, dtype=np.int64)
    while pending.size:
        probed = slot[pending]
        holder = slot_of[probed]
        unclaimed = holder < 0
        if unclaimed.any():
            slots = probed[unclaimed]
            claimants = pending[unclaimed]
            slot_of[slots[::-1]] = claimants[::-1]
            holder = slot_of[probed]
        won = holder == pending
        keep[pending[won]] = True
        duplicate = np.ones(pending.size, dtype=bool)
        for array in arrays:
            duplicate &= array[holder] == array[pending]
        pending = pending[~(won | duplicate)]
        if pending.size:
            slot[pending] = (slot[pending] + 1) & slot_mask
    return np.flatnonzero(keep)
