"""SQL tokenizer.

Produces the token stream consumed by :mod:`repro.sqlengine.parser`.  The
dialect covers what the paper's queries (Appendix A) and the ported baseline
algorithms need: identifiers, integer/float/string literals, the usual
operators, ``--`` line comments and ``/* */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParseError

# Token kinds.
IDENT = "IDENT"
KEYWORD = "KEYWORD"
INTEGER = "INTEGER"
FLOAT = "FLOAT"
STRING = "STRING"
OP = "OP"
EOF = "EOF"

#: Reserved words recognised case-insensitively.  Anything else is an
#: identifier.  (Function names like ``least`` are deliberately *not*
#: keywords; they parse as identifiers followed by ``(``.)
KEYWORDS = frozenset(
    """
    select distinct from where group by as create table drop alter rename to
    union all and or not null is in temp temporary if exists insert into
    values left right full outer inner join on using distributed randomly
    case when then else end between like limit order asc desc truncate
    """.split()
)

_MULTI_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_SINGLE_CHAR_OPS = "=<>+-*/%(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source offset (for error messages)."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        """Check kind and (case-insensitively, for words) value."""
        if self.kind != kind:
            return False
        if value is None:
            return True
        return self.value.lower() == value.lower()


def tokenize(sql: str, allow_params: bool = False) -> list[Token]:
    """Tokenise SQL text; raises :class:`ParseError` on bad input.

    ``allow_params`` enables the ``$<n>`` placeholder syntax used by
    statement templates (see plancache.py); user-facing SQL keeps ``$``
    illegal so placeholders can never arrive from outside.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise ParseError("unterminated block comment", i)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = i
            # In template mode "$" continues an identifier: statement
            # templates parameterise trailing digits of generated table
            # names as "name$<slot>".
            ident_chars = "_$" if allow_params else "_"
            while i < n and (sql[i].isalnum() or sql[i] in ident_chars):
                i += 1
            word = sql[start:i]
            kind = KEYWORD if word.lower() in KEYWORDS else IDENT
            tokens.append(Token(kind, word, start))
            continue
        if ch == "$" and allow_params:
            # A template placeholder for an integer literal: "$<slot>".
            start = i
            i += 1
            while i < n and sql[i].isdigit():
                i += 1
            if i == start + 1:
                raise ParseError("'$' must be followed by a parameter number", start)
            tokens.append(Token(INTEGER, sql[start:i], start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Don't swallow "1." followed by an identifier (alias.col
                    # never starts with a digit, so this is always a float dot
                    # unless the next char is not a digit).
                    if i + 1 < n and sql[i + 1].isdigit():
                        seen_dot = True
                        i += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    sql[i + 1].isdigit() or sql[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2 if sql[i + 1] in "+-" else 1
                else:
                    break
            text = sql[start:i]
            kind = FLOAT if (seen_dot or seen_exp) else INTEGER
            tokens.append(Token(kind, text, start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            tokens.append(Token(STRING, "".join(chunks), start))
            continue
        matched = False
        for op in _MULTI_CHAR_OPS:
            if sql.startswith(op, i):
                tokens.append(Token(OP, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens
