"""Column types and the column-store value container.

The engine is a column store: a relation is a list of named
:class:`Column` objects of equal length.  Values live in numpy arrays
(``int64``, ``float64``, ``bool`` or ``object`` for text) with an optional
boolean null mask, which keeps whole-column operations vectorised — the
property that makes a Python-hosted engine fast enough to run the paper's
workloads at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .errors import ExecutionError

#: SQL type names used by the engine.
INT64 = "int64"
FLOAT64 = "float64"
BOOL = "bool"
TEXT = "text"

_NUMPY_DTYPES = {
    INT64: np.int64,
    FLOAT64: np.float64,
    BOOL: np.bool_,
    TEXT: object,
}

#: Storage footprint per row used for the space accounting that feeds the
#: Table IV / Table V reproductions.  Numeric cells cost 8 bytes like the
#: database in the paper; booleans 1; text is charged per character.
_FIXED_WIDTH = {INT64: 8, FLOAT64: 8, BOOL: 1}


def dtype_for(sql_type: str) -> np.dtype:
    """Return the numpy dtype backing a SQL type name."""
    try:
        return np.dtype(_NUMPY_DTYPES[sql_type])
    except KeyError:
        raise ExecutionError(f"unknown SQL type {sql_type!r}")


def sql_type_of_value(value: object) -> str:
    """Infer the SQL type of a Python literal."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT64
    if isinstance(value, float):
        return FLOAT64
    if isinstance(value, str):
        return TEXT
    raise ExecutionError(f"unsupported literal type {type(value).__name__}")


@dataclass
class Column:
    """One column of values plus an optional null mask.

    ``mask`` is ``None`` when the column contains no NULLs (the common case,
    kept mask-free so the hot paths skip mask bookkeeping); otherwise it is a
    boolean array where ``True`` marks NULL.
    """

    values: np.ndarray
    sql_type: str
    mask: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.mask is not None and not self.mask.any():
            self.mask = None

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @classmethod
    def from_values(cls, values: np.ndarray | Sequence, sql_type: str | None = None,
                    mask: Optional[np.ndarray] = None) -> "Column":
        """Build a column from raw values, inferring the SQL type if needed."""
        array = np.asarray(values)
        if sql_type is None:
            if array.dtype == np.bool_:
                sql_type = BOOL
            elif np.issubdtype(array.dtype, np.integer):
                sql_type = INT64
            elif np.issubdtype(array.dtype, np.floating):
                sql_type = FLOAT64
            else:
                sql_type = TEXT
        if sql_type != TEXT:
            array = array.astype(dtype_for(sql_type), copy=False)
        else:
            array = array.astype(object, copy=False)
            if mask is None and array.shape[0]:
                # Ingested object arrays mark NULL as ``None``; fold that
                # into the mask so every consumer can trust mask-is-truth.
                nulls = np.asarray(array == None, dtype=bool)  # noqa: E711
                if nulls.any():
                    mask = nulls
        return cls(array, sql_type, mask)

    @classmethod
    def constant(cls, value: object, length: int, sql_type: str | None = None) -> "Column":
        """A column holding ``length`` copies of one value (or NULL)."""
        if value is None:
            sql_type = sql_type or INT64
            values = np.zeros(length, dtype=dtype_for(sql_type))
            return cls(values, sql_type, np.ones(length, dtype=bool))
        sql_type = sql_type or sql_type_of_value(value)
        values = np.full(length, value, dtype=dtype_for(sql_type))
        return cls(values, sql_type)

    @classmethod
    def nulls(cls, length: int, sql_type: str = INT64) -> "Column":
        """An all-NULL column (used to pad unmatched outer-join rows)."""
        return cls.constant(None, length, sql_type)

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        values = self.values[indices]
        mask = self.mask[indices] if self.mask is not None else None
        return Column(values, self.sql_type, mask)

    def filter(self, keep: np.ndarray) -> "Column":
        """Keep rows where ``keep`` is True."""
        values = self.values[keep]
        mask = self.mask[keep] if self.mask is not None else None
        return Column(values, self.sql_type, mask)

    def process_shareable(self) -> bool:
        """True when the values can back a shared-memory export.

        Fixed-width numpy storage qualifies; text columns are Python
        object arrays and stay on the thread kernels (null masks are
        plain bool arrays and ship separately where a kernel needs one).
        """
        return self.values.dtype != object

    def adopt_storage(self, values: np.ndarray) -> None:
        """Swap the backing array for a bit-identical view.

        Used by :class:`~repro.sqlengine.shm.ShmRegistry` to re-home a
        column onto a shared-memory block on first parallel use: single-
        process consumers are unchanged (same dtype, shape and contents;
        columns are never written in place), while worker processes can
        now map the same pages by descriptor.
        """
        if values.dtype != self.values.dtype or values.shape != self.values.shape:
            raise ExecutionError("adopted storage must match dtype and shape")
        self.values = values

    def null_mask(self) -> np.ndarray:
        """Return a boolean mask of NULL positions (materialised)."""
        if self.mask is None:
            return np.zeros(len(self), dtype=bool)
        return self.mask

    def non_null_values(self) -> np.ndarray:
        """Values at non-NULL positions."""
        if self.mask is None:
            return self.values
        return self.values[~self.mask]

    def byte_size(self) -> int:
        """Storage footprint used for the engine's space accounting."""
        n = len(self)
        if self.sql_type in _FIXED_WIDTH:
            size = _FIXED_WIDTH[self.sql_type] * n
        else:
            size = sum(len(str(v)) for v in self.values) + n
        if self.mask is not None:
            size += n
        return size

    def to_list(self) -> list:
        """Python list with ``None`` at NULL positions (for small results)."""
        raw = self.values.tolist()
        if self.mask is None:
            return raw
        return [None if null else v for v, null in zip(raw, self.mask.tolist())]

    @staticmethod
    def concat(columns: Iterable["Column"]) -> "Column":
        """Vertically concatenate columns of a compatible type."""
        columns = list(columns)
        if not columns:
            raise ExecutionError("cannot concatenate zero columns")
        sql_type = columns[0].sql_type
        for col in columns[1:]:
            if col.sql_type != sql_type:
                # Integer/float mixes are promoted, anything else is an error.
                if {col.sql_type, sql_type} == {INT64, FLOAT64}:
                    sql_type = FLOAT64
                else:
                    raise ExecutionError(
                        f"type mismatch in UNION ALL: {sql_type} vs {col.sql_type}"
                    )
        values = np.concatenate([
            col.values.astype(dtype_for(sql_type), copy=False) if sql_type != TEXT
            else col.values
            for col in columns
        ])
        if any(col.mask is not None for col in columns):
            mask = np.concatenate([col.null_mask() for col in columns])
        else:
            mask = None
        return Column(values, sql_type, mask)
