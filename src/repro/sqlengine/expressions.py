"""Vectorised expression evaluation.

Expressions are evaluated bottom-up against an :class:`Environment` that
maps column names (qualified ``alias.col`` and, where unambiguous, bare
``col``) to whole :class:`~repro.sqlengine.types.Column` arrays.  The result
of every evaluation is again a Column, so a WHERE clause, a join condition
or a select item are all just expression evaluations.

NULL semantics are the pragmatic subset the paper's queries need:

* arithmetic and function calls are strict (NULL in, NULL out);
* comparisons involving NULL evaluate to FALSE (not UNKNOWN) — sufficient
  because the reproduced queries only compare non-nullable key columns, and
  explicit NULL tests go through ``IS [NOT] NULL``;
* ``coalesce``/``least`` follow PostgreSQL semantics (see functions.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from .ast_nodes import (
    Aggregate,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expression,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from .errors import ExecutionError, PlanError
from .functions import FunctionRegistry, ScalarArg
from .types import BOOL, FLOAT64, INT64, TEXT, Column


class AmbiguousColumn:
    """Marker bound to a bare column name claimed by several tables."""


#: Shared singleton marker.
AMBIGUOUS = AmbiguousColumn()


@dataclass
class Environment:
    """Name bindings and context for one expression evaluation."""

    columns: Mapping[str, Column]
    length: int
    registry: FunctionRegistry
    #: Pre-computed aggregate results, keyed by AST node; only present when
    #: evaluating select items above a GROUP BY.
    aggregates: Optional[Mapping[Aggregate, Column]] = None

    def lookup(self, ref: ColumnRef) -> Column:
        key = f"{ref.table}.{ref.name}" if ref.table else ref.name
        try:
            found = self.columns[key]
        except KeyError:
            raise PlanError(f"unknown column {ref.display()!r}")
        if isinstance(found, AmbiguousColumn):
            raise PlanError(f"ambiguous column {ref.display()!r}")
        return found


def contains_aggregate(expr: Expression) -> bool:
    """True if the expression tree contains an Aggregate node."""
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, FuncCall):
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, CaseWhen):
        return any(
            contains_aggregate(c) or contains_aggregate(v) for c, v in expr.branches
        ) or (expr.default is not None and contains_aggregate(expr.default))
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand)
    return False


def collect_aggregates(expr: Expression, into: list[Aggregate]) -> None:
    """Append every Aggregate node of the tree to ``into`` (deduplicated)."""
    if isinstance(expr, Aggregate):
        if expr not in into:
            into.append(expr)
        return
    if isinstance(expr, BinaryOp):
        collect_aggregates(expr.left, into)
        collect_aggregates(expr.right, into)
    elif isinstance(expr, UnaryOp):
        collect_aggregates(expr.operand, into)
    elif isinstance(expr, IsNull):
        collect_aggregates(expr.operand, into)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            collect_aggregates(arg, into)
    elif isinstance(expr, CaseWhen):
        for condition, value in expr.branches:
            collect_aggregates(condition, into)
            collect_aggregates(value, into)
        if expr.default is not None:
            collect_aggregates(expr.default, into)
    elif isinstance(expr, InList):
        collect_aggregates(expr.operand, into)


def collect_column_refs(expr: Expression, into: list[ColumnRef]) -> None:
    """Append every ColumnRef of the tree to ``into`` (order-preserving)."""
    if isinstance(expr, ColumnRef):
        into.append(expr)
    elif isinstance(expr, BinaryOp):
        collect_column_refs(expr.left, into)
        collect_column_refs(expr.right, into)
    elif isinstance(expr, UnaryOp):
        collect_column_refs(expr.operand, into)
    elif isinstance(expr, IsNull):
        collect_column_refs(expr.operand, into)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            collect_column_refs(arg, into)
    elif isinstance(expr, Aggregate):
        if expr.arg is not None:
            collect_column_refs(expr.arg, into)
    elif isinstance(expr, CaseWhen):
        for condition, value in expr.branches:
            collect_column_refs(condition, into)
            collect_column_refs(value, into)
        if expr.default is not None:
            collect_column_refs(expr.default, into)
    elif isinstance(expr, InList):
        collect_column_refs(expr.operand, into)


def evaluate(expr: Expression, env: Environment) -> Column:
    """Evaluate an expression to a Column of ``env.length`` rows."""
    if isinstance(expr, Literal):
        return Column.constant(expr.value, env.length)
    if isinstance(expr, ColumnRef):
        return env.lookup(expr)
    if isinstance(expr, Aggregate):
        if env.aggregates is None or expr not in env.aggregates:
            raise PlanError("aggregate used outside of an aggregation context")
        return env.aggregates[expr]
    if isinstance(expr, FuncCall):
        fn = env.registry.lookup(expr.name)
        args = []
        for arg in expr.args:
            if isinstance(arg, Literal):
                args.append(ScalarArg(arg.value))
            else:
                args.append(evaluate(arg, env))
        return fn(args, env.length)
    if isinstance(expr, BinaryOp):
        return _binary(expr, env)
    if isinstance(expr, UnaryOp):
        return _unary(expr, env)
    if isinstance(expr, IsNull):
        operand = evaluate(expr.operand, env)
        mask = operand.null_mask()
        values = ~mask if expr.negated else mask.copy()
        return Column(values, BOOL)
    if isinstance(expr, CaseWhen):
        return _case(expr, env)
    if isinstance(expr, InList):
        return _in_list(expr, env)
    if isinstance(expr, Star):
        raise PlanError("'*' is only valid as a top-level select item or in count(*)")
    raise ExecutionError(f"cannot evaluate expression node {type(expr).__name__}")


def truth_values(column: Column) -> np.ndarray:
    """Boolean array for filtering: NULL counts as FALSE."""
    if column.sql_type != BOOL:
        raise PlanError("expected a boolean expression")
    values = column.values.astype(bool, copy=True)
    if column.mask is not None:
        values[column.mask] = False
    return values


_ARITH_OPS = {"+", "-", "*", "/", "%", "||"}
_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


def _binary(expr: BinaryOp, env: Environment) -> Column:
    op = expr.op
    if op in ("and", "or"):
        left = truth_values(evaluate(expr.left, env))
        right = truth_values(evaluate(expr.right, env))
        values = (left & right) if op == "and" else (left | right)
        return Column(values, BOOL)
    left = evaluate(expr.left, env)
    right = evaluate(expr.right, env)
    if op in _COMPARE_OPS:
        return _compare(op, left, right)
    if op in _ARITH_OPS:
        return _arithmetic(op, left, right, env.length)
    raise ExecutionError(f"unknown binary operator {op!r}")


def _compare(op: str, left: Column, right: Column) -> Column:
    lv, rv = left.values, right.values
    if left.sql_type == TEXT or right.sql_type == TEXT:
        if left.sql_type != right.sql_type:
            raise ExecutionError("cannot compare text with non-text")
    ops = {
        "=": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    values = np.asarray(ops[op](lv, rv), dtype=bool)
    # NULL comparisons are FALSE (see module docstring).
    for col in (left, right):
        if col.mask is not None:
            values = values & ~col.mask
    return Column(values, BOOL)


def _arithmetic(op: str, left: Column, right: Column, length: int) -> Column:
    if op == "||":
        values = np.array(
            [f"{a}{b}" for a, b in zip(left.to_list(), right.to_list())], dtype=object
        )
        mask = _mask_or(left, right)
        return Column(values, TEXT, mask)
    if left.sql_type == TEXT or right.sql_type == TEXT:
        raise ExecutionError(f"operator {op!r} is not defined on text")
    mask = _mask_or(left, right)
    if op == "/":
        lv = left.values.astype(np.float64)
        rv = right.values.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = lv / rv
        zero = rv == 0
        if zero.any():
            mask = zero if mask is None else (mask | zero)
        return Column(values, FLOAT64, mask)
    result_type = FLOAT64 if FLOAT64 in (left.sql_type, right.sql_type) else INT64
    lv = left.values
    rv = right.values
    if result_type == FLOAT64:
        lv = lv.astype(np.float64, copy=False)
        rv = rv.astype(np.float64, copy=False)
    if op == "+":
        values = lv + rv
    elif op == "-":
        values = lv - rv
    elif op == "*":
        values = lv * rv
    elif op == "%":
        if (rv == 0).any():
            raise ExecutionError("division by zero in %")
        values = np.fmod(lv, rv)
    else:  # pragma: no cover - guarded by caller
        raise ExecutionError(f"unknown arithmetic operator {op!r}")
    return Column(values, result_type, mask)


def _mask_or(left: Column, right: Column) -> np.ndarray | None:
    if left.mask is None and right.mask is None:
        return None
    return left.null_mask() | right.null_mask()


def _unary(expr: UnaryOp, env: Environment) -> Column:
    operand = evaluate(expr.operand, env)
    if expr.op == "-":
        if operand.sql_type not in (INT64, FLOAT64):
            raise ExecutionError("unary minus on non-numeric value")
        return Column(-operand.values, operand.sql_type, operand.mask)
    if expr.op == "not":
        values = ~truth_values(operand)
        return Column(values, BOOL)
    raise ExecutionError(f"unknown unary operator {expr.op!r}")


def _case(expr: CaseWhen, env: Environment) -> Column:
    conditions = [truth_values(evaluate(c, env)) for c, _ in expr.branches]
    results = [evaluate(v, env) for _, v in expr.branches]
    if expr.default is not None:
        default = evaluate(expr.default, env)
    else:
        default = Column.nulls(env.length, results[0].sql_type)
    sql_type = results[0].sql_type
    for col in results + [default]:
        if col.sql_type == FLOAT64:
            sql_type = FLOAT64
    out_values = default.values.astype(
        results[0].values.dtype if sql_type != TEXT else object, copy=True
    )
    out_mask = default.null_mask().copy()
    decided = np.zeros(env.length, dtype=bool)
    for condition, result in zip(conditions, results):
        take = condition & ~decided
        out_values[take] = result.values[take]
        out_mask[take] = result.null_mask()[take]
        decided |= condition
    return Column(out_values, sql_type, out_mask if out_mask.any() else None)


def _in_list(expr: InList, env: Environment) -> Column:
    operand = evaluate(expr.operand, env)
    hits = np.zeros(env.length, dtype=bool)
    for item in expr.items:
        candidate = evaluate(item, env)
        hits |= truth_values(_compare("=", operand, candidate))
    if expr.negated:
        hits = ~hits
        if operand.mask is not None:
            hits[operand.mask] = False
    return Column(hits, BOOL)
