"""Segment-parallel kernel execution.

The MPP model in :mod:`repro.sqlengine.mpp` assigns rows to segments with a
splitmix64 hash of the key; until now that assignment was accounting-only
and every kernel ran single-threaded over whole columns.  This module makes
the segments real for the two operators that dominate the reproduced
workloads: equi-joins and keyed aggregation.

* :func:`parallel_join_indices` hash-partitions both join inputs by the
  segment assignment (equal keys always co-locate), runs an independent
  hash join per partition on a :class:`~repro.sqlengine.mpp.SegmentPool`
  worker thread, and scatters the per-partition results into the exact
  output order of the single-threaded kernel.

* :func:`parallel_group_aggregate` is partial-then-final aggregation: each
  partition groups its rows and computes complete per-key aggregates (all
  rows of a key live in one partition, in their original relative order, so
  even float sums reduce in the reference order), and the final step merges
  the disjoint per-partition group lists by key.

* :func:`parallel_probe_indexed` parallelises the *indexed* join path —
  the one the hash-partitioned kernel cannot serve, because a cached
  build-side :class:`~repro.sqlengine.operators.KeyIndex` is positional
  and per-partition hash joins would rebuild it from scratch.  Binary-
  search probes are independent per row, so the probe side is split into
  contiguous chunks, each worker runs ``searchsorted`` against the shared
  sorted index, and the chunk outputs concatenate back in probe order —
  trivially identical to the single-threaded sorted-index probe.  Dense
  build-side key ranges take :func:`_parallel_dense_probe` instead: the
  O(span) direct-address table is built once and probed in the same
  contiguous chunks, so an existing index over dense keys no longer forces
  the whole join single-threaded.

Both kernels are **bit-identical** to their single-threaded references —
:func:`~repro.sqlengine.operators.join_indices` and
:func:`group_aggregate` below — which the property tests enforce.  numpy
releases the GIL inside its kernels, so partitions genuinely overlap on
multi-core hosts; the executor only dispatches here above
``PARALLEL_MIN_ROWS`` rows and when the pool has more than one worker.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .errors import ExecutionError
from .mpp import SegmentPool, partition_rows
from .operators import (
    NO_MATCH,
    KeyIndex,
    _boundaries,
    _dense_span_limit,
    _empty_pair,
    _hash_join_int,
    join_indices,
    left_join_indices,
    pad_left_outer,
)
from .types import INT64, Column

#: Below this row count the partitioning overhead outweighs any overlap.
PARALLEL_MIN_ROWS = 1 << 17

#: Aggregate kinds the parallel partial-then-final path supports.
PARALLEL_AGGREGATES = frozenset({"count*", "count", "min", "max", "sum", "avg"})


def _parallel_eligible(columns: list[Column]) -> bool:
    """Single int64-kind key column without NULLs."""
    return (
        len(columns) == 1
        and columns[0].mask is None
        and columns[0].values.dtype.kind == "i"
    )


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def parallel_join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment-parallel inner equi-join, bit-identical to ``join_indices``.

    Inputs outside the parallel kernel's shape (multi-column, text or
    NULL-bearing keys) fall back to the single-threaded kernel.
    """
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return join_indices(left_keys, right_keys, note=note)
    lk = left_keys[0].values
    rk = right_keys[0].values
    n_left = int(lk.shape[0])
    if n_left == 0 or rk.shape[0] == 0:
        if note is not None:
            note.append("empty")
        return _empty_pair()
    if note is not None:
        note.append("parallel-hash")
    n_parts = pool.n_segments
    left_parts = partition_rows(lk, n_parts)
    right_parts = partition_rows(rk, n_parts)

    def join_partition(part: int) -> tuple[np.ndarray, np.ndarray]:
        left_rows = left_parts[part]
        right_rows = right_parts[part]
        if left_rows.size == 0 or right_rows.size == 0:
            return _empty_pair()
        l_local, r_local = _hash_join_int(lk[left_rows], rk[right_rows],
                                          None, None)
        return left_rows[l_local], right_rows[r_local]

    results = pool.map(join_partition, range(n_parts))

    # Reference output order: grouped by left row, ascending; within one
    # left row, right matches in stable key order.  Every left row lives in
    # exactly one partition and each partition's output is already sorted
    # by (global) left row, so per-left-row match counts give each
    # partition an exclusive, contiguous slot range to scatter into.
    match_counts = np.zeros(n_left, dtype=np.int64)
    total = 0
    for left_global, _ in results:
        if left_global.size == 0:
            continue
        total += left_global.size
        run_first, run_lengths = _runs(left_global)
        match_counts[left_global[run_first]] = run_lengths
    if total == 0:
        return _empty_pair()
    starts = np.concatenate(([0], np.cumsum(match_counts)[:-1]))
    out_left = np.empty(total, dtype=np.int64)
    out_right = np.empty(total, dtype=np.int64)
    for left_global, right_global in results:
        if left_global.size == 0:
            continue
        run_first, run_lengths = _runs(left_global)
        within = np.arange(left_global.size) - np.repeat(run_first, run_lengths)
        positions = starts[left_global] + within
        out_left[positions] = left_global
        out_right[positions] = right_global
    return out_left, out_right


def parallel_left_join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment-parallel left outer join (inner join plus NO_MATCH padding,
    exactly like the single-threaded composition)."""
    l_idx, r_idx = parallel_join_indices(left_keys, right_keys, pool, note)
    return pad_left_outer(l_idx, r_idx, len(left_keys[0]))


def _probe_chunks(n_rows: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, in-order chunk bounds covering ``n_rows`` probe rows."""
    bounds = [(n_rows * part) // n_chunks for part in range(n_chunks + 1)]
    return [
        (bounds[part], bounds[part + 1])
        for part in range(n_chunks)
        if bounds[part] < bounds[part + 1]
    ]


def parallel_probe_indexed(
    left_keys: list[Column],
    right_keys: list[Column],
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a cached sorted build-side index in parallel chunks.

    Bit-identical to ``join_indices(..., right_index=right_index)``: the
    probe side is cut into contiguous chunks, so concatenating the chunk
    outputs reproduces the single-threaded probe order exactly (grouped by
    left row ascending; within a row, matches in stable key order).

    Dense build-side key ranges route to :func:`_parallel_dense_probe`
    (the direct-address table is built once, then probed in chunks); shapes
    outside the kernel — multi-column, text or NULL-bearing keys — fall
    back to the single-threaded dispatch.
    """
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return join_indices(left_keys, right_keys, right_index=right_index,
                            note=note)
    lk = left_keys[0].values
    rk = right_keys[0].values
    n_left = int(lk.shape[0])
    n_right = int(rk.shape[0])
    if n_left == 0 or n_right == 0:
        if note is not None:
            note.append("empty")
        return _empty_pair()
    if right_index.min_value is not None:
        span = right_index.max_value - right_index.min_value + 1
        if span <= _dense_span_limit(n_right):
            # Dense build side: build the O(span) direct-address table once,
            # then probe it in parallel chunks (the probes are independent
            # per row, exactly like the sorted-index case below).
            return _parallel_dense_probe(lk, rk, right_index, pool, note)
    # Materialise the lazy index properties once, before worker threads
    # share them.
    sorted_values = right_index.sorted_values
    order = None if right_index.is_sorted else right_index.order
    chunks = _probe_chunks(n_left, pool.n_segments)
    if right_index.is_unique:
        if note is not None:
            note.append("parallel-probe")

        def probe_unique(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            pos = np.searchsorted(sorted_values, sub)
            np.minimum(pos, n_right - 1, out=pos)
            match = sorted_values[pos] == sub
            l_local = np.flatnonzero(match)
            hits = pos[l_local]
            r_local = hits if order is None else order[hits]
            return l_local + start, r_local

        results = pool.map(probe_unique, chunks)
    else:
        if note is not None:
            note.append("parallel-merge-probe")

        def probe_runs(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            lo = np.searchsorted(sorted_values, sub, side="left")
            hi = np.searchsorted(sorted_values, sub, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                return _empty_pair()
            l_local = np.repeat(np.arange(sub.shape[0]), counts)
            run_starts = np.repeat(lo, counts)
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            within = np.arange(total) - np.repeat(offsets, counts)
            r_sorted_pos = run_starts + within
            r_local = r_sorted_pos if order is None else order[r_sorted_pos]
            return l_local + start, r_local

        results = pool.map(probe_runs, chunks)
    return (
        np.concatenate([left for left, _ in results]),
        np.concatenate([right for _, right in results]),
    )


def _parallel_dense_probe(
    lk: np.ndarray,
    rk: np.ndarray,
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunk-parallel probe of a dense direct-address join table.

    Mirrors :func:`~repro.sqlengine.operators._dense_join` bit for bit: the
    O(span) slot (or bucket) table is built once on the calling thread, and
    the probe side is cut into contiguous chunks whose outputs concatenate
    back in probe order — the single-threaded kernel's exact output order.
    Before this kernel, a cached build-side index over a dense key range
    forced the whole join single-threaded; now only the O(n_right) build
    stays serial.
    """
    n_right = int(rk.shape[0])
    rmin = right_index.min_value
    span = right_index.max_value - rmin + 1
    rel_right = rk - rmin
    chunks = _probe_chunks(int(lk.shape[0]), pool.n_segments)
    counts: Optional[np.ndarray] = None
    if right_index.is_unique:
        unique = True
    else:
        counts = np.bincount(rel_right, minlength=span)
        unique = n_right < 2 or int(counts.max()) <= 1
    if unique:
        if note is not None:
            note.append("parallel-dense")
        slots = np.full(span, NO_MATCH, dtype=np.int64)
        slots[rel_right] = np.arange(n_right, dtype=np.int64)

        def probe_unique(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
            candidates = slots[np.where(in_bounds, sub - rmin, 0)]
            match = in_bounds & (candidates != NO_MATCH)
            l_local = np.flatnonzero(match)
            return l_local + start, candidates[l_local]

        results = pool.map(probe_unique, chunks)
    else:
        if note is not None:
            note.append("parallel-dense-merge")
        # Duplicate build keys: the same bucket layout _dense_join builds —
        # right rows grouped by key code via the index's stable order.
        order = right_index.order
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

        def probe_runs(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
            l_rel = np.where(in_bounds, sub - rmin, 0)
            cnt = np.where(in_bounds, counts[l_rel], 0)
            total = int(cnt.sum())
            if total == 0:
                return _empty_pair()
            l_local = np.repeat(np.arange(sub.shape[0]), cnt)
            run_starts = np.repeat(starts[l_rel], cnt)
            offsets = np.concatenate(([0], np.cumsum(cnt)[:-1]))
            within = np.arange(total) - np.repeat(offsets, cnt)
            return l_local + start, order[run_starts + within]

        results = pool.map(probe_runs, chunks)
    return (
        np.concatenate([left for left, _ in results]),
        np.concatenate([right for _, right in results]),
    )


def parallel_left_probe_indexed(
    left_keys: list[Column],
    right_keys: list[Column],
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left-outer variant of :func:`parallel_probe_indexed` (inner probe
    plus NO_MATCH padding, exactly like the single-threaded composition)."""
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return left_join_indices(left_keys, right_keys,
                                 right_index=right_index, note=note)
    l_idx, r_idx = parallel_probe_indexed(left_keys, right_keys, right_index,
                                          pool, note)
    return pad_left_outer(l_idx, r_idx, len(left_keys[0]))


def _runs(sorted_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """First index and length of each equal-value run in a sorted array."""
    change = np.empty(sorted_ids.shape[0], dtype=bool)
    change[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=change[1:])
    run_first = np.flatnonzero(change)
    run_lengths = np.diff(np.append(run_first, sorted_ids.shape[0]))
    return run_first, run_lengths


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


class AggregateSpec:
    """One aggregate to compute: kind plus its (optional) argument column.

    ``kind`` is one of ``PARALLEL_AGGREGATES``; ``count*`` takes no
    argument.  The argument is carried as raw values + null mask + SQL type
    so the reduction mirrors the executor's arithmetic exactly.
    """

    __slots__ = ("kind", "values", "mask", "sql_type")

    def __init__(
        self,
        kind: str,
        values: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
        sql_type: str = INT64,
    ):
        if kind not in PARALLEL_AGGREGATES:
            raise ExecutionError(f"unsupported aggregate kind {kind!r}")
        if kind != "count*" and values is None:
            raise ExecutionError(f"{kind} requires an argument column")
        self.kind = kind
        self.values = values
        self.mask = mask
        self.sql_type = sql_type


def _reduce_slice(
    spec: AggregateSpec,
    rows: Optional[np.ndarray],
    order: np.ndarray,
    starts: np.ndarray,
    row_counts: np.ndarray,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-group reduction over ``rows`` (None = all), grouped by ``order``/
    ``starts``.  Mirrors ``Executor._compute_aggregate`` bit for bit."""
    if spec.kind == "count*":
        return row_counts.astype(np.int64, copy=False), None
    values = spec.values if rows is None else spec.values[rows]
    if spec.mask is None:
        mask = np.zeros(values.shape[0], dtype=bool)
    else:
        mask = spec.mask if rows is None else spec.mask[rows]
    sorted_values = values[order]
    sorted_mask = mask[order]
    valid_counts = np.add.reduceat((~sorted_mask).astype(np.int64), starts)
    if spec.kind == "count":
        return valid_counts, None
    dtype = values.dtype
    if spec.kind in ("min", "max"):
        if spec.sql_type == INT64:
            sentinel = np.iinfo(np.int64).max if spec.kind == "min" \
                else np.iinfo(np.int64).min
        else:
            sentinel = np.inf if spec.kind == "min" else -np.inf
        padded = np.where(sorted_mask, sentinel, sorted_values)
        reducer = np.minimum if spec.kind == "min" else np.maximum
        reduced = reducer.reduceat(padded, starts)
        empty = valid_counts == 0
        return reduced.astype(dtype, copy=False), empty if empty.any() else None
    # sum / avg: float64 accumulation in reference row order.
    padded = np.where(sorted_mask, 0, sorted_values)
    sums = np.add.reduceat(padded.astype(np.float64), starts)
    empty = valid_counts == 0
    empty = empty if empty.any() else None
    if spec.kind == "sum":
        if spec.sql_type == INT64:
            return sums.astype(np.int64), empty
        return sums, empty
    with np.errstate(invalid="ignore", divide="ignore"):
        averages = sums / valid_counts
    return averages, empty


def group_aggregate(
    keys: np.ndarray, specs: list[AggregateSpec]
) -> tuple[np.ndarray, list[tuple[np.ndarray, Optional[np.ndarray]]]]:
    """Single-threaded grouped aggregation: the parallel kernel's reference.

    Returns the sorted unique keys and, per spec, (values, null mask or
    None), one entry per group.
    """
    if keys.shape[0] == 0:
        empty = np.empty(0, dtype=keys.dtype)
        return empty, [
            (np.empty(0, dtype=np.int64), None) for _ in specs
        ]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = _boundaries(sorted_keys)
    row_counts = np.diff(np.append(starts, order.shape[0]))
    unique_keys = sorted_keys[starts]
    results = [
        _reduce_slice(spec, None, order, starts, row_counts) for spec in specs
    ]
    return unique_keys, results


def parallel_group_aggregate(
    keys: np.ndarray,
    specs: list[AggregateSpec],
    pool: SegmentPool,
) -> tuple[np.ndarray, list[tuple[np.ndarray, Optional[np.ndarray]]]]:
    """Partial-then-final grouped aggregation over segment partitions.

    Each partition holds *all* rows of its keys in original relative order,
    so per-partition aggregates are already final for those keys (even
    float sums reduce in the reference order); the final step only merges
    the disjoint per-partition group lists into global key order.
    Bit-identical to :func:`group_aggregate`.
    """
    if keys.shape[0] == 0:
        return group_aggregate(keys, specs)
    n_parts = pool.n_segments
    parts = partition_rows(keys, n_parts)

    def aggregate_partition(part: int):
        rows = parts[part]
        if rows.size == 0:
            return None
        local_keys = keys[rows]
        order = np.argsort(local_keys, kind="stable")
        sorted_keys = local_keys[order]
        starts = _boundaries(sorted_keys)
        row_counts = np.diff(np.append(starts, order.shape[0]))
        results = [
            _reduce_slice(spec, rows, order, starts, row_counts)
            for spec in specs
        ]
        return sorted_keys[starts], results

    partials = [p for p in pool.map(aggregate_partition, range(n_parts))
                if p is not None]
    all_keys = np.concatenate([p[0] for p in partials])
    merge = np.argsort(all_keys, kind="stable")
    unique_keys = all_keys[merge]
    merged: list[tuple[np.ndarray, Optional[np.ndarray]]] = []
    for position, spec in enumerate(specs):
        values = np.concatenate([p[1][position][0] for p in partials])[merge]
        if any(p[1][position][1] is not None for p in partials):
            mask = np.concatenate([
                p[1][position][1]
                if p[1][position][1] is not None
                else np.zeros(p[0].shape[0], dtype=bool)
                for p in partials
            ])[merge]
            mask = mask if mask.any() else None
        else:
            mask = None
        merged.append((values, mask))
    return unique_keys, merged
