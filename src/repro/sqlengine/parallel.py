"""Segment-parallel kernel execution.

The MPP model in :mod:`repro.sqlengine.mpp` assigns rows to segments with a
splitmix64 hash of the key; until now that assignment was accounting-only
and every kernel ran single-threaded over whole columns.  This module makes
the segments real for the two operators that dominate the reproduced
workloads: equi-joins and keyed aggregation.

* :func:`parallel_join_indices` hash-partitions both join inputs by the
  segment assignment (equal keys always co-locate), runs an independent
  hash join per partition on a :class:`~repro.sqlengine.mpp.SegmentPool`
  worker thread, and scatters the per-partition results into the exact
  output order of the single-threaded kernel.

* :func:`parallel_group_aggregate` is partial-then-final aggregation: each
  partition groups its rows and computes complete per-key aggregates (all
  rows of a key live in one partition, in their original relative order, so
  even float sums reduce in the reference order), and the final step merges
  the disjoint per-partition group lists by key.

* :func:`parallel_probe_indexed` parallelises the *indexed* join path —
  the one the hash-partitioned kernel cannot serve, because a cached
  build-side :class:`~repro.sqlengine.operators.KeyIndex` is positional
  and per-partition hash joins would rebuild it from scratch.  Binary-
  search probes are independent per row, so the probe side is split into
  contiguous chunks, each worker runs ``searchsorted`` against the shared
  sorted index, and the chunk outputs concatenate back in probe order —
  trivially identical to the single-threaded sorted-index probe.  Dense
  build-side key ranges take :func:`_parallel_dense_probe` instead: the
  O(span) direct-address table is built once and probed in the same
  contiguous chunks, so an existing index over dense keys no longer forces
  the whole join single-threaded.

Both kernels are **bit-identical** to their single-threaded references —
:func:`~repro.sqlengine.operators.join_indices` and
:func:`group_aggregate` below — which the property tests enforce.  numpy
releases the GIL inside its kernels, so partitions genuinely overlap on
multi-core hosts; the executor only dispatches here above
``PARALLEL_MIN_ROWS`` rows and when the pool has more than one worker.

On a :class:`~repro.sqlengine.mpp.ProcessSegmentPool` the same kernels
run in worker *processes*: the driver exports each input once into a
shared-memory block (see :mod:`repro.sqlengine.shm`) and ships only
``(descriptor, small args)`` payloads; the module-level ``_w_*`` worker
entries rehydrate zero-copy views and execute math identical to the
thread closures — partitions are recomputed worker-side from the same
splitmix64 assignment, chunk outputs concatenate in the same order, and
the driver's scatter recombination is shared by both paths, so labels
stay bit-identical across backends.  Non-shareable payloads (text) and
export failures fall back to the thread closures automatically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .errors import ExecutionError
from .mpp import SegmentPool, hash64, partition_rows
from .shm import attach_array
from .operators import (
    NO_MATCH,
    KeyIndex,
    _boundaries,
    _dense_span_limit,
    _empty_pair,
    _hash_join_int,
    join_indices,
    left_join_indices,
    pad_left_outer,
)
from .types import INT64, Column

#: Below this row count the partitioning overhead outweighs any overlap.
PARALLEL_MIN_ROWS = 1 << 17

#: Aggregate kinds the parallel partial-then-final path supports.
PARALLEL_AGGREGATES = frozenset({"count*", "count", "min", "max", "sum", "avg"})


def _parallel_eligible(columns: list[Column]) -> bool:
    """Single int64-kind key column without NULLs."""
    return (
        len(columns) == 1
        and columns[0].mask is None
        and columns[0].values.dtype.kind == "i"
    )


def _use_processes(pool: SegmentPool) -> bool:
    """True when this pool dispatches kernel partitions to processes."""
    return (
        getattr(pool, "supports_processes", False)
        and pool.n_workers > 1
        and pool.registry is not None
    )


def _partition_of(values: np.ndarray, part: int, n_parts: int) -> np.ndarray:
    """Row indices of one segment partition — ``partition_rows(...)[part]``.

    Recomputed worker-side from the deterministic splitmix64 assignment so
    a process task receives descriptors only, never index arrays.
    """
    seg = (hash64(values) % np.uint64(n_parts)).astype(np.int64)
    return np.flatnonzero(seg == part)


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------


def parallel_join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment-parallel inner equi-join, bit-identical to ``join_indices``.

    Inputs outside the parallel kernel's shape (multi-column, text or
    NULL-bearing keys) fall back to the single-threaded kernel.
    """
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return join_indices(left_keys, right_keys, note=note)
    lk = left_keys[0].values
    rk = right_keys[0].values
    n_left = int(lk.shape[0])
    if n_left == 0 or rk.shape[0] == 0:
        if note is not None:
            note.append("empty")
        return _empty_pair()
    if note is not None:
        note.append("parallel-hash")
    n_parts = pool.n_segments
    results = None
    if _use_processes(pool):
        left_desc = pool.registry.export_column(left_keys[0])
        right_desc = pool.registry.export_column(right_keys[0])
        if left_desc is not None and right_desc is not None:
            results = pool.run_tasks(
                _w_join_partition,
                [(left_desc, right_desc, part, n_parts)
                 for part in range(n_parts)],
            )
    if results is None:
        left_parts = partition_rows(lk, n_parts)
        right_parts = partition_rows(rk, n_parts)

        def join_partition(part: int) -> tuple[np.ndarray, np.ndarray]:
            left_rows = left_parts[part]
            right_rows = right_parts[part]
            if left_rows.size == 0 or right_rows.size == 0:
                return _empty_pair()
            l_local, r_local = _hash_join_int(lk[left_rows], rk[right_rows],
                                              None, None)
            return left_rows[l_local], right_rows[r_local]

        results = pool.map(join_partition, range(n_parts))

    # Reference output order: grouped by left row, ascending; within one
    # left row, right matches in stable key order.  Every left row lives in
    # exactly one partition and each partition's output is already sorted
    # by (global) left row, so per-left-row match counts give each
    # partition an exclusive, contiguous slot range to scatter into.
    match_counts = np.zeros(n_left, dtype=np.int64)
    total = 0
    for left_global, _ in results:
        if left_global.size == 0:
            continue
        total += left_global.size
        run_first, run_lengths = _runs(left_global)
        match_counts[left_global[run_first]] = run_lengths
    if total == 0:
        return _empty_pair()
    starts = np.concatenate(([0], np.cumsum(match_counts)[:-1]))
    out_left = np.empty(total, dtype=np.int64)
    out_right = np.empty(total, dtype=np.int64)
    for left_global, right_global in results:
        if left_global.size == 0:
            continue
        run_first, run_lengths = _runs(left_global)
        within = np.arange(left_global.size) - np.repeat(run_first, run_lengths)
        positions = starts[left_global] + within
        out_left[positions] = left_global
        out_right[positions] = right_global
    return out_left, out_right


def parallel_left_join_indices(
    left_keys: list[Column],
    right_keys: list[Column],
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment-parallel left outer join (inner join plus NO_MATCH padding,
    exactly like the single-threaded composition)."""
    l_idx, r_idx = parallel_join_indices(left_keys, right_keys, pool, note)
    return pad_left_outer(l_idx, r_idx, len(left_keys[0]))


def _probe_chunks(n_rows: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, in-order chunk bounds covering ``n_rows`` probe rows."""
    bounds = [(n_rows * part) // n_chunks for part in range(n_chunks + 1)]
    return [
        (bounds[part], bounds[part + 1])
        for part in range(n_chunks)
        if bounds[part] < bounds[part + 1]
    ]


def parallel_probe_indexed(
    left_keys: list[Column],
    right_keys: list[Column],
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Probe a cached sorted build-side index in parallel chunks.

    Bit-identical to ``join_indices(..., right_index=right_index)``: the
    probe side is cut into contiguous chunks, so concatenating the chunk
    outputs reproduces the single-threaded probe order exactly (grouped by
    left row ascending; within a row, matches in stable key order).

    Dense build-side key ranges route to :func:`_parallel_dense_probe`
    (the direct-address table is built once, then probed in chunks); shapes
    outside the kernel — multi-column, text or NULL-bearing keys — fall
    back to the single-threaded dispatch.
    """
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return join_indices(left_keys, right_keys, right_index=right_index,
                            note=note)
    lk = left_keys[0].values
    rk = right_keys[0].values
    n_left = int(lk.shape[0])
    n_right = int(rk.shape[0])
    if n_left == 0 or n_right == 0:
        if note is not None:
            note.append("empty")
        return _empty_pair()
    if right_index.min_value is not None:
        span = right_index.max_value - right_index.min_value + 1
        if span <= _dense_span_limit(n_right):
            # Dense build side: build the O(span) direct-address table once,
            # then probe it in parallel chunks (the probes are independent
            # per row, exactly like the sorted-index case below).
            return _parallel_dense_probe(left_keys[0], rk, right_index,
                                         pool, note)
    # Materialise the lazy index properties once, before worker threads
    # share them.
    sorted_values = right_index.sorted_values
    order = None if right_index.is_sorted else right_index.order
    chunks = _probe_chunks(n_left, pool.n_segments)
    unique = right_index.is_unique
    if note is not None:
        note.append("parallel-probe" if unique else "parallel-merge-probe")
    results = None
    if _use_processes(pool):
        results = _process_probe_chunks(
            left_keys[0], sorted_values, order, unique, n_right, chunks, pool
        )
    if results is None and unique:

        def probe_unique(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            pos = np.searchsorted(sorted_values, sub)
            np.minimum(pos, n_right - 1, out=pos)
            match = sorted_values[pos] == sub
            l_local = np.flatnonzero(match)
            hits = pos[l_local]
            r_local = hits if order is None else order[hits]
            return l_local + start, r_local

        results = pool.map(probe_unique, chunks)
    elif results is None:

        def probe_runs(bounds: tuple[int, int]):
            start, stop = bounds
            sub = lk[start:stop]
            lo = np.searchsorted(sorted_values, sub, side="left")
            hi = np.searchsorted(sorted_values, sub, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                return _empty_pair()
            l_local = np.repeat(np.arange(sub.shape[0]), counts)
            run_starts = np.repeat(lo, counts)
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            within = np.arange(total) - np.repeat(offsets, counts)
            r_sorted_pos = run_starts + within
            r_local = r_sorted_pos if order is None else order[r_sorted_pos]
            return l_local + start, r_local

        results = pool.map(probe_runs, chunks)
    return (
        np.concatenate([left for left, _ in results]),
        np.concatenate([right for _, right in results]),
    )


def _parallel_dense_probe(
    left_col: Column,
    rk: np.ndarray,
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunk-parallel probe of a dense direct-address join table.

    Mirrors :func:`~repro.sqlengine.operators._dense_join` bit for bit: the
    O(span) slot (or bucket) table is built once on the calling thread, and
    the probe side is cut into contiguous chunks whose outputs concatenate
    back in probe order — the single-threaded kernel's exact output order.
    Before this kernel, a cached build-side index over a dense key range
    forced the whole join single-threaded; now only the O(n_right) build
    stays serial.  On a process pool the slot/bucket tables are exported
    alongside the probe column and each worker probes its chunk out of
    process.
    """
    lk = left_col.values
    n_right = int(rk.shape[0])
    rmin = right_index.min_value
    span = right_index.max_value - rmin + 1
    rel_right = rk - rmin
    chunks = _probe_chunks(int(lk.shape[0]), pool.n_segments)
    counts: Optional[np.ndarray] = None
    if right_index.is_unique:
        unique = True
    else:
        counts = np.bincount(rel_right, minlength=span)
        unique = n_right < 2 or int(counts.max()) <= 1
    if unique:
        if note is not None:
            note.append("parallel-dense")
        slots = np.full(span, NO_MATCH, dtype=np.int64)
        slots[rel_right] = np.arange(n_right, dtype=np.int64)
        results = None
        if _use_processes(pool):
            lk_desc = pool.registry.export_column(left_col)
            slots_desc = pool.registry.export_array(slots)
            if lk_desc is not None and slots_desc is not None:
                results = pool.run_tasks(
                    _w_dense_unique_chunk,
                    [(lk_desc, slots_desc, int(rmin), int(span), start, stop)
                     for start, stop in chunks],
                )
        if results is None:

            def probe_unique(bounds: tuple[int, int]):
                start, stop = bounds
                sub = lk[start:stop]
                in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
                candidates = slots[np.where(in_bounds, sub - rmin, 0)]
                match = in_bounds & (candidates != NO_MATCH)
                l_local = np.flatnonzero(match)
                return l_local + start, candidates[l_local]

            results = pool.map(probe_unique, chunks)
    else:
        if note is not None:
            note.append("parallel-dense-merge")
        # Duplicate build keys: the same bucket layout _dense_join builds —
        # right rows grouped by key code via the index's stable order.
        order = right_index.order
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        results = None
        if _use_processes(pool):
            lk_desc = pool.registry.export_column(left_col)
            counts_desc = pool.registry.export_array(counts)
            starts_desc = pool.registry.export_array(starts)
            order_desc = pool.registry.export_array(order)
            if None not in (lk_desc, counts_desc, starts_desc, order_desc):
                results = pool.run_tasks(
                    _w_dense_runs_chunk,
                    [(lk_desc, counts_desc, starts_desc, order_desc,
                      int(rmin), int(span), start, stop)
                     for start, stop in chunks],
                )
        if results is None:

            def probe_runs(bounds: tuple[int, int]):
                start, stop = bounds
                sub = lk[start:stop]
                in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
                l_rel = np.where(in_bounds, sub - rmin, 0)
                cnt = np.where(in_bounds, counts[l_rel], 0)
                total = int(cnt.sum())
                if total == 0:
                    return _empty_pair()
                l_local = np.repeat(np.arange(sub.shape[0]), cnt)
                run_starts = np.repeat(starts[l_rel], cnt)
                offsets = np.concatenate(([0], np.cumsum(cnt)[:-1]))
                within = np.arange(total) - np.repeat(offsets, cnt)
                return l_local + start, order[run_starts + within]

            results = pool.map(probe_runs, chunks)
    return (
        np.concatenate([left for left, _ in results]),
        np.concatenate([right for _, right in results]),
    )


def parallel_left_probe_indexed(
    left_keys: list[Column],
    right_keys: list[Column],
    right_index: KeyIndex,
    pool: SegmentPool,
    note: Optional[list] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left-outer variant of :func:`parallel_probe_indexed` (inner probe
    plus NO_MATCH padding, exactly like the single-threaded composition)."""
    if not (_parallel_eligible(left_keys) and _parallel_eligible(right_keys)):
        return left_join_indices(left_keys, right_keys,
                                 right_index=right_index, note=note)
    l_idx, r_idx = parallel_probe_indexed(left_keys, right_keys, right_index,
                                          pool, note)
    return pad_left_outer(l_idx, r_idx, len(left_keys[0]))


def _runs(sorted_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """First index and length of each equal-value run in a sorted array."""
    change = np.empty(sorted_ids.shape[0], dtype=bool)
    change[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=change[1:])
    run_first = np.flatnonzero(change)
    run_lengths = np.diff(np.append(run_first, sorted_ids.shape[0]))
    return run_first, run_lengths


# ---------------------------------------------------------------------------
# process-pool worker entries
#
# Module-level so they pickle by reference; each rehydrates its inputs from
# shared-memory descriptors and runs math identical to the thread closure
# it mirrors — the bit-identity contract lives in that line-for-line
# correspondence.
# ---------------------------------------------------------------------------


def _w_join_partition(payload) -> tuple[np.ndarray, np.ndarray]:
    """One hash partition of an inner join, executed in a worker process."""
    left_desc, right_desc, part, n_parts = payload
    lk = attach_array(left_desc)
    rk = attach_array(right_desc)
    left_rows = _partition_of(lk, part, n_parts)
    right_rows = _partition_of(rk, part, n_parts)
    if left_rows.size == 0 or right_rows.size == 0:
        return _empty_pair()
    l_local, r_local = _hash_join_int(lk[left_rows], rk[right_rows],
                                      None, None)
    return left_rows[l_local], right_rows[r_local]


def _w_probe_chunk(payload) -> tuple[np.ndarray, np.ndarray]:
    """One contiguous probe chunk against a shared sorted index."""
    lk_desc, sorted_desc, order_desc, start, stop, unique, n_right = payload
    lk = attach_array(lk_desc)
    sorted_values = attach_array(sorted_desc)
    order = None if order_desc is None else attach_array(order_desc)
    sub = lk[start:stop]
    if unique:
        pos = np.searchsorted(sorted_values, sub)
        np.minimum(pos, n_right - 1, out=pos)
        match = sorted_values[pos] == sub
        l_local = np.flatnonzero(match)
        hits = pos[l_local]
        r_local = hits if order is None else order[hits]
        return l_local + start, r_local
    lo = np.searchsorted(sorted_values, sub, side="left")
    hi = np.searchsorted(sorted_values, sub, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _empty_pair()
    l_local = np.repeat(np.arange(sub.shape[0]), counts)
    run_starts = np.repeat(lo, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(offsets, counts)
    r_sorted_pos = run_starts + within
    r_local = r_sorted_pos if order is None else order[r_sorted_pos]
    return l_local + start, r_local


def _w_dense_unique_chunk(payload) -> tuple[np.ndarray, np.ndarray]:
    """One probe chunk against a shared unique direct-address table."""
    lk_desc, slots_desc, rmin, span, start, stop = payload
    lk = attach_array(lk_desc)
    slots = attach_array(slots_desc)
    sub = lk[start:stop]
    in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
    candidates = slots[np.where(in_bounds, sub - rmin, 0)]
    match = in_bounds & (candidates != NO_MATCH)
    l_local = np.flatnonzero(match)
    return l_local + start, candidates[l_local]


def _w_dense_runs_chunk(payload) -> tuple[np.ndarray, np.ndarray]:
    """One probe chunk against shared duplicate-key dense buckets."""
    (lk_desc, counts_desc, starts_desc, order_desc,
     rmin, span, start, stop) = payload
    lk = attach_array(lk_desc)
    counts = attach_array(counts_desc)
    starts = attach_array(starts_desc)
    order = attach_array(order_desc)
    sub = lk[start:stop]
    in_bounds = (sub >= rmin) & (sub <= rmin + (span - 1))
    l_rel = np.where(in_bounds, sub - rmin, 0)
    cnt = np.where(in_bounds, counts[l_rel], 0)
    total = int(cnt.sum())
    if total == 0:
        return _empty_pair()
    l_local = np.repeat(np.arange(sub.shape[0]), cnt)
    run_starts = np.repeat(starts[l_rel], cnt)
    offsets = np.concatenate(([0], np.cumsum(cnt)[:-1]))
    within = np.arange(total) - np.repeat(offsets, cnt)
    return l_local + start, order[run_starts + within]


def _w_agg_partition(payload):
    """One hash partition of partial-then-final aggregation."""
    keys_desc, spec_payloads, part, n_parts = payload
    keys = attach_array(keys_desc)
    rows = _partition_of(keys, part, n_parts)
    if rows.size == 0:
        return None
    specs = [
        AggregateSpec(
            kind,
            None if values_desc is None else attach_array(values_desc),
            None if mask_desc is None else attach_array(mask_desc),
            sql_type,
        )
        for kind, values_desc, mask_desc, sql_type in spec_payloads
    ]
    local_keys = keys[rows]
    order = np.argsort(local_keys, kind="stable")
    sorted_keys = local_keys[order]
    starts = _boundaries(sorted_keys)
    row_counts = np.diff(np.append(starts, order.shape[0]))
    results = [
        _reduce_slice(spec, rows, order, starts, row_counts) for spec in specs
    ]
    return sorted_keys[starts], results


def _process_probe_chunks(
    left_col: Column,
    sorted_values: np.ndarray,
    order: Optional[np.ndarray],
    unique: bool,
    n_right: int,
    chunks: list[tuple[int, int]],
    pool: SegmentPool,
) -> Optional[list]:
    """Dispatch sorted-index probe chunks to worker processes.

    Returns ``None`` when an input cannot be exported (the caller keeps
    the thread closures).  The probe column is adopted onto shared
    memory; the index arrays are cached by identity, so a warm loop
    re-probing the same stored index exports nothing new.
    """
    registry = pool.registry
    lk_desc = registry.export_column(left_col)
    sorted_desc = registry.export_array(sorted_values)
    if lk_desc is None or sorted_desc is None:
        return None
    order_desc = None
    if order is not None:
        order_desc = registry.export_array(order)
        if order_desc is None:
            return None
    return pool.run_tasks(
        _w_probe_chunk,
        [(lk_desc, sorted_desc, order_desc, start, stop, unique, n_right)
         for start, stop in chunks],
    )


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


class AggregateSpec:
    """One aggregate to compute: kind plus its (optional) argument column.

    ``kind`` is one of ``PARALLEL_AGGREGATES``; ``count*`` takes no
    argument.  The argument is carried as raw values + null mask + SQL type
    so the reduction mirrors the executor's arithmetic exactly.
    """

    __slots__ = ("kind", "values", "mask", "sql_type")

    def __init__(
        self,
        kind: str,
        values: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
        sql_type: str = INT64,
    ):
        if kind not in PARALLEL_AGGREGATES:
            raise ExecutionError(f"unsupported aggregate kind {kind!r}")
        if kind != "count*" and values is None:
            raise ExecutionError(f"{kind} requires an argument column")
        self.kind = kind
        self.values = values
        self.mask = mask
        self.sql_type = sql_type


def _reduce_slice(
    spec: AggregateSpec,
    rows: Optional[np.ndarray],
    order: np.ndarray,
    starts: np.ndarray,
    row_counts: np.ndarray,
) -> tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-group reduction over ``rows`` (None = all), grouped by ``order``/
    ``starts``.  Mirrors ``Executor._compute_aggregate`` bit for bit."""
    if spec.kind == "count*":
        return row_counts.astype(np.int64, copy=False), None
    values = spec.values if rows is None else spec.values[rows]
    if spec.mask is None:
        mask = np.zeros(values.shape[0], dtype=bool)
    else:
        mask = spec.mask if rows is None else spec.mask[rows]
    sorted_values = values[order]
    sorted_mask = mask[order]
    valid_counts = np.add.reduceat((~sorted_mask).astype(np.int64), starts)
    if spec.kind == "count":
        return valid_counts, None
    dtype = values.dtype
    if spec.kind in ("min", "max"):
        if spec.sql_type == INT64:
            sentinel = np.iinfo(np.int64).max if spec.kind == "min" \
                else np.iinfo(np.int64).min
        else:
            sentinel = np.inf if spec.kind == "min" else -np.inf
        padded = np.where(sorted_mask, sentinel, sorted_values)
        reducer = np.minimum if spec.kind == "min" else np.maximum
        reduced = reducer.reduceat(padded, starts)
        empty = valid_counts == 0
        return reduced.astype(dtype, copy=False), empty if empty.any() else None
    # sum / avg: float64 accumulation in reference row order.
    padded = np.where(sorted_mask, 0, sorted_values)
    sums = np.add.reduceat(padded.astype(np.float64), starts)
    empty = valid_counts == 0
    empty = empty if empty.any() else None
    if spec.kind == "sum":
        if spec.sql_type == INT64:
            return sums.astype(np.int64), empty
        return sums, empty
    with np.errstate(invalid="ignore", divide="ignore"):
        averages = sums / valid_counts
    return averages, empty


def group_aggregate(
    keys: np.ndarray, specs: list[AggregateSpec]
) -> tuple[np.ndarray, list[tuple[np.ndarray, Optional[np.ndarray]]]]:
    """Single-threaded grouped aggregation: the parallel kernel's reference.

    Returns the sorted unique keys and, per spec, (values, null mask or
    None), one entry per group.
    """
    if keys.shape[0] == 0:
        empty = np.empty(0, dtype=keys.dtype)
        return empty, [
            (np.empty(0, dtype=np.int64), None) for _ in specs
        ]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = _boundaries(sorted_keys)
    row_counts = np.diff(np.append(starts, order.shape[0]))
    unique_keys = sorted_keys[starts]
    results = [
        _reduce_slice(spec, None, order, starts, row_counts) for spec in specs
    ]
    return unique_keys, results


def _process_group_aggregate(
    keys: np.ndarray,
    specs: list[AggregateSpec],
    pool: SegmentPool,
    n_parts: int,
) -> Optional[list]:
    """Dispatch aggregation partitions to worker processes.

    Ships the key column plus each aggregate argument (and its null mask)
    as descriptors; partial results — one small per-key block per
    partition — come back pickled.  Returns ``None`` when any input is
    non-shareable, keeping the thread path as fallback.
    """
    registry = pool.registry
    keys_desc = registry.export_array(keys)
    if keys_desc is None:
        return None
    spec_payloads = []
    for spec in specs:
        values_desc = mask_desc = None
        if spec.values is not None:
            values_desc = registry.export_array(spec.values)
            if values_desc is None:
                return None
        if spec.mask is not None:
            mask_desc = registry.export_array(spec.mask)
            if mask_desc is None:
                return None
        spec_payloads.append((spec.kind, values_desc, mask_desc, spec.sql_type))
    return pool.run_tasks(
        _w_agg_partition,
        [(keys_desc, spec_payloads, part, n_parts) for part in range(n_parts)],
    )


def parallel_group_aggregate(
    keys: np.ndarray,
    specs: list[AggregateSpec],
    pool: SegmentPool,
) -> tuple[np.ndarray, list[tuple[np.ndarray, Optional[np.ndarray]]]]:
    """Partial-then-final grouped aggregation over segment partitions.

    Each partition holds *all* rows of its keys in original relative order,
    so per-partition aggregates are already final for those keys (even
    float sums reduce in the reference order); the final step only merges
    the disjoint per-partition group lists into global key order.
    Bit-identical to :func:`group_aggregate`.
    """
    if keys.shape[0] == 0:
        return group_aggregate(keys, specs)
    n_parts = pool.n_segments
    raw = None
    if _use_processes(pool):
        raw = _process_group_aggregate(keys, specs, pool, n_parts)
    if raw is None:
        parts = partition_rows(keys, n_parts)

        def aggregate_partition(part: int):
            rows = parts[part]
            if rows.size == 0:
                return None
            local_keys = keys[rows]
            order = np.argsort(local_keys, kind="stable")
            sorted_keys = local_keys[order]
            starts = _boundaries(sorted_keys)
            row_counts = np.diff(np.append(starts, order.shape[0]))
            results = [
                _reduce_slice(spec, rows, order, starts, row_counts)
                for spec in specs
            ]
            return sorted_keys[starts], results

        raw = pool.map(aggregate_partition, range(n_parts))
    partials = [p for p in raw if p is not None]
    all_keys = np.concatenate([p[0] for p in partials])
    merge = np.argsort(all_keys, kind="stable")
    unique_keys = all_keys[merge]
    merged: list[tuple[np.ndarray, Optional[np.ndarray]]] = []
    for position, spec in enumerate(specs):
        values = np.concatenate([p[1][position][0] for p in partials])[merge]
        if any(p[1][position][1] is not None for p in partials):
            mask = np.concatenate([
                p[1][position][1]
                if p[1][position][1] is not None
                else np.zeros(p[0].shape[0], dtype=bool)
                for p in partials
            ])[merge]
            mask = mask if mask.any() else None
        else:
            mask = None
        merged.append((values, mask))
    return unique_keys, merged
