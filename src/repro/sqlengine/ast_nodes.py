"""Abstract syntax tree for the engine's SQL dialect.

All nodes are frozen dataclasses, so structural equality works — the
planner relies on that to match ``GROUP BY`` expressions against select-list
subexpressions (e.g. the paper's ``select v1 v, least(...) ... group by v1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """Placeholder for an integer constant inside a cached statement template.

    Never survives to execution: the plan cache substitutes the statement's
    actual constants into its template AST before handing it to the
    executor (see :mod:`repro.sqlengine.plancache`).

    ``negated`` marks a placeholder behind a unary minus: the parser folds
    ``-<int>`` into a negative literal, so ``-$k`` must patch to the folded
    form for template verification to hold (the randomisation constants of
    the reproduced algorithms are negative half the time).
    """

    index: int
    negated: bool = False


@dataclass(frozen=True)
class Literal:
    """A constant: integer, float, string, boolean or NULL (value=None)."""

    value: object


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference ``[table.]name``."""

    table: Optional[str]
    name: str

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class FuncCall:
    """A scalar function call (built-in or user-defined)."""

    name: str
    args: Tuple["Expression", ...]


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call: min/max/sum/count/avg; arg None means count(*)."""

    name: str
    arg: Optional["Expression"]
    distinct: bool = False


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator: arithmetic, comparison, AND/OR."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator: ``-`` or NOT."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class CaseWhen:
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: Tuple[Tuple["Expression", "Expression"], ...]
    default: Optional["Expression"]


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (literal, ...)``."""

    operand: "Expression"
    items: Tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class Star:
    """``*`` in a select list or ``count(*)``."""


Expression = Union[
    Literal, ColumnRef, FuncCall, Aggregate, BinaryOp, UnaryOp, IsNull, CaseWhen,
    InList, Star,
]

# ---------------------------------------------------------------------------
# Relations and query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expression
    alias: Optional[str]


@dataclass(frozen=True)
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str]

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A parenthesised subquery in FROM, always aliased."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


FromItem = Union[TableRef, SubqueryRef]


@dataclass(frozen=True)
class Join:
    """An explicit JOIN clause attached to the FROM list."""

    kind: str  # "inner" or "left"
    table: FromItem
    condition: Expression


@dataclass(frozen=True)
class SelectCore:
    """One SELECT ... FROM ... WHERE ... GROUP BY ... block."""

    distinct: bool
    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()


@dataclass(frozen=True)
class Select:
    """A UNION ALL chain of select cores (usually of length one)."""

    cores: Tuple[SelectCore, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CreateTableAs:
    """``CREATE TABLE name AS select [DISTRIBUTED BY (col) | RANDOMLY]``."""

    name: str
    select: Select
    distributed_by: Optional[str] = None
    temp: bool = False


@dataclass(frozen=True)
class CreateTable:
    """``CREATE TABLE name (col type, ...) [DISTRIBUTED BY (col)]``."""

    name: str
    columns: Tuple[Tuple[str, str], ...]
    distributed_by: Optional[str] = None
    temp: bool = False


@dataclass(frozen=True)
class InsertValues:
    """``INSERT INTO name [(cols)] VALUES (..), (..)``."""

    name: str
    columns: Optional[Tuple[str, ...]]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class InsertSelect:
    """``INSERT INTO name [(cols)] select``."""

    name: str
    columns: Optional[Tuple[str, ...]]
    select: Select


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE [IF EXISTS] name [, name ...]``."""

    names: Tuple[str, ...]
    if_exists: bool = False


@dataclass(frozen=True)
class AlterRename:
    """``ALTER TABLE old RENAME TO new``."""

    old: str
    new: str


@dataclass(frozen=True)
class TruncateTable:
    """``TRUNCATE [TABLE] name``."""

    name: str


Statement = Union[
    Select, CreateTableAs, CreateTable, InsertValues, InsertSelect, DropTable,
    AlterRename, TruncateTable,
]
