"""Compiled physical plans: the per-template execution strategy cache.

PR 1 cached parsed ASTs per statement *template* (same SQL up to table-name
suffixes and integer constants).  Execution, however, still re-derived the
whole physical strategy from scratch every round: predicate classification,
greedy join ordering, co-location (motion) verdicts, projection wiring.
This module compiles all of that once per template into a
:class:`PhysicalPlan` that subsequent executions of the same template
re-run directly.

A physical plan is compiled against the *patched* template AST and holds
references to its nodes.  The plan cache patches parameters into those same
nodes in place before every execution, so per-round values (table-name
suffixes, randomisation constants) are always current while everything
structural — join order, key columns, pushed-down filters, distribution
sets — is reused.  Validity is re-checked cheaply before each reuse:

* every FROM-item binding must still equal the binding the plan was
  compiled for (a parameterised alias that actually changes between
  executions invalidates the plan), and
* every referenced stored table must still exist with the same column list
  and distribution column (schema fingerprint).  Data changes — the
  per-round table churn — do *not* invalidate a plan: all data-dependent
  choices (index availability, kernel dispatch, motion byte counts) are
  resolved against live table state at execution time.

The compiler also wires in **pipeline fusion** (enabled via ``fuse``):

* **column pruning** — each join step gathers only the columns consumed
  downstream (later join keys, residual predicates, projection,
  aggregation) instead of materialising every column of both inputs; and
* **fused join→DISTINCT** — a ``SELECT DISTINCT col, ...`` directly above
  the final join skips the intermediate frame and relation entirely: the
  executor runs the join kernel, gathers exactly the projected columns,
  applies the residual filter and deduplicates in one pass; and
* **fused join→GROUP BY** — a GROUP BY whose keys live on the left side of
  the final join aggregates directly over the probe stream: only aggregate
  arguments and residual inputs are gathered, and the grouping order is
  computed on the pre-join left side (cached-index aware) and expanded
  through the join's monotone left-row indices, so the joined group-key
  column is never materialised or sorted at output size; and
* **join-chain fusion** — a pipeline of two or more joins (``chain``)
  streams through composed row-index maps: a join feeding another join's
  build side never materialises its output, and each downstream-consumed
  column is gathered exactly once across the whole chain (see
  ``_JoinChain`` in the executor).  LEFT OUTER JOINs take part like any
  other step — their null-extended rows travel as validity markers in the
  composed maps — so the fused DISTINCT/GROUP BY finals apply to the last
  join in execution order, outer or inner.

Compiling ``fuse=False`` reproduces the seed's materialising pipeline,
which the benchmarks use as the comparison baseline and the property tests
use as the reference for bit-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FromItem,
    Select,
    SelectCore,
    Statement,
    SubqueryRef,
    TableRef,
)
from .errors import PlanError
from .expressions import (
    collect_aggregates,
    collect_column_refs,
    contains_aggregate,
)
from .table import Catalog


# ---------------------------------------------------------------------------
# predicate analysis helpers (shared with the executor)
# ---------------------------------------------------------------------------


def _conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Flatten a predicate into AND-connected conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _ref_binding(ref: ColumnRef, bindings: dict[str, list[str]]) -> Optional[str]:
    if ref.table is not None:
        return ref.table if ref.table in bindings else None
    owners = [b for b, cols in bindings.items() if ref.name in cols]
    if len(owners) == 1:
        return owners[0]
    return None


def _bindings_of(
    expr: Expression, binding_columns: dict[str, set[str]]
) -> set[str]:
    refs: list[ColumnRef] = []
    collect_column_refs(expr, refs)
    touched: set[str] = set()
    for ref in refs:
        if ref.table is not None:
            touched.add(ref.table)
        else:
            owners = [b for b, cols in binding_columns.items() if ref.name in cols]
            if len(owners) == 1:
                touched.add(owners[0])
            else:
                # Ambiguous or unknown: treat as touching everything so the
                # predicate is applied after all joins (and resolution errors
                # surface with a clear message there).
                touched.update(binding_columns.keys())
    return touched


def _as_join_edge(
    expr: Expression, binding_columns: dict[str, set[str]]
) -> Optional[tuple[str, str, ColumnRef, ColumnRef]]:
    """Return (binding_a, binding_b, ref_a, ref_b) for `a.x = b.y` predicates."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    bindings = {b: list(cols) for b, cols in binding_columns.items()}
    left_binding = _ref_binding(left, bindings)
    right_binding = _ref_binding(right, bindings)
    if left_binding is None or right_binding is None:
        return None
    if left_binding == right_binding:
        return None
    return left_binding, right_binding, left, right


def _edge_bindings(edge: tuple[str, str, ColumnRef, ColumnRef]) -> set[str]:
    return {edge[0], edge[1]}


def _qualify(ref: ColumnRef, bindings: dict[str, list[str]]) -> str:
    """Resolve a column reference to its ``binding.column`` key (mirrors
    ``Executor._qualified`` including its error messages)."""
    if ref.table is not None:
        if ref.table not in bindings or ref.name not in bindings[ref.table]:
            raise PlanError(f"unknown column {ref.display()!r}")
        return f"{ref.table}.{ref.name}"
    candidates = [
        f"{binding}.{ref.name}"
        for binding, cols in bindings.items()
        if ref.name in cols
    ]
    if not candidates:
        raise PlanError(f"unknown column {ref.name!r}")
    if len(candidates) > 1:
        raise PlanError(f"ambiguous column {ref.name!r}")
    return candidates[0]


# ---------------------------------------------------------------------------
# plan structures
# ---------------------------------------------------------------------------


@dataclass
class ScanPlan:
    """One FROM item: a stored-table scan or a planned subquery."""

    item: FromItem  # AST node; the plan cache patches its name in place
    binding: str
    columns: tuple[str, ...]
    distribution: frozenset[str]
    filters: list[Expression] = field(default_factory=list)
    subplan: Optional["SelectPlan"] = None


@dataclass
class JoinStepPlan:
    """One step of the greedy join pipeline (equi-join or cartesian)."""

    binding: str  # the right-side binding this step joins in
    cartesian: bool
    left_names: list[str]  # qualified key names on the accumulated left side
    right_names: list[str]
    left_gather: list[str]  # columns materialised from the left frame
    right_gather: list[str]  # columns materialised from the right frame
    out_bindings: dict[str, list[str]]
    out_distribution: frozenset[str]
    kernel: str = ""  # last kernel strategy the dispatch picked (telemetry)


@dataclass
class LeftJoinPlan:
    """A LEFT OUTER JOIN appended after the inner pipeline.

    Shares the join-step surface the executor's chain/fused runners read
    (``binding``, key names, gather lists, output wiring, ``kernel``
    telemetry) so an outer join can occupy any chain position — including
    the fused final — without special-casing; ``cartesian`` is a constant
    because a LEFT JOIN always has at least one equality edge.
    """

    scan: ScanPlan
    left_names: list[str]
    right_names: list[str]
    left_gather: list[str]
    right_gather: list[str]
    out_bindings: dict[str, list[str]]
    out_distribution: frozenset[str]
    binding: str = ""
    kernel: str = ""  # last kernel strategy the dispatch picked (telemetry)
    cartesian: bool = False


@dataclass
class FusedDistinctPlan:
    """SELECT DISTINCT of plain columns directly above the final join.

    The executor runs the final join kernel, gathers only ``left_gather`` /
    ``right_gather``, filters by the residual predicates and deduplicates —
    one fused pipeline instead of frame + projection + distinct.
    """

    left_gather: list[str]
    right_gather: list[str]
    bare_names: dict[str, str]  # bare name -> qualified, for the filter env
    out_keys: list[str]  # storage keys, one per select item
    out_quals: list[str]  # qualified source column per item
    display: list[str]
    out_distribution: Optional[str]


@dataclass
class FusedGroupPlan:
    """GROUP BY directly above the final join.

    The executor runs the final join kernel, gathers only the aggregate
    arguments and residual inputs, and aggregates straight over the probe
    stream.  When every group key lives on the accumulated left side, the
    grouping order is computed on the *pre-join* left side (cached-index
    aware, ``n_left`` rows) and expanded through the join's monotone
    left-row indices, so the joined group-key column is never materialised
    and never sorted at output size.  When a key lives on the final join's
    right (build) binding — ``keys_on_right`` — the key columns are
    gathered once through the join's output indices instead (a left-outer
    final resolves its ``NO_MATCH`` markers into the keys' null masks, so
    padded rows form their own NULL-key groups) and grouped at output
    size; the rest of the frame still never materialises.
    """

    key_quals: list[str]  # qualified group keys, one per GROUP BY expr
    key_bares: list[Optional[str]]  # bare spelling of each key ref, if any
    left_gather: list[str]  # row-level columns gathered from the left frame
    right_gather: list[str]  # ... and from the right frame
    bare_names: dict[str, str]  # bare name -> qualified, for the row env
    colocated: bool  # group keys lie inside the join output's distribution
    keys_on_right: bool = False  # a key lives on the final right binding


@dataclass
class CorePlan:
    """The compiled pipeline of one SELECT core.

    ``chain`` marks a join pipeline of two or more joins (inner steps plus
    left outer joins) compiled with fusion: the executor streams it
    through composed row-index maps (a join feeding another join's build
    side never materialises the intermediate — every downstream-consumed
    column is gathered exactly once, across the whole chain).
    """

    core: SelectCore
    scans: list[ScanPlan]
    steps: list[JoinStepPlan]
    left_joins: list[LeftJoinPlan]
    residual: list[Expression]
    is_aggregate: bool
    out_names: list[str]
    display_names: list[str]
    out_distribution: Optional[str]
    fused: Optional[FusedDistinctPlan]
    fused_group: Optional[FusedGroupPlan] = None
    chain: bool = False
    #: The pipeline's final join in execution order (left joins run after
    #: every inner step) — the operator a fused final fuses.  Compiled
    #: here so the executor and the compiler can never disagree on it.
    final_join: object = None


@dataclass
class SelectPlan:
    """A planned SELECT statement (one CorePlan per UNION ALL arm)."""

    select: Select
    cores: list[CorePlan]


@dataclass
class PhysicalPlan:
    """A compiled statement: the select pipeline plus its validity checks."""

    statement: Statement
    select_plan: SelectPlan
    #: (TableRef node, expected column tuple, expected distribution column)
    table_checks: list[tuple]
    #: (FromItem node, binding the plan was compiled for)
    binding_checks: list[tuple]
    #: (ColumnRef node, table, name) — every reference whose resolved
    #: qualified name may be baked into the plan (join keys, gather lists,
    #: fused projections).  Digit suffixes of column names are template
    #: parameters like everything else, so a later statement can patch a
    #: *different* column into the same node; the plan must notice.
    ref_checks: list[tuple]
    #: (SelectItem node, alias) — output aliases baked into compiled names.
    alias_checks: list[tuple]


def compile_statement(
    statement: Statement, catalog: Catalog, fuse: bool = True
) -> Optional[PhysicalPlan]:
    """Compile the physical plan of a statement containing a SELECT.

    Returns ``None`` for statements without one (pure DDL/DML), which need
    no physical planning.
    """
    if isinstance(statement, Select):
        select = statement
    else:
        select = getattr(statement, "select", None)
    if not isinstance(select, Select):
        return None
    compiler = _Compiler(catalog, fuse)
    select_plan = compiler.compile_select(select)
    return PhysicalPlan(
        statement, select_plan, compiler.table_checks,
        compiler.binding_checks, compiler.ref_checks, compiler.alias_checks,
    )


def plan_is_valid(plan: PhysicalPlan, catalog: Catalog) -> bool:
    """Cheap pre-execution validity check for a cached physical plan.

    Confirms the patched AST still names the bindings the plan was compiled
    for and that every referenced stored table exists with an unchanged
    schema fingerprint.  Data content is deliberately not part of the
    check: kernel dispatch and motion byte counts read live table state.
    """
    for node, binding in plan.binding_checks:
        if node.binding != binding:
            return False
    for node, table, name in plan.ref_checks:
        if node.table != table or node.name != name:
            return False
    for node, alias in plan.alias_checks:
        if node.alias != alias:
            return False
    for node, columns, distribution_column in plan.table_checks:
        if node.name not in catalog:
            return False
        table = catalog.get(node.name)
        if tuple(table.column_names) != columns:
            return False
        if table.distribution_column != distribution_column:
            return False
    return True


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class _Compiler:
    def __init__(self, catalog: Catalog, fuse: bool):
        self.catalog = catalog
        self.fuse = fuse
        self.table_checks: list[tuple] = []
        self.binding_checks: list[tuple] = []
        self.ref_checks: list[tuple] = []
        self.alias_checks: list[tuple] = []

    def _record_core_checks(self, core: SelectCore) -> None:
        """Snapshot every column ref and output alias of a core.

        The plan compiles their *current* values into name strings; the
        validity check compares these snapshots against the re-patched AST
        so a template whose parameters reach into identifier names can
        never execute a stale plan.
        """
        refs: list[ColumnRef] = []
        for item in core.items:
            collect_column_refs(item.expr, refs)
            self.alias_checks.append((item, item.alias))
        if core.where is not None:
            collect_column_refs(core.where, refs)
        for join in core.joins:
            collect_column_refs(join.condition, refs)
        for expr in core.group_by:
            collect_column_refs(expr, refs)
        for ref in refs:
            self.ref_checks.append((ref, ref.table, ref.name))

    # -- selects ---------------------------------------------------------

    def compile_select(self, select: Select) -> SelectPlan:
        cores = [self.compile_core(c) for c in select.cores]
        if len(cores) > 1:
            # UNION ALL arity is a static property of the compiled arms;
            # checking it here means a malformed statement fails before any
            # arm executes (and before arms fan out on the segment pool).
            width = len(cores[0].out_names)
            for other in cores[1:]:
                if len(other.out_names) != width:
                    raise PlanError(
                        "UNION ALL arms have different column counts"
                    )
        return SelectPlan(select, cores)

    def compile_scan(self, item: FromItem) -> ScanPlan:
        if isinstance(item, TableRef):
            table = self.catalog.get(item.name)
            binding = item.binding
            columns = tuple(table.column_names)
            distribution = frozenset(
                {f"{binding}.{table.distribution_column}"}
                if table.distribution_column
                else set()
            )
            self.table_checks.append(
                (item, columns, table.distribution_column)
            )
            self.binding_checks.append((item, binding))
            return ScanPlan(item, binding, columns, distribution)
        if isinstance(item, SubqueryRef):
            subplan = self.compile_select(item.select)
            binding = item.alias
            # A UNION ALL subquery exposes the first arm's storage names and
            # no distribution, mirroring Executor.run_select.
            first = subplan.cores[0]
            columns = tuple(first.out_names)
            inner_distribution = (
                first.out_distribution if len(subplan.cores) == 1 else None
            )
            distribution = frozenset(
                {f"{binding}.{inner_distribution}"} if inner_distribution else set()
            )
            self.binding_checks.append((item, binding))
            return ScanPlan(item, binding, columns, distribution,
                            subplan=subplan)
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    # -- one core --------------------------------------------------------

    def compile_core(self, core: SelectCore) -> CorePlan:
        self._record_core_checks(core)
        is_aggregate = bool(core.group_by) or any(
            contains_aggregate(item.expr) for item in core.items
        )
        if not core.from_items:
            # SELECT without FROM: one anonymous row, nothing to plan.
            out_names, display, _ = self._projected_names(core, [])
            return CorePlan(core, [], [], [], [], is_aggregate,
                            out_names, display, None, None)

        scans: list[ScanPlan] = []
        by_binding: dict[str, ScanPlan] = {}
        order: list[str] = []

        def add_scan(item: FromItem) -> ScanPlan:
            scan = self.compile_scan(item)
            if scan.binding in by_binding:
                raise PlanError(f"duplicate table binding {scan.binding!r}")
            scans.append(scan)
            by_binding[scan.binding] = scan
            order.append(scan.binding)
            return scan

        for item in core.from_items:
            add_scan(item)
        inner_joins = [j for j in core.joins if j.kind == "inner"]
        left_join_items = [j for j in core.joins if j.kind == "left"]
        for join in inner_joins:
            add_scan(join.table)

        predicates = _conjuncts(core.where)
        for join in inner_joins:
            predicates.extend(_conjuncts(join.condition))

        # Classify predicates: pushed filters, equi-join edges, residual.
        binding_columns = {b: set(s.columns) for b, s in by_binding.items()}
        join_edges: list[tuple[str, str, ColumnRef, ColumnRef]] = []
        residual: list[Expression] = []
        for predicate in predicates:
            touched = _bindings_of(predicate, binding_columns)
            if len(touched) == 1 and next(iter(touched)) in by_binding:
                by_binding[next(iter(touched))].filters.append(predicate)
            elif _as_join_edge(predicate, binding_columns) is not None:
                join_edges.append(_as_join_edge(predicate, binding_columns))
            else:
                residual.append(predicate)

        # Greedy join ordering along usable equi-join edges (the same walk
        # the executor used to run per execution).
        acc_bindings: dict[str, list[str]] = {
            order[0]: list(by_binding[order[0]].columns)
        }
        steps: list[JoinStepPlan] = []
        joined = {order[0]}
        pending = [b for b in order[1:]]
        unused_edges = list(join_edges)
        while pending:
            progressed = False
            for binding in list(pending):
                edges = [
                    e for e in unused_edges
                    if (_edge_bindings(e) == {binding} | (_edge_bindings(e) & joined))
                    and binding in _edge_bindings(e)
                    and len(_edge_bindings(e) & joined) == 1
                ]
                if not edges:
                    continue
                steps.append(
                    self._compile_inner(acc_bindings, by_binding[binding], edges)
                )
                acc_bindings[binding] = list(by_binding[binding].columns)
                joined.add(binding)
                pending.remove(binding)
                for e in edges:
                    unused_edges.remove(e)
                progressed = True
                break
            if not progressed:
                binding = pending.pop(0)
                steps.append(JoinStepPlan(binding, True, [], [], [], [], {},
                                          frozenset()))
                acc_bindings[binding] = list(by_binding[binding].columns)
                joined.add(binding)
        # Edges between already-joined bindings become residual filters.
        for _, _, ref_a, ref_b in unused_edges:
            residual.append(BinaryOp("=", ref_a, ref_b))

        left_plans: list[LeftJoinPlan] = []
        for join in left_join_items:
            left_plans.append(self._compile_left(acc_bindings, join))

        all_bindings = dict(acc_bindings)

        needed = self._collect_needed(core, residual, all_bindings, left_plans)
        self._wire_gathers(core, by_binding, order, steps, left_plans, needed)

        out_names, display, qualified_by_output = self._projected_names(
            core, [(b, all_bindings[b]) for b in all_bindings]
        )
        out_distribution = self._compile_out_distribution(
            core, is_aggregate, all_bindings, steps, left_plans, by_binding,
            order, qualified_by_output,
        )

        # The pipeline's final join in execution order (left joins run after
        # every inner step): either a fused final, or the last chain link.
        final_join = left_plans[-1] if left_plans else (
            steps[-1] if steps else None
        )

        fused = None
        if (
            self.fuse
            and core.distinct
            and not is_aggregate
            and final_join is not None
            and not final_join.cartesian
            and core.items
            and all(isinstance(item.expr, ColumnRef) for item in core.items)
            and needed is not None
        ):
            fused = self._compile_fused(
                core, final_join, all_bindings, residual,
                out_names, display, out_distribution,
            )

        fused_group = None
        if (
            self.fuse
            and is_aggregate
            and core.group_by
            and final_join is not None
            and not final_join.cartesian
        ):
            fused_group = self._compile_fused_group(
                core, final_join, all_bindings, residual
            )

        n_joins = len(steps) + len(left_plans)
        return CorePlan(core, scans, steps, left_plans, residual,
                        is_aggregate, out_names, display, out_distribution,
                        fused, fused_group, chain=self.fuse and n_joins >= 2,
                        final_join=final_join)

    # -- inner / left join steps -----------------------------------------

    def _compile_inner(
        self,
        acc_bindings: dict[str, list[str]],
        right: ScanPlan,
        edges: list[tuple[str, str, ColumnRef, ColumnRef]],
    ) -> JoinStepPlan:
        right_bindings = {right.binding: list(right.columns)}
        left_names: list[str] = []
        right_names: list[str] = []
        for _, _, ref_a, ref_b in edges:
            # Orient each edge: one side references the right binding.
            if _ref_binding(ref_b, right_bindings) == right.binding:
                left_ref, right_ref = ref_a, ref_b
            else:
                left_ref, right_ref = ref_b, ref_a
            left_names.append(_qualify(left_ref, acc_bindings))
            right_names.append(_qualify(right_ref, right_bindings))
        distribution = frozenset(left_names) | frozenset(right_names)
        return JoinStepPlan(right.binding, False, left_names, right_names,
                            [], [], {}, distribution)

    def _compile_left(
        self, acc_bindings: dict[str, list[str]], join
    ) -> LeftJoinPlan:
        scan = self.compile_scan(join.table)
        binding = scan.binding
        if binding in acc_bindings:
            raise PlanError(f"duplicate table binding {binding!r}")
        right_bindings = {binding: list(scan.columns)}
        binding_columns = {b: set(cols) for b, cols in acc_bindings.items()}
        binding_columns[binding] = set(scan.columns)
        left_names: list[str] = []
        right_names: list[str] = []
        residual: list[Expression] = []
        for predicate in _conjuncts(join.condition):
            edge = _as_join_edge(predicate, binding_columns)
            if edge is None:
                residual.append(predicate)
                continue
            _, _, ref_a, ref_b = edge
            if _ref_binding(ref_b, right_bindings) == binding:
                left_ref, right_ref = ref_a, ref_b
            elif _ref_binding(ref_a, right_bindings) == binding:
                left_ref, right_ref = ref_b, ref_a
            else:
                residual.append(predicate)
                continue
            left_names.append(_qualify(left_ref, acc_bindings))
            right_names.append(_qualify(right_ref, right_bindings))
        if not left_names:
            raise PlanError("LEFT JOIN requires at least one equality condition")
        if residual:
            raise PlanError("non-equality LEFT JOIN conditions are not supported")
        plan = LeftJoinPlan(scan, left_names, right_names, [], [], {},
                            frozenset(left_names), binding=binding)
        acc_bindings[binding] = list(scan.columns)
        return plan

    # -- column pruning ---------------------------------------------------

    def _collect_needed(
        self,
        core: SelectCore,
        residual: list[Expression],
        all_bindings: dict[str, list[str]],
        left_plans: list[LeftJoinPlan],
    ) -> Optional[set[str]]:
        """Qualified columns the pipeline consumes above the joins, or
        ``None`` when pruning must stay off (``*``, unresolvable refs)."""
        refs: list[ColumnRef] = []
        for item in core.items:
            if not isinstance(item.expr, ColumnRef) and _contains_star(item.expr):
                return None
            collect_column_refs(item.expr, refs)
        for expr in core.group_by:
            collect_column_refs(expr, refs)
        for predicate in residual:
            collect_column_refs(predicate, refs)
        needed: set[str] = set()
        for ref in refs:
            try:
                needed.add(_qualify(ref, all_bindings))
            except PlanError:
                return None
        return needed

    def _wire_gathers(
        self,
        core: SelectCore,
        by_binding: dict[str, ScanPlan],
        order: list[str],
        steps: list[JoinStepPlan],
        left_plans: list[LeftJoinPlan],
        needed: Optional[set[str]],
    ) -> None:
        """Fill each step's gather lists and output bindings.

        With ``needed`` known, every step materialises only the columns
        consumed downstream of it (later join keys, residual predicates,
        projection/aggregation inputs); otherwise every column flows
        through, reproducing the seed's materialising pipeline.
        """
        prune = self.fuse and needed is not None

        def quals(binding: str) -> list[str]:
            return [f"{binding}.{c}" for c in by_binding[binding].columns]

        def lj_quals(plan: LeftJoinPlan) -> list[str]:
            return [f"{plan.scan.binding}.{c}" for c in plan.scan.columns]

        # Forward pass: the left-side column list in front of each step.
        prefix = quals(order[0])
        step_left_cols: list[list[str]] = []
        for step in steps:
            step_left_cols.append(list(prefix))
            prefix = prefix + quals(step.binding)
        left_left_cols: list[list[str]] = []
        for plan in left_plans:
            left_left_cols.append(list(prefix))
            prefix = prefix + lj_quals(plan)

        # Backward pass: what each operator's output must contain.
        downstream: Optional[set[str]] = set(needed) if prune else None
        for plan, left_cols in zip(reversed(left_plans),
                                   reversed(left_left_cols)):
            right_cols = lj_quals(plan)
            if downstream is None:
                plan.left_gather = list(left_cols)
                plan.right_gather = list(right_cols)
            else:
                plan.left_gather = [c for c in left_cols if c in downstream]
                plan.right_gather = [c for c in right_cols if c in downstream]
                downstream = (
                    (downstream - set(right_cols)) | set(plan.left_names)
                )
            plan.out_bindings = _bindings_from(
                plan.left_gather + plan.right_gather, self._binding_order(
                    order, steps, left_plans, plan)
            )
        for step, left_cols in zip(reversed(steps), reversed(step_left_cols)):
            right_cols = quals(step.binding)
            if downstream is None:
                step.left_gather = list(left_cols)
                step.right_gather = list(right_cols)
            else:
                step.left_gather = [c for c in left_cols if c in downstream]
                step.right_gather = [c for c in right_cols if c in downstream]
                downstream = (
                    (downstream - set(right_cols)) | set(step.left_names)
                )
            step.out_bindings = _bindings_from(
                step.left_gather + step.right_gather,
                self._binding_order(order, steps, left_plans, step),
            )

    def _binding_order(self, order, steps, left_plans, upto) -> list[str]:
        """Binding sequence of the frame produced by ``upto``."""
        result = [order[0]]
        for step in steps:
            result.append(step.binding)
            if step is upto:
                return result
        for plan in left_plans:
            result.append(plan.scan.binding)
            if plan is upto:
                return result
        return result

    # -- output wiring -----------------------------------------------------

    def _projected_names(
        self, core: SelectCore, binding_items: list[tuple[str, list[str]]]
    ) -> tuple[list[str], list[str], dict[str, str]]:
        """Mirror of the executor's output naming (stable storage keys,
        display names, and the qualified source of plain column outputs)."""
        bindings = dict(binding_items)
        names: list[str] = []
        display: list[str] = []
        taken: set[str] = set()
        qualified_by_output: dict[str, str] = {}
        position = 0
        is_aggregate = bool(core.group_by) or any(
            contains_aggregate(item.expr) for item in core.items
        )
        for item in core.items:
            if _contains_star(item.expr) and not isinstance(item.expr, ColumnRef):
                if is_aggregate:
                    raise PlanError("'*' cannot be combined with GROUP BY")
                for binding, cols in binding_items:
                    for col in cols:
                        key = col if col not in taken \
                            else f"{col}__{position + 1}"
                        taken.add(key)
                        names.append(key)
                        display.append(col)
                        qualified_by_output[key] = f"{binding}.{col}"
                        position += 1
                continue
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.name
            else:
                name = f"column{position + 1}"
            key = name if name not in taken else f"{name}__{position + 1}"
            taken.add(key)
            names.append(key)
            display.append(name)
            if isinstance(item.expr, ColumnRef):
                try:
                    qualified_by_output[key] = _qualify(item.expr, bindings)
                except PlanError:
                    pass  # the executor raises when it evaluates the item
            position += 1
        return names, display, qualified_by_output

    def _compile_out_distribution(
        self, core, is_aggregate, all_bindings, steps, left_plans,
        by_binding, order, qualified_by_output,
    ) -> Optional[str]:
        if is_aggregate:
            if not core.group_by:
                return None
            first = core.group_by[0]
            if not isinstance(first, ColumnRef):
                return None
            try:
                first_key = _qualify(first, all_bindings)
            except PlanError:
                return None
            for name, qualified in qualified_by_output.items():
                if qualified == first_key:
                    return name
            return None
        final_distribution = self._final_distribution(
            by_binding, order, steps, left_plans
        )
        for name, qualified in qualified_by_output.items():
            if qualified in final_distribution:
                return name
        return None

    def _final_distribution(
        self, by_binding, order, steps, left_plans
    ) -> frozenset:
        if left_plans:
            return left_plans[-1].out_distribution
        if steps:
            return steps[-1].out_distribution
        return by_binding[order[0]].distribution

    # -- fused join -> DISTINCT -------------------------------------------

    def _compile_fused(
        self, core, last_step, all_bindings, residual,
        out_names, display, out_distribution,
    ) -> Optional[FusedDistinctPlan]:
        refs: list[ColumnRef] = []
        for item in core.items:
            collect_column_refs(item.expr, refs)
        for predicate in residual:
            collect_column_refs(predicate, refs)
        bare_names: dict[str, str] = {}
        out_quals: list[str] = []
        for ref in refs:
            qualified = _qualify(ref, all_bindings)
            if ref.table is None:
                bare_names[ref.name] = qualified
        for item in core.items:
            out_quals.append(_qualify(item.expr, all_bindings))
        return FusedDistinctPlan(
            list(last_step.left_gather),
            list(last_step.right_gather),
            bare_names,
            list(out_names),
            out_quals,
            list(display),
            out_distribution,
        )


    # -- fused join -> GROUP BY -------------------------------------------

    def _compile_fused_group(
        self, core, last_step, all_bindings, residual
    ) -> Optional[FusedGroupPlan]:
        """Compile the fused join->GROUP BY shape, or ``None`` if the core
        falls outside it (count(distinct), exotic refs — those keep the
        staged pipeline, including its error reporting)."""
        right_binding = last_step.binding
        key_quals: list[str] = []
        key_bares: list[Optional[str]] = []
        keys_on_right = False
        for expr in core.group_by:
            if not isinstance(expr, ColumnRef):
                return None
            try:
                qualified = _qualify(expr, all_bindings)
            except PlanError:
                return None
            if qualified.split(".", 1)[0] == right_binding:
                # The key is produced by the final join itself: the runner
                # gathers it through the join's output indices (padding
                # included) and groups at output size.
                keys_on_right = True
            key_quals.append(qualified)
            key_bares.append(expr.name)
        aggregates: list = []
        for item in core.items:
            collect_aggregates(item.expr, aggregates)
        if any(node.distinct for node in aggregates):
            # count(distinct ...) consumes row-level key columns.
            return None
        refs: list[ColumnRef] = []
        for node in aggregates:
            if node.arg is not None:
                collect_column_refs(node.arg, refs)
        for predicate in residual:
            collect_column_refs(predicate, refs)
        left_gather: list[str] = []
        right_gather: list[str] = []
        bare_names: dict[str, str] = {}
        for ref in refs:
            try:
                qualified = _qualify(ref, all_bindings)
            except PlanError:
                return None
            gather = (
                right_gather
                if qualified.split(".", 1)[0] == right_binding
                else left_gather
            )
            if qualified not in gather:
                gather.append(qualified)
            if ref.table is None:
                bare_names[ref.name] = qualified
        colocated = bool(last_step.out_distribution & set(key_quals))
        return FusedGroupPlan(key_quals, key_bares, left_gather, right_gather,
                              bare_names, colocated,
                              keys_on_right=keys_on_right)


def _contains_star(expr) -> bool:
    from .ast_nodes import Star

    return isinstance(expr, Star)


def _bindings_from(
    quals: list[str], binding_order: list[str]
) -> dict[str, list[str]]:
    """Group qualified column names into an ordered binding -> columns map."""
    out: dict[str, list[str]] = {b: [] for b in binding_order}
    for qualified in quals:
        binding, column = qualified.split(".", 1)
        out[binding].append(column)
    return out
