"""Execution statistics: the measurement substrate for Tables III–V.

The paper evaluates algorithms on three axes besides wall-clock time:

* **maximum space used** (Table IV) — the peak amount of storage occupied by
  live tables at any point during the run;
* **total data written** (Table V) — every byte ever written into a table,
  which is what a transactional execution would have to retain for rollback;
* **query count** — Randomised Contraction's O(log |V|) bound is stated in
  SQL queries.

:class:`EngineStats` tracks all three plus simulated MPP data motion, and
enforces an optional space budget whose violation the bench harness reports
as "did not finish" — reproducing the DNF cells of Table III.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from .errors import SpaceBudgetExceeded


@dataclass
class QueryRecord:
    """Per-statement log entry."""

    label: str
    sql: str
    rows: int
    bytes_written: int
    motion_bytes: int
    elapsed_seconds: float


@dataclass
class StatsSnapshot:
    """Immutable copy of the counters, for before/after diffing."""

    queries: int
    rows_written: int
    bytes_written: int
    motion_bytes: int
    broadcast_bytes: int
    live_bytes: int
    peak_live_bytes: int
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    index_cache_hits: int = 0
    index_cache_misses: int = 0
    joins_pruned: int = 0
    physical_plan_hits: int = 0
    physical_plan_misses: int = 0
    physical_plan_invalidations: int = 0
    fused_pipelines: int = 0
    fused_group_pipelines: int = 0
    join_chain_fusions: int = 0
    left_chain_fusions: int = 0
    group_sorts_skipped: int = 0
    parallel_partitions: int = 0
    parallel_indexed_probes: int = 0
    parallel_dense_probes: int = 0
    hash_distincts: int = 0
    subquery_cache_hits: int = 0
    subquery_cache_misses: int = 0
    subquery_cache_evictions: int = 0
    overlapped_compositions: int = 0
    dataflow_overlaps: int = 0
    fused_outer_groups: int = 0
    union_arm_overlaps: int = 0
    effects_cache_hits: int = 0
    process_tasks: int = 0
    shm_bytes_exported: int = 0
    stats_merges: int = 0

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``earlier`` (peak is the later peak)."""
        return StatsSnapshot(
            queries=self.queries - earlier.queries,
            rows_written=self.rows_written - earlier.rows_written,
            bytes_written=self.bytes_written - earlier.bytes_written,
            motion_bytes=self.motion_bytes - earlier.motion_bytes,
            broadcast_bytes=self.broadcast_bytes - earlier.broadcast_bytes,
            live_bytes=self.live_bytes,
            peak_live_bytes=self.peak_live_bytes,
            plan_cache_hits=self.plan_cache_hits - earlier.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses - earlier.plan_cache_misses,
            index_cache_hits=self.index_cache_hits - earlier.index_cache_hits,
            index_cache_misses=self.index_cache_misses - earlier.index_cache_misses,
            joins_pruned=self.joins_pruned - earlier.joins_pruned,
            physical_plan_hits=self.physical_plan_hits - earlier.physical_plan_hits,
            physical_plan_misses=self.physical_plan_misses
            - earlier.physical_plan_misses,
            physical_plan_invalidations=self.physical_plan_invalidations
            - earlier.physical_plan_invalidations,
            fused_pipelines=self.fused_pipelines - earlier.fused_pipelines,
            fused_group_pipelines=self.fused_group_pipelines
            - earlier.fused_group_pipelines,
            join_chain_fusions=self.join_chain_fusions
            - earlier.join_chain_fusions,
            left_chain_fusions=self.left_chain_fusions
            - earlier.left_chain_fusions,
            group_sorts_skipped=self.group_sorts_skipped
            - earlier.group_sorts_skipped,
            parallel_partitions=self.parallel_partitions
            - earlier.parallel_partitions,
            parallel_indexed_probes=self.parallel_indexed_probes
            - earlier.parallel_indexed_probes,
            parallel_dense_probes=self.parallel_dense_probes
            - earlier.parallel_dense_probes,
            hash_distincts=self.hash_distincts - earlier.hash_distincts,
            subquery_cache_hits=self.subquery_cache_hits
            - earlier.subquery_cache_hits,
            subquery_cache_misses=self.subquery_cache_misses
            - earlier.subquery_cache_misses,
            subquery_cache_evictions=self.subquery_cache_evictions
            - earlier.subquery_cache_evictions,
            overlapped_compositions=self.overlapped_compositions
            - earlier.overlapped_compositions,
            dataflow_overlaps=self.dataflow_overlaps
            - earlier.dataflow_overlaps,
            fused_outer_groups=self.fused_outer_groups
            - earlier.fused_outer_groups,
            union_arm_overlaps=self.union_arm_overlaps
            - earlier.union_arm_overlaps,
            effects_cache_hits=self.effects_cache_hits
            - earlier.effects_cache_hits,
            process_tasks=self.process_tasks - earlier.process_tasks,
            shm_bytes_exported=self.shm_bytes_exported
            - earlier.shm_bytes_exported,
            stats_merges=self.stats_merges - earlier.stats_merges,
        )


class EngineStats:
    """Mutable statistics accumulator owned by a Database instance.

    Counter updates are guarded by a lock and the per-statement scratch
    counters are thread-local, so statements of an overlapped composition
    (see :mod:`repro.core.randomised_contraction`) can execute on a
    :class:`~repro.sqlengine.mpp.SegmentPool` worker while the driving
    thread runs the next round — totals stay exact and each
    :class:`QueryRecord` attributes bytes/motion to its own statement.
    """

    def __init__(self, space_budget_bytes: Optional[int] = None):
        self.space_budget_bytes = space_budget_bytes
        self.queries = 0
        self.rows_written = 0
        self.bytes_written = 0
        self.motion_bytes = 0
        self.broadcast_bytes = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0
        # Engine-cache effectiveness counters (see plancache.py / table.py).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.index_cache_hits = 0
        self.index_cache_misses = 0
        self.joins_pruned = 0
        # Physical-plan layer counters (see physicalplan.py / executor.py).
        self.physical_plan_hits = 0
        self.physical_plan_misses = 0
        self.physical_plan_invalidations = 0
        self.fused_pipelines = 0
        self.fused_group_pipelines = 0
        self.join_chain_fusions = 0
        self.left_chain_fusions = 0
        self.group_sorts_skipped = 0
        self.parallel_partitions = 0
        self.parallel_indexed_probes = 0
        self.parallel_dense_probes = 0
        self.hash_distincts = 0
        self.subquery_cache_hits = 0
        self.subquery_cache_misses = 0
        self.subquery_cache_evictions = 0
        self.overlapped_compositions = 0
        self.dataflow_overlaps = 0
        self.fused_outer_groups = 0
        self.union_arm_overlaps = 0
        self.effects_cache_hits = 0
        # Process-backend counters (see mpp.ProcessSegmentPool / shm.py).
        self.process_tasks = 0
        self.shm_bytes_exported = 0
        self.stats_merges = 0
        self.log: list[QueryRecord] = []
        self._lock = threading.Lock()
        # Per-statement scratch counters, folded into a QueryRecord by the
        # database façade around each execute() call.  Thread-local so an
        # overlapped composition statement never pollutes the accounting of
        # the statement concurrently executing on the driving thread.
        self._scratch = threading.local()

    def _stmt(self) -> "threading.local":
        scratch = self._scratch
        if not hasattr(scratch, "bytes"):
            scratch.bytes = 0
            scratch.rows = 0
            scratch.motion = 0
        return scratch

    # -- table lifecycle ----------------------------------------------------

    def record_table_created(self, n_bytes: int, n_rows: int) -> None:
        """Account a freshly materialised table and enforce the budget."""
        scratch = self._stmt()
        scratch.bytes += n_bytes
        scratch.rows += n_rows
        with self._lock:
            self.rows_written += n_rows
            self.bytes_written += n_bytes
            self.live_bytes += n_bytes
            if self.live_bytes > self.peak_live_bytes:
                self.peak_live_bytes = self.live_bytes
            live = self.live_bytes
        if (
            self.space_budget_bytes is not None
            and live > self.space_budget_bytes
        ):
            raise SpaceBudgetExceeded(live, self.space_budget_bytes)

    def record_table_dropped(self, n_bytes: int) -> None:
        with self._lock:
            self.live_bytes -= n_bytes

    def record_rows_appended(self, n_bytes: int, n_rows: int) -> None:
        """INSERT accounting (same budget rules as table creation)."""
        self.record_table_created(n_bytes, n_rows)

    # -- data motion ----------------------------------------------------------

    def record_redistribution(self, n_bytes: int) -> None:
        """Rows re-hashed to other segments ahead of a join/aggregation."""
        self._stmt().motion += n_bytes
        with self._lock:
            self.motion_bytes += n_bytes

    def record_broadcast(self, n_bytes: int, n_segments: int) -> None:
        """A small relation replicated to every segment."""
        total = n_bytes * n_segments
        self._stmt().motion += total
        with self._lock:
            self.motion_bytes += total
            self.broadcast_bytes += total

    # -- engine caches --------------------------------------------------------

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def record_plan_cache_hit(self) -> None:
        """A statement executed from a cached parse (zero lexer/parser cost)."""
        self._bump("plan_cache_hits")

    def record_plan_cache_miss(self) -> None:
        """A statement that had to be parsed from scratch."""
        self._bump("plan_cache_misses")

    def record_index_cache_hit(self) -> None:
        """A keyed operator reused a stored table's cached column index."""
        self._bump("index_cache_hits")

    def record_index_cache_miss(self) -> None:
        """A keyed operator built (and cached) a stored column index."""
        self._bump("index_cache_misses")

    def record_join_pruned(self) -> None:
        """A join proven empty from index stats; its data motion was skipped."""
        self._bump("joins_pruned")

    def record_physical_plan_hit(self) -> None:
        """A statement re-executed its template's cached physical plan."""
        self._bump("physical_plan_hits")

    def record_physical_plan_miss(self) -> None:
        """A statement compiled its physical plan from scratch."""
        self._bump("physical_plan_misses")

    def record_physical_plan_invalidation(self) -> None:
        """A cached physical plan failed its validity check (schema or
        binding drift) and was recompiled."""
        self._bump("physical_plan_invalidations")

    def record_fused_pipeline(self) -> None:
        """A join fed DISTINCT through one fused kernel pass instead of
        materialising the intermediate frame and relation."""
        self._bump("fused_pipelines")

    def record_fused_group_pipeline(self) -> None:
        """A join fed GROUP BY through one fused kernel pass: the aggregate
        ran directly over the probe stream instead of a materialised frame."""
        self._bump("fused_group_pipelines")

    def record_join_chain_fusion(self) -> None:
        """A chain of two or more joins streamed through composed row-index
        maps — no intermediate join output was ever materialised."""
        self._bump("join_chain_fusions")

    def record_left_chain_fusion(self) -> None:
        """A LEFT OUTER JOIN streamed inside a fused join chain: its
        null-extended probe rows travelled as a validity mask through the
        composed row maps instead of materialising a padded frame."""
        self._bump("left_chain_fusions")

    def record_group_sort_skipped(self) -> None:
        """A GROUP BY ran sort-free and gather-free because a cached index
        proved its input pre-sorted on disk."""
        self._bump("group_sorts_skipped")

    def record_parallel_partitions(self, n_partitions: int) -> None:
        """A kernel executed segment-parallel over this many partitions."""
        self._bump("parallel_partitions", n_partitions)

    def record_parallel_indexed_probe(self) -> None:
        """A join probed a cached sorted index in parallel chunks."""
        self._bump("parallel_indexed_probes")

    def record_parallel_dense_probe(self) -> None:
        """A dense direct-address join probed its slot table in parallel
        chunks (the build side's cached index no longer forces the
        single-threaded kernel)."""
        self._bump("parallel_dense_probes")

    def record_hash_distinct(self) -> None:
        """A DISTINCT ran on the open-addressing hash kernel (no lexsort)."""
        self._bump("hash_distincts")

    def record_subquery_cache_hit(self) -> None:
        """A statement was served from the subquery/result cache without
        re-executing (template + input-table versions matched)."""
        self._bump("subquery_cache_hits")

    def record_subquery_cache_miss(self) -> None:
        """A cacheable statement executed instead of being served (and,
        when its result passed the admission gate, repopulated the
        cache)."""
        self._bump("subquery_cache_misses")

    def record_subquery_cache_eviction(self) -> None:
        """A template's result-cache LRU overflowed and dropped its oldest
        entry."""
        self._bump("subquery_cache_evictions")

    def record_overlapped_composition(self) -> None:
        """A contraction round's representative composition executed on the
        segment pool, overlapped with the next round's contraction."""
        self._bump("overlapped_compositions")

    def record_dataflow_overlap(self) -> None:
        """The dataflow scheduler dispatched a statement group that is
        independent of — and therefore runs concurrently with — at least
        one other in-flight statement group."""
        self._bump("dataflow_overlaps")

    def record_fused_outer_group(self) -> None:
        """A fused join->GROUP BY grouped through a LEFT OUTER final join:
        null-extended probe rows rode the padded-output contract (or a
        padded right-side key gather) into their NULL-key groups instead of
        forcing the materialising fallback."""
        self._bump("fused_outer_groups")

    def record_union_arm_overlap(self, n_arms: int = 1) -> None:
        """UNION ALL arms executed concurrently on the segment pool while
        the driving thread ran the remaining arms; counted per offloaded
        arm."""
        self._bump("union_arm_overlaps", n_arms)

    def record_effects_cache_hit(self) -> None:
        """The dataflow scheduler derived a statement's read/write table
        sets from a cached plan template instead of a fresh parse."""
        self._bump("effects_cache_hits")

    def record_shm_export(self, n_bytes: int) -> None:
        """A kernel input was copied into a new shared-memory block for
        the process backend (repeat uses of the same column or index array
        attach the existing block and are not counted)."""
        self._bump("shm_bytes_exported", n_bytes)

    def merge_worker_delta(self, delta: dict) -> None:
        """Fold a worker process's counter deltas into the totals.

        Worker kernels cannot touch the driver's counters directly, so
        each process task returns a small ``{counter: increment}`` dict;
        the pool sums them in submission order and hands one merged dict
        here per kernel dispatch — deterministic regardless of worker
        scheduling.  Unknown counter names are a protocol error."""
        with self._lock:
            for counter, by in delta.items():
                current = getattr(self, counter, None)
                if not isinstance(current, int):
                    raise ValueError(
                        f"worker delta names unknown counter {counter!r}"
                    )
                setattr(self, counter, current + int(by))
            self.stats_merges += 1

    # -- statement bracketing -------------------------------------------------

    def scratch_totals(self) -> tuple[int, int, int]:
        """The calling thread's per-statement scratch ``(bytes, rows,
        motion)`` — sampled around work offloaded to a pool worker so its
        delta can be folded back into the owning statement's record."""
        scratch = self._stmt()
        return (scratch.bytes, scratch.rows, scratch.motion)

    def fold_scratch(self, n_bytes: int, n_rows: int, n_motion: int) -> None:
        """Fold a worker thread's scratch delta into the calling thread's
        per-statement scratch.  Worker threads never see
        :meth:`begin_statement`, so a statement that fans UNION ALL arms
        out on the pool re-attributes the workers' bytes/motion here —
        the global totals were already counted under the lock."""
        scratch = self._stmt()
        scratch.bytes += n_bytes
        scratch.rows += n_rows
        scratch.motion += n_motion

    def begin_statement(self) -> None:
        scratch = self._stmt()
        scratch.bytes = 0
        scratch.rows = 0
        scratch.motion = 0

    def end_statement(self, label: str, sql: str, rows: int, elapsed: float) -> None:
        scratch = self._stmt()
        with self._lock:
            self.queries += 1
            self.log.append(
                QueryRecord(
                    label=label,
                    sql=sql if len(sql) <= 200 else sql[:197] + "...",
                    rows=rows,
                    bytes_written=scratch.bytes,
                    motion_bytes=scratch.motion,
                    elapsed_seconds=elapsed,
                )
            )

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> StatsSnapshot:
        return StatsSnapshot(
            queries=self.queries,
            rows_written=self.rows_written,
            bytes_written=self.bytes_written,
            motion_bytes=self.motion_bytes,
            broadcast_bytes=self.broadcast_bytes,
            live_bytes=self.live_bytes,
            peak_live_bytes=self.peak_live_bytes,
            plan_cache_hits=self.plan_cache_hits,
            plan_cache_misses=self.plan_cache_misses,
            index_cache_hits=self.index_cache_hits,
            index_cache_misses=self.index_cache_misses,
            joins_pruned=self.joins_pruned,
            physical_plan_hits=self.physical_plan_hits,
            physical_plan_misses=self.physical_plan_misses,
            physical_plan_invalidations=self.physical_plan_invalidations,
            fused_pipelines=self.fused_pipelines,
            fused_group_pipelines=self.fused_group_pipelines,
            join_chain_fusions=self.join_chain_fusions,
            left_chain_fusions=self.left_chain_fusions,
            group_sorts_skipped=self.group_sorts_skipped,
            parallel_partitions=self.parallel_partitions,
            parallel_indexed_probes=self.parallel_indexed_probes,
            parallel_dense_probes=self.parallel_dense_probes,
            hash_distincts=self.hash_distincts,
            subquery_cache_hits=self.subquery_cache_hits,
            subquery_cache_misses=self.subquery_cache_misses,
            subquery_cache_evictions=self.subquery_cache_evictions,
            overlapped_compositions=self.overlapped_compositions,
            dataflow_overlaps=self.dataflow_overlaps,
            fused_outer_groups=self.fused_outer_groups,
            union_arm_overlaps=self.union_arm_overlaps,
            effects_cache_hits=self.effects_cache_hits,
            process_tasks=self.process_tasks,
            shm_bytes_exported=self.shm_bytes_exported,
            stats_merges=self.stats_merges,
        )

    def reset_peak(self) -> None:
        """Restart peak-space tracking from the current live size.

        Called by the bench harness after loading a dataset so Table IV
        measures the algorithm, not the loader.
        """
        self.peak_live_bytes = self.live_bytes

    def reset(self) -> None:
        budget = self.space_budget_bytes
        live = self.live_bytes
        self.__init__(budget)
        self.live_bytes = live
        self.peak_live_bytes = live
