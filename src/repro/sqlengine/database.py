"""The Database façade: the object user code talks to.

Mirrors the way the paper's Python driver (Appendix A, Figure 8) talks to
HAWQ: ``execute()`` runs one SQL statement and returns the number of rows it
produced (their ``r.log_exec``), tables can be bulk-loaded, user-defined
functions registered, and the engine statistics inspected for the space and
write accounting of Tables IV and V.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

import numpy as np

from .ast_nodes import Select
from .errors import CatalogError, ExecutionError
from .executor import Executor, Relation
from .functions import FunctionRegistry
from .mpp import Cluster, ProcessSegmentPool, SegmentPool
from .parser import parse_script, parse_statement
from .plancache import PlanCache
from .stats import EngineStats
from .table import Catalog, Table
from .types import INT64, Column

#: Subquery result cache admission gate: only small results are retained —
#: the target is the repeated *scalar* subquery (``select count(*) ...``)
#: and small lookup relations, not round tables.
RESULT_CACHE_MAX_ROWS = 128
RESULT_CACHE_MAX_BYTES = 1 << 16
#: Entries retained per template (an LRU keyed on parameters + table
#: fingerprints): alternating parameter sets stay warm side by side
#: instead of thrashing a single slot.
RESULT_CACHE_MAX_ENTRIES = 8


class ResultSet:
    """The outcome of one ``execute()`` call."""

    def __init__(self, relation: Optional[Relation], rowcount: int):
        self._relation = relation
        self.rowcount = rowcount

    @property
    def relation(self) -> Relation:
        if self._relation is None:
            raise ExecutionError("statement did not produce rows")
        return self._relation

    def rows(self, limit: Optional[int] = None) -> list[tuple]:
        return self.relation.rows(limit=limit)

    def scalar(self) -> object:
        """The single value of a one-row, one-column result."""
        relation = self.relation
        if relation.n_rows != 1 or len(relation.names) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {relation.n_rows} row(s)"
            )
        return relation.rows(limit=1)[0][0]

    def column(self, name: str) -> np.ndarray:
        return self.relation.column(name).values

    @property
    def names(self) -> list[str]:
        return list(self.relation.names)


class Database:
    """An in-process MPP-simulating SQL database.

    Parameters
    ----------
    n_segments:
        Number of virtual MPP segments (the paper's cluster had 5 nodes x 12
        cores; motion accounting scales with this).
    space_budget_bytes:
        Optional cap on live table space.  Exceeding it raises
        :class:`~repro.sqlengine.errors.SpaceBudgetExceeded`, which the bench
        harness reports as "did not finish" (Table III).
    pool_backend:
        ``"thread"`` (default) or ``"process"``.  The process backend runs
        the per-segment kernels in worker processes over shared-memory
        column buffers — same kernels, bit-identical labels, no shared
        GIL.  Defaults to the ``REPRO_POOL_BACKEND`` environment variable
        when unset.  Space-budgeted databases always fall back to threads:
        budget enforcement samples live bytes synchronously on every
        allocation, a contract worker processes cannot honour.
    pool_workers:
        Force the pool's worker count (CLI ``--workers``; tests use it to
        exercise multi-worker paths on small hosts).
    """

    def __init__(
        self,
        n_segments: int = 4,
        space_budget_bytes: Optional[int] = None,
        broadcast_row_limit: int = 4096,
        use_plan_cache: bool = True,
        use_index_cache: bool = True,
        use_physical_plans: bool = True,
        use_fusion: bool = True,
        use_result_cache: bool = True,
        parallel: Optional[bool] = None,
        pool_backend: Optional[str] = None,
        pool_workers: Optional[int] = None,
    ):
        self.catalog = Catalog()
        self.registry = FunctionRegistry()
        self.cluster = Cluster(n_segments, broadcast_row_limit)
        self.stats = EngineStats(space_budget_bytes)
        if pool_backend is None:
            pool_backend = (
                os.environ.get("REPRO_POOL_BACKEND", "").strip().lower()
                or "thread"
            )
        if pool_backend not in ("thread", "process"):
            raise ValueError(f"unknown pool backend {pool_backend!r}")
        if pool_backend == "process" and space_budget_bytes is not None:
            pool_backend = "thread"
        #: Segment-parallel kernel execution.  ``None`` auto-sizes the pool
        #: to min(n_segments, cpu_count) — single-core hosts keep the plain
        #: kernels; ``True`` forces one worker per segment (tests exercise
        #: the parallel code path deterministically); ``False`` disables it.
        if parallel is False:
            self.pool = None
        else:
            if pool_workers is None:
                pool_workers = n_segments if parallel is True else None
            pool_cls = (
                ProcessSegmentPool if pool_backend == "process" else SegmentPool
            )
            self.pool = pool_cls(n_segments, max_workers=pool_workers)
        #: Effective backend: "thread", "process", or None when disabled.
        self.pool_backend = None if self.pool is None else pool_backend
        if self.pool is not None and self.pool.supports_processes:
            # Worker stat deltas and shm export accounting flow into the
            # same EngineStats the thread backend updates in-process.
            self.pool.on_stats_delta = self.stats.merge_worker_delta
            self.pool.registry.on_export = self.stats.record_shm_export
        self._executor = Executor(self.catalog, self.registry, self.cluster,
                                  self.stats, use_index_cache=use_index_cache,
                                  pool=self.pool, use_fusion=use_fusion)
        self._plans: Optional[PlanCache] = PlanCache() if use_plan_cache else None
        #: Cache compiled physical plans on statement templates.
        self._use_physical_plans = use_physical_plans
        #: Serve repeated small SELECTs from their template's result cache.
        #: Result entries live on plan-cache templates, so disabling the
        #: plan cache disables this too (reflected here, not silently).
        self._use_result_cache = use_result_cache and use_plan_cache

    # -- SQL ------------------------------------------------------------

    def execute(self, sql: str, label: str = "") -> ResultSet:
        """Parse and run one SQL statement.

        Statements are parsed through the plan cache: repeated statement
        *templates* (same SQL up to table-name suffixes and integer
        constants — every per-round query of the reproduced algorithms)
        reuse the cached AST instead of re-lexing and re-parsing, and the
        template entry also carries the statement's compiled physical plan
        so re-executions skip planning entirely (see
        :mod:`repro.sqlengine.physicalplan`).

        Small SELECT results are additionally served from a per-template
        **result cache**: a small LRU of entries keyed on the statement's
        parameters plus the uid+version fingerprint of every referenced
        table, so a repeated scalar subquery (``select count(*) from t``)
        stops re-executing until some input table is appended to,
        truncated, dropped or renamed away — and alternating parameter
        sets stay cached side by side instead of evicting each other.
        """
        entry = None
        if self._plans is not None:
            statement, cache_hit, entry = self._plans.entry_for(sql)
            if cache_hit:
                self.stats.record_plan_cache_hit()
            else:
                self.stats.record_plan_cache_miss()
        else:
            statement = parse_statement(sql)
        result_key = None
        if (
            entry is not None
            and self._use_result_cache
            and entry.cacheable
            and isinstance(statement, Select)
        ):
            fingerprint = self._result_fingerprint(entry)
            if fingerprint is not None:
                result_key = (entry.params, fingerprint)
                cached = entry.cached_result(result_key)
                if cached is not None:
                    self.stats.record_subquery_cache_hit()
                    relation, rowcount = cached
                    self.stats.begin_statement()
                    self.stats.end_statement(
                        label or type(statement).__name__, sql, rowcount, 0.0
                    )
                    return ResultSet(relation, rowcount)
        plan_slot = entry if self._use_physical_plans else None
        self.stats.begin_statement()
        started = time.perf_counter()
        relation, rowcount = self._executor.execute(statement,
                                                    plan_slot=plan_slot)
        elapsed = time.perf_counter() - started
        self.stats.end_statement(label or type(statement).__name__, sql, rowcount,
                                 elapsed)
        if result_key is not None and entry is not None:
            # Every cacheable statement that executed counts as a miss —
            # including results the admission gate rejects — so the
            # hit/(hit+miss) rate reflects actual executions saved.
            self.stats.record_subquery_cache_miss()
            if (
                relation is not None
                and relation.n_rows <= RESULT_CACHE_MAX_ROWS
                and relation.byte_size() <= RESULT_CACHE_MAX_BYTES
            ):
                # Relations are immutable snapshots: columns are never
                # written in place, and any later table mutation moves the
                # fingerprint.
                evicted = entry.store_result(result_key, relation, rowcount,
                                             RESULT_CACHE_MAX_ENTRIES)
                for _ in range(evicted):
                    self.stats.record_subquery_cache_eviction()
        return ResultSet(relation, rowcount)

    def _result_fingerprint(self, entry) -> Optional[tuple]:
        """(uid, version) per referenced table, or None when one is absent
        (the statement will raise its own unknown-table error on execution)."""
        fingerprint = []
        for node in entry.table_nodes:
            if node.name not in self.catalog:
                return None
            table = self.catalog.get(node.name)
            fingerprint.append((table.uid, table.version))
        return tuple(fingerprint)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Run a semicolon-separated script; returns one result per statement."""
        results = []
        for statement in parse_script(sql):
            self.stats.begin_statement()
            started = time.perf_counter()
            relation, rowcount = self._executor.execute(statement)
            elapsed = time.perf_counter() - started
            self.stats.end_statement(type(statement).__name__, sql, rowcount, elapsed)
            results.append(ResultSet(relation, rowcount))
        return results

    # -- extension points -------------------------------------------------

    def create_function(
        self, name: str, fn: Callable[..., np.ndarray], returns: str = INT64
    ) -> None:
        """Register a vectorised user-defined scalar function.

        This is the engine's equivalent of loading the paper's C ``axplusb``
        into HAWQ.  Literal SQL arguments arrive as Python scalars, column
        arguments as numpy arrays.
        """
        self.registry.register_udf(name, fn, returns)

    # -- bulk data ----------------------------------------------------------

    def load_table(
        self,
        name: str,
        columns: dict[str, np.ndarray],
        distributed_by: Optional[str] = None,
    ) -> Table:
        """Create a table directly from numpy arrays (dataset ingestion)."""
        if name.lower() in self.catalog:
            raise CatalogError(f"table {name!r} already exists")
        wrapped = {
            col_name: Column.from_values(values) for col_name, values in columns.items()
        }
        table = Table(name.lower(), wrapped, distributed_by)
        self.catalog.put(table)
        self.stats.record_table_created(table.byte_size(), table.n_rows)
        return table

    def table(self, name: str) -> Table:
        """Look up a stored table."""
        return self.catalog.get(name)

    def table_names(self) -> list[str]:
        return self.catalog.names()

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        if if_exists and name.lower() not in self.catalog:
            return
        table = self.catalog.drop(name)
        self.stats.record_table_dropped(table.byte_size())

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the segment-parallel workers (threads and processes).

        On the process backend this also terminates the worker processes
        and unlinks every shared-memory block the database exported (live
        column views stay readable; only the ``/dev/shm`` names go away).
        Idempotent — a double close is a no-op — and the database stays
        usable afterwards: the pool re-creates its workers and re-exports
        on the next parallel kernel.  Long-lived processes creating many
        Database instances should close each when done.
        """
        if self.pool is not None:
            self.pool.shutdown()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accounting -----------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        return self.stats.live_bytes

    def reset_stats(self) -> None:
        """Zero the counters, keeping live-space accounting consistent."""
        self.stats.reset()
