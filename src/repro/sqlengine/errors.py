"""Exception hierarchy for the SQL engine."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for every error raised by the engine."""


class ParseError(SqlError):
    """Raised when SQL text cannot be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class CatalogError(SqlError):
    """Raised for unknown/duplicate tables, columns or functions."""


class PlanError(SqlError):
    """Raised when a parsed query cannot be turned into an executable plan."""


class ExecutionError(SqlError):
    """Raised when a plan fails during execution."""


class SpaceBudgetExceeded(SqlError):
    """Raised when live table space exceeds the configured budget.

    The benchmark harness converts this into a "did not finish" entry,
    reproducing the DNF cells of the paper's Table III (Hash-to-Min and
    Cracker running out of resources on the larger datasets).
    """

    def __init__(self, used_bytes: int, budget_bytes: int):
        super().__init__(
            f"live table space {used_bytes} bytes exceeds budget {budget_bytes} bytes"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
