"""Scalar function registry: built-ins and user-defined functions.

The paper's algorithm needs ``least`` and ``coalesce`` (Figure 3/4) plus a
user-defined function ``axplusb`` implementing GF(2^64) arithmetic — the C
function of Appendix A.  The engine exposes the same extension point:
:meth:`FunctionRegistry.register_udf` accepts a vectorised Python callable
and makes it callable from SQL, which is how :mod:`repro.core` installs
``axplusb``, ``axbmodp`` and ``blowfish``.

Calling convention for UDFs: argument expressions that are SQL literals are
passed as plain Python scalars, column-valued arguments as numpy arrays.
This mirrors how a database hands constant arguments to a C UDF once per
query rather than once per row, and it is what lets ``axplusb`` build its
lookup tables for a round's constant ``(A, B)`` only once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .errors import CatalogError, ExecutionError
from .types import BOOL, FLOAT64, INT64, TEXT, Column, dtype_for

#: Marker for scalar (literal) arguments inside evaluated argument lists.
@dataclass(frozen=True)
class ScalarArg:
    """A literal argument value, passed to UDFs as a Python scalar."""

    value: object


ArgValue = Column | ScalarArg


def _as_column(arg: ArgValue, length: int) -> Column:
    if isinstance(arg, Column):
        return arg
    return Column.constant(arg.value, length)


def _common_numeric_type(columns: Sequence[Column]) -> str:
    if any(col.sql_type == TEXT for col in columns):
        return TEXT
    if any(col.sql_type == FLOAT64 for col in columns):
        return FLOAT64
    return INT64


def _least_greatest(args: Sequence[ArgValue], length: int, pick_max: bool) -> Column:
    """Row-wise least/greatest ignoring NULLs (PostgreSQL semantics)."""
    columns = [_as_column(a, length) for a in args]
    if not columns:
        raise ExecutionError("least/greatest need at least one argument")
    sql_type = _common_numeric_type(columns)
    if sql_type == TEXT:
        return _least_greatest_text(columns, length, pick_max)
    dtype = dtype_for(sql_type)
    extreme = (np.iinfo(np.int64).min if pick_max else np.iinfo(np.int64).max) \
        if sql_type == INT64 else (-np.inf if pick_max else np.inf)
    best = np.full(length, extreme, dtype=dtype)
    any_valid = np.zeros(length, dtype=bool)
    for col in columns:
        values = col.values.astype(dtype, copy=False)
        if col.mask is not None:
            values = np.where(col.mask, extreme, values)
            any_valid |= ~col.mask
        else:
            any_valid |= True
        best = np.maximum(best, values) if pick_max else np.minimum(best, values)
    mask = None if any_valid.all() else ~any_valid
    return Column(best, sql_type, mask)


def _least_greatest_text(
    columns: Sequence[Column], length: int, pick_max: bool
) -> Column:
    """Row-wise least/greatest over TEXT columns (lexicographic order,
    NULLs skipped).  TEXT values live in object arrays that may hold
    ``None``; the running best is only ever compared against rows where
    both sides are valid, so no ``None`` comparison can occur."""
    if any(col.sql_type != TEXT for col in columns):
        raise ExecutionError(
            "least/greatest cannot mix text and non-text arguments"
        )
    best = np.full(length, None, dtype=object)
    any_valid = np.zeros(length, dtype=bool)
    for col in columns:
        values = col.values
        valid = ~col.mask if col.mask is not None else None
        fresh = ~any_valid if valid is None else (valid & ~any_valid)
        best[fresh] = values[fresh]
        contested = np.flatnonzero(any_valid if valid is None
                                   else (valid & any_valid))
        if contested.size:
            current = best[contested]
            challenger = values[contested]
            take = np.asarray(
                challenger > current if pick_max else challenger < current,
                dtype=bool,
            )
            best[contested[take]] = challenger[take]
        any_valid |= fresh
    mask = None if any_valid.all() else ~any_valid
    return Column(best, TEXT, mask)


def _coalesce(args: Sequence[ArgValue], length: int) -> Column:
    columns = [_as_column(a, length) for a in args]
    if not columns:
        raise ExecutionError("coalesce needs at least one argument")
    sql_type = _common_numeric_type(columns)
    result = columns[0]
    if sql_type != result.sql_type and sql_type != TEXT:
        result = Column(result.values.astype(dtype_for(sql_type)), sql_type, result.mask)
    for col in columns[1:]:
        if result.mask is None:
            break
        take_from_next = result.mask
        values = result.values.copy()
        next_values = col.values.astype(values.dtype, copy=False) \
            if sql_type != TEXT else col.values
        values[take_from_next] = next_values[take_from_next]
        if col.mask is not None:
            new_mask = result.mask & col.mask
        else:
            new_mask = np.zeros(length, dtype=bool)
        result = Column(values, sql_type, new_mask if new_mask.any() else None)
    return result


def _strict_unary(fn: Callable[[np.ndarray], np.ndarray], result_type: str | None = None):
    def call(args: Sequence[ArgValue], length: int) -> Column:
        if len(args) != 1:
            raise ExecutionError("function expects exactly one argument")
        col = _as_column(args[0], length)
        values = fn(col.values)
        sql_type = result_type or col.sql_type
        return Column(values.astype(dtype_for(sql_type), copy=False), sql_type, col.mask)

    return call


def _mod(args: Sequence[ArgValue], length: int) -> Column:
    if len(args) != 2:
        raise ExecutionError("mod expects two arguments")
    a = _as_column(args[0], length)
    b = _as_column(args[1], length)
    divisor = b.values
    if (divisor == 0).any():
        raise ExecutionError("division by zero in mod()")
    values = np.fmod(a.values, divisor).astype(np.int64)
    mask = _union_masks([a, b], length)
    return Column(values, INT64, mask)


def _nullif(args: Sequence[ArgValue], length: int) -> Column:
    if len(args) != 2:
        raise ExecutionError("nullif expects two arguments")
    a = _as_column(args[0], length)
    b = _as_column(args[1], length)
    equal = a.values == b.values
    mask = a.null_mask().copy()
    mask |= np.asarray(equal, dtype=bool) & ~b.null_mask()
    return Column(a.values, a.sql_type, mask if mask.any() else None)


def _union_masks(columns: Sequence[Column], length: int) -> np.ndarray | None:
    mask = None
    for col in columns:
        if col.mask is not None:
            mask = col.mask.copy() if mask is None else (mask | col.mask)
    return mask


class FunctionRegistry:
    """Name → implementation mapping for scalar functions."""

    def __init__(self) -> None:
        self._builtins: dict[str, Callable[[Sequence[ArgValue], int], Column]] = {}
        self._install_builtins()

    def _install_builtins(self) -> None:
        self._builtins["least"] = lambda a, n: _least_greatest(a, n, pick_max=False)
        self._builtins["greatest"] = lambda a, n: _least_greatest(a, n, pick_max=True)
        self._builtins["coalesce"] = _coalesce
        self._builtins["abs"] = _strict_unary(np.abs)
        self._builtins["floor"] = _strict_unary(np.floor, FLOAT64)
        self._builtins["ceil"] = _strict_unary(np.ceil, FLOAT64)
        self._builtins["sqrt"] = _strict_unary(np.sqrt, FLOAT64)
        self._builtins["sign"] = _strict_unary(np.sign, INT64)
        self._builtins["mod"] = _mod
        self._builtins["nullif"] = _nullif

    def register_udf(
        self,
        name: str,
        fn: Callable[..., np.ndarray],
        returns: str = INT64,
        replace: bool = True,
    ) -> None:
        """Register a vectorised user-defined scalar function.

        ``fn`` receives one positional argument per SQL argument: numpy
        arrays for column-valued arguments, plain Python values for literal
        arguments.  It must return a numpy array of row values.  NULLs are
        strict: any NULL argument row yields a NULL result row.
        """
        lowered = name.lower()

        def call(args: Sequence[ArgValue], length: int) -> Column:
            raw = []
            masks: list[Column] = []
            for arg in args:
                if isinstance(arg, ScalarArg):
                    raw.append(arg.value)
                else:
                    raw.append(arg.values)
                    masks.append(arg)
            result = np.asarray(fn(*raw))
            if result.ndim == 0:
                result = np.full(length, result[()])
            if result.shape[0] != length:
                raise ExecutionError(
                    f"UDF {name} returned {result.shape[0]} rows, expected {length}"
                )
            mask = _union_masks(masks, length)
            if returns == TEXT:
                values = result.astype(object)
            else:
                values = result.astype(dtype_for(returns), copy=False)
            return Column(values, returns, mask)

        if not replace and lowered in self._builtins:
            raise CatalogError(f"function {name!r} already exists")
        self._builtins[lowered] = call

    def lookup(self, name: str) -> Callable[[Sequence[ArgValue], int], Column]:
        try:
            return self._builtins[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown function {name!r}")

    def exists(self, name: str) -> bool:
        return name.lower() in self._builtins
