"""Massively-parallel-processing simulation: segments, hashing, data motion.

The paper runs on Apache HAWQ, where every table is hash-distributed over
cluster segments by a distribution column (the ``distributed by (v)``
clauses of Appendix A) and the dominant cost of a distributed query is the
*data motion* needed to co-locate join/aggregation keys.

This module reproduces that model virtually: tables carry a distribution
column, rows map to segments by a 64-bit mixing hash, and the executor
consults :class:`Cluster` to decide — exactly like an MPP planner — whether
an operation is co-located (no motion), needs a redistribution (ship the
mismatched side), or is cheaper served by broadcasting a small relation to
every segment.  The decisions feed the motion counters in
:mod:`repro.sqlengine.stats`; row data itself is kept in whole-column numpy
arrays because physically scattering it would only slow the simulation
without changing any measured quantity.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .errors import ExecutionError
from .shm import ShmRegistry
from .types import Column

#: Thread-local marker for threads currently executing a pool-managed
#: task (a dataflow statement group, a UNION ALL arm).  Such a thread must
#: not block on further ``SegmentPool.submit`` futures of its own: the
#: scheduler's worker reservation guarantees one free worker for *kernel*
#: fan-out (``map`` chunks, which never block), and a nested blocking
#: offload could consume it and deadlock the pool.  Consumers check
#: :func:`in_pool_task` and fall back to inline execution instead.
_TASK_TLS = threading.local()


def in_pool_task() -> bool:
    """True when the calling thread is inside a pool-managed task."""
    return getattr(_TASK_TLS, "depth", 0) > 0


class task_scope:
    """Context manager marking the current thread as running a pool task."""

    def __enter__(self) -> "task_scope":
        _TASK_TLS.depth = getattr(_TASK_TLS, "depth", 0) + 1
        return self

    def __exit__(self, *exc_info) -> None:
        _TASK_TLS.depth -= 1


#: splitmix64 constants, used as the segment-assignment hash.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def hash64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser — a well-mixed 64-bit hash of int64/uint64 keys."""
    x = np.ascontiguousarray(values).astype(np.uint64, copy=True)
    x += _GOLDEN
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return x


def partition_rows(values: np.ndarray, n_parts: int) -> list[np.ndarray]:
    """Row indices per segment under splitmix64 hash distribution.

    This is the same assignment :meth:`Cluster.segment_of` models for
    tables; the segment-parallel kernels use it to split join/aggregation
    work so that equal keys always land in the same partition.  Each
    returned index array is increasing, so partition-local processing
    preserves the rows' original relative order.
    """
    seg = (hash64(values) % np.uint64(n_parts)).astype(np.int64)
    return [np.flatnonzero(seg == p) for p in range(n_parts)]


class SegmentPool:
    """A worker pool executing per-segment kernel partitions.

    The pool mirrors the cluster layout: work is split into ``n_segments``
    hash partitions and executed on up to ``min(n_segments, cpu_count)``
    threads.  numpy releases the GIL inside its kernels, so partitions run
    genuinely concurrently on multi-core hosts; on a single core the pool
    reports ``n_workers == 1`` and the executor keeps the plain
    single-threaded kernels (``max_workers`` forces a thread count for
    tests that must exercise the parallel code path regardless).

    The thread pool is created lazily on first use, so accounting-only
    databases never spawn threads.
    """

    #: True on pools whose kernel tasks run in worker processes (see
    #: :class:`ProcessSegmentPool`); the parallel kernels check this to
    #: decide between descriptor dispatch and in-process closures.
    supports_processes = False
    #: Shared-memory registry; only process-backed pools own one.
    registry: Optional[ShmRegistry] = None

    def __init__(self, n_segments: int, max_workers: Optional[int] = None):
        if n_segments < 1:
            raise ValueError("a segment pool needs at least one segment")
        self.n_segments = n_segments
        if max_workers is not None:
            self.n_workers = max(1, min(n_segments, max_workers))
        else:
            self.n_workers = max(1, min(n_segments, os.cpu_count() or 1))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._init_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._init_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-segment",
                )
            return self._pool

    def map(self, fn: Callable, items: Sequence) -> list:
        """Run ``fn`` over ``items``, in order; threaded when it can help."""
        if self.n_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def submit(self, fn: Callable, *args) -> Future:
        """Schedule one task on the pool, returning its Future.

        Used by the overlapped-composition driver to run a contraction
        round's representative composition off the critical path.  On a
        single-worker pool the task runs inline (no overlap is possible)
        and a completed Future is returned, so callers need no special
        casing.  A task running on a worker may itself call :meth:`map`;
        its partitions are then served by the remaining workers.
        """
        def run() -> object:
            with task_scope():
                return fn(*args)

        if self.n_workers <= 1:
            future: Future = Future()
            try:
                future.set_result(run())
            except BaseException as error:  # propagate via the future
                future.set_exception(error)
            return future
        return self._ensure_pool().submit(run)

    def shutdown(self) -> None:
        """Release the worker threads (a later ``map`` re-creates them).

        Idle workers also exit when the pool is garbage collected, but
        long-lived processes juggling many databases should close them
        deterministically via :meth:`Database.close`.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    @property
    def task_slots(self) -> int:
        """Concurrent pool-managed *tasks* (statement groups, UNION arms)
        this pool can serve.  The dataflow scheduler caps its in-flight
        statement groups at ``task_slots - 1`` so kernel fan-out always
        finds a free worker; process-backed pools keep the same thread-side
        surface (tasks are closures and stay in-process), so the cap is the
        thread worker count on every backend."""
        return self.n_workers


def _process_task_entry(fn: Callable, payload: object) -> tuple[object, dict]:
    """Worker-process entry: run one kernel task, return its result plus
    the worker-side EngineStats delta the driver merges deterministically."""
    return fn(payload), {"process_tasks": 1}


class ProcessSegmentPool(SegmentPool):
    """A SegmentPool whose per-segment kernels run in worker *processes*.

    The thread-side surface (``map``/``submit``/``task_scope``) is
    inherited unchanged — dataflow statement groups and UNION ALL arms are
    closures over the Database and stay in-process — while the hash-
    partitioned kernels in :mod:`repro.sqlengine.parallel` dispatch their
    partitions here via :meth:`run_tasks`.  Tasks are shipped as
    ``(shm descriptor, small args)`` payloads, never column data, so each
    worker rehydrates zero-copy views and runs the identical kernel math
    outside the driver's GIL.  Every task returns ``(result, stats delta)``
    and the driver folds the deltas into :class:`EngineStats` in
    submission order, keeping accounting deterministic.

    A crashed or killed worker breaks the executor: every in-flight future
    is poisoned, surfaced as one clear :class:`ExecutionError`, and the
    executor is discarded so the next kernel transparently restarts the
    workers.  ``shutdown()`` additionally unlinks every shared-memory
    block through the pool's :class:`~repro.sqlengine.shm.ShmRegistry`.
    """

    supports_processes = True

    def __init__(
        self,
        n_segments: int,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        super().__init__(n_segments, max_workers)
        self.registry = ShmRegistry()
        #: Hook receiving merged worker stat deltas (wired by Database to
        #: ``EngineStats.merge_worker_delta``).
        self.on_stats_delta: Optional[Callable[[dict], None]] = None
        if start_method is None:
            start_method = os.environ.get("REPRO_POOL_START_METHOD") or None
        if start_method is None:
            # fork skips re-importing the engine in every worker; spawn is
            # the fallback where fork is unavailable.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._start_method = start_method
        self._processes: Optional[ProcessPoolExecutor] = None
        self._proc_lock = threading.Lock()

    def _ensure_processes(self) -> ProcessPoolExecutor:
        with self._proc_lock:
            if self._processes is None:
                self._processes = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context(self._start_method),
                )
            return self._processes

    def _discard_processes(self) -> None:
        with self._proc_lock:
            executor, self._processes = self._processes, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def run_tasks(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn(payload)`` per payload in worker processes, in order.

        ``fn`` must be a module-level function and each payload picklable
        (descriptors + small args).  Worker stat deltas are merged in
        submission order and handed to :attr:`on_stats_delta` once per
        call, so totals are independent of worker scheduling.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self.n_workers <= 1:
            return [fn(payload) for payload in payloads]
        executor = self._ensure_processes()
        try:
            futures = [
                executor.submit(_process_task_entry, fn, payload)
                for payload in payloads
            ]
            outs = [future.result() for future in futures]
        except BrokenExecutor as error:
            self._discard_processes()
            raise ExecutionError(
                "segment worker process died mid-kernel; in-flight work was "
                "poisoned and the process pool will restart on next use"
            ) from error
        results = []
        merged: dict[str, int] = {}
        for result, delta in outs:
            for counter, by in delta.items():
                merged[counter] = merged.get(counter, 0) + by
            results.append(result)
        if merged and self.on_stats_delta is not None:
            self.on_stats_delta(merged)
        return results

    def shutdown(self) -> None:
        """Terminate both executors and unlink every shared block.

        Idempotent: a second call finds nothing to release.  The pool —
        like its thread-backed base — stays usable afterwards; the next
        kernel re-creates the workers and re-exports its inputs.
        """
        super().shutdown()
        with self._proc_lock:
            executor, self._processes = self._processes, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        self.registry.release_all()


@dataclass(frozen=True)
class MotionPlan:
    """The planner's verdict on how an operator's input gets co-located."""

    kind: str  # "colocated", "redistribute" or "broadcast"
    moved_bytes: int


class Cluster:
    """A virtual MPP cluster: segment count and motion-cost decisions."""

    def __init__(self, n_segments: int = 4, broadcast_row_limit: int = 4096):
        if n_segments < 1:
            raise ValueError("a cluster needs at least one segment")
        self.n_segments = n_segments
        #: Relations at or below this row count are broadcast rather than
        #: redistributed when that moves fewer bytes, mimicking the
        #: broadcast-motion optimisation of real MPP planners.
        self.broadcast_row_limit = broadcast_row_limit

    def segment_of(self, column: Column) -> np.ndarray:
        """Segment assignment of each row under hash distribution."""
        if column.sql_type == "text":
            hashed = np.array([hash(v) for v in column.values], dtype=np.uint64)
        else:
            hashed = hash64(column.values)
        return (hashed % np.uint64(self.n_segments)).astype(np.int64)

    def skew(self, column: Column) -> float:
        """Max/mean segment load ratio; 1.0 is perfectly balanced."""
        if len(column) == 0:
            return 1.0
        segments = self.segment_of(column)
        counts = np.bincount(segments, minlength=self.n_segments)
        return float(counts.max() / max(counts.mean(), 1e-12))

    def plan_motion(
        self,
        side_bytes: int,
        side_rows: int,
        colocated: bool,
    ) -> MotionPlan:
        """Decide how one join/aggregation input reaches its keyed segments.

        ``colocated`` means the relation is already distributed on the
        operation key.  A single-segment cluster never moves data.
        """
        if colocated or self.n_segments == 1 or side_rows == 0:
            return MotionPlan("colocated", 0)
        if side_rows <= self.broadcast_row_limit:
            # Small table: a real planner broadcasts it so the big side
            # stays put.  We charge the replicated bytes.
            return MotionPlan("broadcast", side_bytes * self.n_segments)
        return MotionPlan("redistribute", side_bytes)
