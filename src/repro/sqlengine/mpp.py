"""Massively-parallel-processing simulation: segments, hashing, data motion.

The paper runs on Apache HAWQ, where every table is hash-distributed over
cluster segments by a distribution column (the ``distributed by (v)``
clauses of Appendix A) and the dominant cost of a distributed query is the
*data motion* needed to co-locate join/aggregation keys.

This module reproduces that model virtually: tables carry a distribution
column, rows map to segments by a 64-bit mixing hash, and the executor
consults :class:`Cluster` to decide — exactly like an MPP planner — whether
an operation is co-located (no motion), needs a redistribution (ship the
mismatched side), or is cheaper served by broadcasting a small relation to
every segment.  The decisions feed the motion counters in
:mod:`repro.sqlengine.stats`; row data itself is kept in whole-column numpy
arrays because physically scattering it would only slow the simulation
without changing any measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import Column

#: splitmix64 constants, used as the segment-assignment hash.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def hash64(values: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser — a well-mixed 64-bit hash of int64/uint64 keys."""
    x = np.ascontiguousarray(values).astype(np.uint64, copy=True)
    x += _GOLDEN
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return x


@dataclass(frozen=True)
class MotionPlan:
    """The planner's verdict on how an operator's input gets co-located."""

    kind: str  # "colocated", "redistribute" or "broadcast"
    moved_bytes: int


class Cluster:
    """A virtual MPP cluster: segment count and motion-cost decisions."""

    def __init__(self, n_segments: int = 4, broadcast_row_limit: int = 4096):
        if n_segments < 1:
            raise ValueError("a cluster needs at least one segment")
        self.n_segments = n_segments
        #: Relations at or below this row count are broadcast rather than
        #: redistributed when that moves fewer bytes, mimicking the
        #: broadcast-motion optimisation of real MPP planners.
        self.broadcast_row_limit = broadcast_row_limit

    def segment_of(self, column: Column) -> np.ndarray:
        """Segment assignment of each row under hash distribution."""
        if column.sql_type == "text":
            hashed = np.array([hash(v) for v in column.values], dtype=np.uint64)
        else:
            hashed = hash64(column.values)
        return (hashed % np.uint64(self.n_segments)).astype(np.int64)

    def skew(self, column: Column) -> float:
        """Max/mean segment load ratio; 1.0 is perfectly balanced."""
        if len(column) == 0:
            return 1.0
        segments = self.segment_of(column)
        counts = np.bincount(segments, minlength=self.n_segments)
        return float(counts.max() / max(counts.mean(), 1e-12))

    def plan_motion(
        self,
        side_bytes: int,
        side_rows: int,
        colocated: bool,
    ) -> MotionPlan:
        """Decide how one join/aggregation input reaches its keyed segments.

        ``colocated`` means the relation is already distributed on the
        operation key.  A single-segment cluster never moves data.
        """
        if colocated or self.n_segments == 1 or side_rows == 0:
            return MotionPlan("colocated", 0)
        if side_rows <= self.broadcast_row_limit:
            # Small table: a real planner broadcasts it so the big side
            # stays put.  We charge the replicated bytes.
            return MotionPlan("broadcast", side_bytes * self.n_segments)
        return MotionPlan("redistribute", side_bytes)
