"""The plan/statement cache: parsed ASTs keyed by SQL template.

Every reproduced algorithm drives the engine with per-round SQL rendered
from the same handful of f-string templates — only the round's table-name
suffixes (``ccreps3`` → ``ccreps4``) and the randomisation constants change.
The seed engine re-lexed and re-parsed each of those statements from
scratch; this module makes round N pay zero lexer/parser cost.

How it works:

1. **Normalisation** (one C-level regex pass over the SQL text): every
   standalone integer literal and every digit suffix of an identifier is
   replaced by a positional placeholder (``$0``, ``$1``, ...); string
   literals are skipped.  The normalised text is the cache key, and the
   extracted digit runs are the statement's parameters.
2. **Template parse** (once per template): the placeholder text is parsed
   by the ordinary parser — the lexer understands ``$`` markers — yielding
   an AST whose parameterised positions are either
   :class:`~repro.sqlengine.ast_nodes.Param` literal values or name strings
   containing ``$k`` markers.  A generic dataclass walk collects these
   *slots*.
3. **Verification** (once per template): the template AST is patched with
   the first statement's parameters and compared structurally (``==`` on
   frozen dataclasses) against a direct parse of the original SQL.  Any
   mismatch — exotic syntax, markers landing somewhere surprising — marks
   the template uncacheable and the engine falls back to full parsing for
   it forever.  Correctness therefore never depends on the normaliser
   being clever, only on the verification being exact.
4. **Hits**: subsequent statements that normalise to the same template
   re-patch the slots in place (a few ``setattr`` calls) and reuse the AST.

Patching mutates the cached AST between executions, which is safe because
execution is synchronous and the executor retains no statement references
after a call completes.
"""

from __future__ import annotations

import dataclasses
import re
import threading
from collections import OrderedDict
from typing import Optional

from .ast_nodes import FuncCall, Param, Statement, TableRef
from .parser import Parser, parse_statement

#: Matches string literals (kept verbatim) or parameterisable digit runs.
#: A digit run qualifies when it is not part of a float or exponent form
#: (not adjacent to ".", not preceded by "<digit>e") and not followed by
#: more identifier characters (so mid-identifier digits stay literal).
#: A unary minus is absorbed into the parameter where it is unambiguous —
#: directly after "(" or "," (function arguments, VALUES rows), never
#: where it could be binary subtraction — so the positive and negative
#: renderings of a randomisation constant normalise to one template
#: instead of one per sign pattern.
_NORMALIZE_RE = re.compile(
    r"('(?:[^']|'')*')"
    r"|([(,]\s*)(-\d+)(?![\w.])"
    r"|((?<![\d.])(?<![\d.][eE])\d+(?![\w.]))"
)

#: Placeholder markers inside template strings.
_MARKER_RE = re.compile(r"\$(\d+)")


def normalize_statement(sql: str) -> tuple[str, list[str]]:
    """Return (template text, extracted parameter digit-runs)."""
    params: list[str] = []

    def replace(match: re.Match) -> str:
        if match.group(1) is not None:
            return match.group(1)
        if match.group(3) is not None:
            params.append(match.group(3))
            return f"{match.group(2)}${len(params) - 1}"
        params.append(match.group(4))
        return f"${len(params) - 1}"

    return _NORMALIZE_RE.sub(replace, sql), params


def _collect_slots(node: object, slots: list) -> None:
    """Find every dataclass field holding placeholder material."""
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if _needs_patch(value):
            slots.append((node, field.name, value))
        _collect_children(value, slots)


def _collect_children(value: object, slots: list) -> None:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        _collect_slots(value, slots)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_children(item, slots)


def _needs_patch(value: object) -> bool:
    if isinstance(value, Param):
        return True
    if isinstance(value, str):
        return "$" in value
    if isinstance(value, (tuple, list)):
        return any(
            _needs_patch(item)
            for item in value
            if not (dataclasses.is_dataclass(item) and not isinstance(item, type))
        )
    return False


def _collect_nodes(value: object, node_type: type, into: list) -> None:
    """Collect every dataclass node of ``node_type`` in an AST subtree."""
    if isinstance(value, node_type):
        into.append(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field in dataclasses.fields(value):
            _collect_nodes(getattr(value, field.name), node_type, into)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_nodes(item, node_type, into)


def _instantiate(template_value: object, params: list[str]) -> object:
    """Rebuild a slot value with the statement's actual parameters."""
    if isinstance(template_value, Param):
        value = int(params[template_value.index])
        return -value if template_value.negated else value
    if isinstance(template_value, str):
        return _MARKER_RE.sub(
            lambda m: params[int(m.group(1))], template_value
        )
    if isinstance(template_value, tuple):
        return tuple(_instantiate(item, params) for item in template_value)
    if isinstance(template_value, list):
        return [_instantiate(item, params) for item in template_value]
    return template_value


class _Template:
    """One cache entry: a reusable AST plus its patchable slots.

    ``statement is None`` marks a template that failed verification — the
    cache remembers the failure so the (cheap) normalisation is the only
    cost such statements keep paying.

    ``physical`` is the executor's compiled physical plan for this
    template (see :mod:`repro.sqlengine.physicalplan`).  It is owned and
    validated by the executor; the cache only provides the slot so a
    template carries its execution strategy alongside its AST.

    The remaining slots serve the database's **subquery result cache**:
    ``table_nodes`` holds every :class:`~repro.sqlengine.ast_nodes.TableRef`
    of the template (their patched names are the statement's input tables,
    whose uid+version pairs fingerprint the cached result), ``params`` the
    most recent patch (two statements sharing a template differ only in
    parameters, so a cached result is only valid for its own), ``cacheable``
    whether the template is free of scalar function calls (a user-defined
    function may be non-deterministic, so such statements always execute),
    and ``results`` a small per-template LRU of cached
    ``(params, fingerprint) -> (relation, rowcount)`` entries — multiple
    parameterisations of one template stay warm side by side, so
    alternating parameter sets no longer thrash a single slot.
    """

    __slots__ = ("statement", "slots", "physical", "table_nodes", "params",
                 "cacheable", "results", "effects")

    def __init__(self, statement: Optional[Statement], slots: list):
        self.statement = statement
        self.slots = slots
        self.physical = None
        self.table_nodes: list = []
        self.cacheable = False
        #: Parameter-independent (reads, writes) table-name templates, set
        #: lazily by the dataflow scheduler (see
        #: :func:`repro.core.dataflow._template_effects`) so warm loops
        #: derive a statement's effect sets without re-parsing it.
        self.effects: Optional[tuple] = None
        if statement is not None:
            _collect_nodes(statement, TableRef, self.table_nodes)
            calls: list = []
            _collect_nodes(statement, FuncCall, calls)
            self.cacheable = not calls
        self.params: tuple = ()
        self.results: "OrderedDict[tuple, tuple]" = OrderedDict()

    def cached_result(self, key: tuple) -> Optional[tuple]:
        """Fetch the ``(relation, rowcount)`` entry for a key, refreshing
        its LRU position, or ``None``."""
        entry = self.results.get(key)
        if entry is not None:
            self.results.move_to_end(key)
        return entry

    def store_result(
        self, key: tuple, relation, rowcount: int, capacity: int
    ) -> int:
        """Insert (or refresh) one result entry; returns how many old
        entries the capacity bound evicted.  Entries whose fingerprint went
        stale (a mutated input table) are never served — their keys stop
        matching — and age out here."""
        self.results[key] = (relation, rowcount)
        self.results.move_to_end(key)
        evicted = 0
        while len(self.results) > capacity:
            self.results.popitem(last=False)
            evicted += 1
        return evicted

    def patch(self, params: list[str]) -> Statement:
        self.params = tuple(params)
        for node, field_name, template_value in self.slots:
            object.__setattr__(
                node, field_name, _instantiate(template_value, params)
            )
        return self.statement


class PlanCache:
    """LRU cache of parsed statement templates.

    The cache structure (and the in-place patch of a template's AST) is
    guarded by a lock, so statements may be submitted from more than one
    thread — the overlapped-composition driver runs a composition statement
    on a pool worker while the main thread executes the next round.  Two
    *concurrent* statements must still normalise to different templates
    (each template's AST is single-occupancy during execution), which the
    round structure guarantees.
    """

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, _Template]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def statement_for(self, sql: str) -> tuple[Statement, bool]:
        """Parse-or-fetch one statement; returns (statement, was_cache_hit)."""
        statement, cache_hit, _ = self.entry_for(sql)
        return statement, cache_hit

    def entry_for(self, sql: str) -> tuple[Statement, bool, Optional[_Template]]:
        """Parse-or-fetch one statement plus its template cache entry.

        The entry (``None`` for uncacheable statements) is the slot the
        executor caches the statement's compiled physical plan on.  On a
        successful first build the *patched template* AST is returned
        rather than the direct parse — the two are verified structurally
        equal — so a physical plan compiled during the first execution
        already references the nodes every later hit re-patches.
        """
        if "$" in sql or "--" in sql or "/*" in sql:
            # "$" would collide with our own markers; comments would need a
            # comment-aware normaliser.  Neither occurs in generated SQL.
            return parse_statement(sql), False, None
        template_sql, params = normalize_statement(sql)
        with self._lock:
            entry = self._entries.get(template_sql)
            if entry is not None:
                self._entries.move_to_end(template_sql)
                if entry.statement is None:
                    return parse_statement(sql), False, None
                return entry.patch(params), True, entry
            direct = parse_statement(sql)
            entry = self._build(template_sql, params, direct)
            self._entries[template_sql] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            if entry.statement is None:
                return direct, False, None
            # _build leaves the template patched with this statement's
            # params.
            return entry.statement, False, entry

    def template_entry(
        self, sql: str
    ) -> tuple[Optional[_Template], list[str], bool]:
        """The template entry for a statement — WITHOUT patching its AST.

        Returns ``(entry, params, pre_existing)``; ``entry`` is ``None``
        for uncacheable statements.  Unlike :meth:`entry_for`, an existing
        entry's AST is left untouched, so this is safe to call while
        another thread executes a statement of the same template — the
        dataflow scheduler derives read/write effect sets this way,
        reading only the slot list's pristine template values and the
        never-patched constant fields.  A first-seen template is built
        (and verified) here, paying the one parse its first execution
        would otherwise have paid; ``pre_existing`` is False in that case.
        """
        if "$" in sql or "--" in sql or "/*" in sql:
            return None, [], False
        template_sql, params = normalize_statement(sql)
        with self._lock:
            entry = self._entries.get(template_sql)
            if entry is not None:
                self._entries.move_to_end(template_sql)
                if entry.statement is None:
                    return None, params, True
                return entry, params, True
            direct = parse_statement(sql)
            entry = self._build(template_sql, params, direct)
            self._entries[template_sql] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            if entry.statement is None:
                return None, params, False
            return entry, params, False

    def _build(
        self, template_sql: str, params: list[str], direct: Statement
    ) -> _Template:
        try:
            # Template mode: only here is the "$" placeholder syntax legal;
            # user-facing SQL can never smuggle one in.
            statement = Parser(template_sql, allow_params=True).parse_statement()
            slots: list = []
            _collect_slots(statement, slots)
            entry = _Template(statement, slots)
            if entry.patch(params) != direct:
                return _Template(None, [])
            return entry
        except Exception:
            return _Template(None, [])
