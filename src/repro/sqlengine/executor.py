"""Statement execution: planning and running parsed SQL.

The executor turns parsed statements into vectorised operator pipelines:

1. FROM items resolve to :class:`Frame` objects (column bundles keyed by
   ``binding.column``);
2. WHERE/ON conjuncts are classified into per-table filters (pushed below
   joins), equi-join edges, and residual post-join filters;
3. frames are joined greedily along equi-join edges — a deliberately simple
   but real query optimiser, the component the paper credits for much of
   the in-database performance;
4. grouping/aggregation, DISTINCT and projection run on the joined frame.

Join and group execution is *index-aware*.  Base-table frames carry
provenance (``Frame.sources``): as long as a frame is an unfiltered scan of
a stored table, its columns are traceable back to that table, and keyed
operators consult the table's versioned index cache
(:meth:`~repro.sqlengine.table.Table.ensure_index`).  A cached
:class:`~repro.sqlengine.operators.KeyIndex` supplies the build side of a
join pre-sorted (with uniqueness and min/max stats), so the second and
third join against the same table — the paper's per-round ``reps`` pattern
— skips its sort entirely.  The stats also drive **join pruning**: when
both sides' key ranges are provably disjoint, the executor emits an empty
result without running the kernel *and without charging the data motion* a
stats-blind planner would have paid.  Cache traffic is counted in
:class:`~repro.sqlengine.stats.EngineStats` (``index_cache_hits``/
``index_cache_misses``/``joins_pruned``).

MPP accounting happens where a real MPP executor would move data: a join or
aggregation whose input is not already distributed on its key charges a
redistribution (or a broadcast for small inputs) to the engine statistics.

Distribution is tracked as a *set* of equivalent column names: after an
inner join on ``l.k = r.v`` the result is hash-distributed on the common key
value, so both ``l.k`` and ``r.v`` count as its distribution columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .ast_nodes import (
    Aggregate,
    AlterRename,
    BinaryOp,
    ColumnRef,
    CreateTable,
    CreateTableAs,
    DropTable,
    Expression,
    FromItem,
    InsertSelect,
    InsertValues,
    Join,
    Literal,
    Select,
    SelectCore,
    SelectItem,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    TruncateTable,
)
from .errors import CatalogError, ExecutionError, PlanError
from .expressions import (
    AMBIGUOUS,
    Environment,
    collect_aggregates,
    collect_column_refs,
    contains_aggregate,
    evaluate,
    truth_values,
)
from .functions import FunctionRegistry
from .mpp import Cluster
from .operators import (
    NO_MATCH,
    KeyIndex,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
)
from .stats import EngineStats
from .table import Catalog, Table
from .types import BOOL, FLOAT64, INT64, Column, dtype_for

#: Safety valve: a join step with no usable equality predicate falls back to
#: a cartesian product only below this many output rows.
MAX_CARTESIAN_ROWS = 1 << 21


@dataclass
class Relation:
    """An executed query result: ordered named columns.

    ``names`` are unique storage keys into ``columns``; ``display_names``
    are the user-visible column names, which SQL allows to repeat in a
    plain SELECT (``select a.w, b.w ...``).  They differ only when a
    projection produced duplicates.
    """

    names: list[str]
    columns: dict[str, Column]
    distribution: Optional[str] = None
    display_names: Optional[list[str]] = None

    def __post_init__(self) -> None:
        if self.display_names is None:
            self.display_names = list(self.names)

    @property
    def n_rows(self) -> int:
        if not self.names:
            return 0
        return len(self.columns[self.names[0]])

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"result has no column {name!r}")

    def rows(self, limit: Optional[int] = None) -> list[tuple]:
        """Materialise as Python row tuples (small results only).

        ``limit`` caps the number of rows materialised — rendering paths
        that show only the head of a result should pass it rather than
        paying for full-column Python list conversion.
        """
        if limit is not None and limit < self.n_rows:
            head = {n: self.columns[n].take(np.arange(limit)) for n in self.names}
            lists = [head[n].to_list() for n in self.names]
        else:
            lists = [self.columns[n].to_list() for n in self.names]
        return list(zip(*lists)) if lists else []

    def byte_size(self) -> int:
        return sum(self.columns[n].byte_size() for n in self.names)


@dataclass
class Frame:
    """An intermediate relation during FROM/JOIN processing.

    ``sources`` is column provenance: while the frame is an unfiltered scan
    of a stored table, each qualified column name maps to its
    ``(table, column_name)`` origin, which lets keyed operators consult the
    table's index cache.  Any row-reordering operation (filter, gather,
    join) drops provenance, since cached indexes are positional.
    """

    columns: dict[str, Column]  # key: "binding.column"
    bindings: dict[str, list[str]]  # binding -> column names, in order
    length: int
    distribution: frozenset[str] = frozenset()  # qualified names, value-equal
    sources: dict[str, tuple] = field(default_factory=dict)

    def byte_size(self) -> int:
        return sum(col.byte_size() for col in self.columns.values())

    def env_columns(self) -> dict[str, Column]:
        """Qualified plus bare name bindings (ambiguous bare names marked)."""
        env: dict[str, Column] = dict(self.columns)
        seen: dict[str, int] = {}
        for binding, cols in self.bindings.items():
            for col in cols:
                seen[col] = seen.get(col, 0) + 1
        for binding, cols in self.bindings.items():
            for col in cols:
                if seen[col] == 1:
                    env[col] = self.columns[f"{binding}.{col}"]
                else:
                    env[col] = AMBIGUOUS
        return env

    def take(self, indices: np.ndarray) -> "Frame":
        columns = {name: col.take(indices) for name, col in self.columns.items()}
        return Frame(columns, self.bindings, int(indices.shape[0]), self.distribution)

    def filter(self, keep: np.ndarray) -> "Frame":
        columns = {name: col.filter(keep) for name, col in self.columns.items()}
        return Frame(columns, self.bindings, int(keep.sum()), self.distribution)


class Executor:
    """Executes parsed statements against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        registry: FunctionRegistry,
        cluster: Cluster,
        stats: EngineStats,
        use_index_cache: bool = True,
    ):
        self.catalog = catalog
        self.registry = registry
        self.cluster = cluster
        self.stats = stats
        #: Consult stored tables' index caches for joins/grouping.  Disabled
        #: by backends that model index-less engines (the Spark comparison),
        #: and by tests that need the seed execution strategy.
        self.use_index_cache = use_index_cache

    def _stored_index(
        self, frame: Frame, qualified_name: str, build: bool
    ) -> Optional[KeyIndex]:
        """Fetch (or build) the table index backing a frame column, if any.

        ``build=False`` only returns an already-cached index — used for
        probe sides, where building an index the kernel would not otherwise
        need is wasted work, but reusing a free one enables range pruning.
        """
        if not self.use_index_cache:
            return None
        source = frame.sources.get(qualified_name)
        if source is None:
            return None
        table, column_name = source
        cached = table.cached_index(column_name)
        if cached is not None:
            self.stats.record_index_cache_hit()
            return cached
        if not build:
            return None
        index = table.ensure_index(column_name)
        if index is not None:
            self.stats.record_index_cache_miss()
        return index

    # ------------------------------------------------------------------
    # operator kernels — overridable execution strategy
    #
    # The default engine runs each kernel once over whole columns (an MPP
    # database's co-located, vectorised execution).  The Spark-SQL
    # comparison backend (repro.spark) overrides these with partitioned,
    # shuffle-everything equivalents.
    # ------------------------------------------------------------------

    def _join_kernel(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        left_index: Optional[KeyIndex] = None,
        right_index: Optional[KeyIndex] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return join_indices(left_keys, right_keys, left_index, right_index)

    def _left_join_kernel(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        left_index: Optional[KeyIndex] = None,
        right_index: Optional[KeyIndex] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        return left_join_indices(left_keys, right_keys, left_index, right_index)

    def _group_kernel(
        self, key_columns: list[Column], index: Optional[KeyIndex] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        return group_rows(key_columns, index=index)

    def _distinct_kernel(self, columns: list[Column]) -> np.ndarray:
        return distinct_rows(columns)

    # ------------------------------------------------------------------
    # statement dispatch
    # ------------------------------------------------------------------

    def execute(self, statement: Statement) -> tuple[Optional[Relation], int]:
        """Run one statement; returns (result relation or None, rowcount)."""
        if isinstance(statement, Select):
            relation = self.run_select(statement)
            return relation, relation.n_rows
        if isinstance(statement, CreateTableAs):
            return None, self._create_table_as(statement)
        if isinstance(statement, CreateTable):
            return None, self._create_table(statement)
        if isinstance(statement, InsertValues):
            return None, self._insert_values(statement)
        if isinstance(statement, InsertSelect):
            return None, self._insert_select(statement)
        if isinstance(statement, DropTable):
            return None, self._drop(statement)
        if isinstance(statement, AlterRename):
            self.catalog.rename(statement.old, statement.new)
            return None, 0
        if isinstance(statement, TruncateTable):
            return None, self._truncate(statement)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _create_table_as(self, statement: CreateTableAs) -> int:
        relation = self.run_select(statement.select)
        names = relation.display_names
        if len(set(names)) != len(names):
            raise PlanError(
                f"cannot create table {statement.name!r}: duplicate column names {names}"
            )
        distribution = statement.distributed_by
        if distribution is not None and distribution not in names:
            raise PlanError(
                f"distribution column {distribution!r} is not in the select list"
            )
        if (
            distribution is not None
            and relation.n_rows > 0
            and relation.distribution != distribution
        ):
            # Result rows must be re-hashed onto the new distribution.
            self.stats.record_redistribution(relation.byte_size())
        stored = {
            display: relation.columns[key]
            for display, key in zip(names, relation.names)
        }
        table = Table(statement.name.lower(), stored, distribution)
        self.catalog.put(table)
        self.stats.record_table_created(table.byte_size(), table.n_rows)
        return table.n_rows

    def _create_table(self, statement: CreateTable) -> int:
        columns = {}
        for name, sql_type in statement.columns:
            columns[name] = Column(np.empty(0, dtype=dtype_for(sql_type)), sql_type)
        table = Table(statement.name.lower(), columns, statement.distributed_by)
        self.catalog.put(table)
        self.stats.record_table_created(0, 0)
        return 0

    def _insert_values(self, statement: InsertValues) -> int:
        table = self.catalog.get(statement.name)
        target_columns = statement.columns or tuple(table.column_names)
        if set(target_columns) != set(table.column_names):
            raise PlanError(
                f"INSERT must cover all columns of {statement.name!r} "
                f"({table.column_names})"
            )
        env = Environment({}, 1, self.registry)
        per_column: dict[str, list] = {name: [] for name in target_columns}
        masks: dict[str, list] = {name: [] for name in target_columns}
        for row in statement.rows:
            if len(row) != len(target_columns):
                raise PlanError("INSERT row arity mismatch")
            for name, expr in zip(target_columns, row):
                value = evaluate(expr, env)
                per_column[name].append(value.to_list()[0])
        columns = {}
        for name in target_columns:
            existing = table.column(name)
            raw = per_column[name]
            mask = np.array([v is None for v in raw], dtype=bool)
            filler = 0 if existing.sql_type in (INT64, FLOAT64, BOOL) else ""
            values = np.array(
                [filler if v is None else v for v in raw],
                dtype=dtype_for(existing.sql_type),
            )
            columns[name] = Column(values, existing.sql_type, mask if mask.any() else None)
        added = table.append(columns)
        self.stats.record_rows_appended(added, len(statement.rows))
        return len(statement.rows)

    def _insert_select(self, statement: InsertSelect) -> int:
        table = self.catalog.get(statement.name)
        relation = self.run_select(statement.select)
        target_columns = list(statement.columns or table.column_names)
        if len(relation.names) != len(target_columns):
            raise PlanError("INSERT ... SELECT arity mismatch")
        columns = {}
        for target, source in zip(target_columns, relation.names):
            columns[target] = relation.columns[source]
        added = table.append(columns)
        self.stats.record_rows_appended(added, relation.n_rows)
        return relation.n_rows

    def _drop(self, statement: DropTable) -> int:
        for name in statement.names:
            if statement.if_exists and name not in self.catalog:
                continue
            table = self.catalog.drop(name)
            self.stats.record_table_dropped(table.byte_size())
        return 0

    def _truncate(self, statement: TruncateTable) -> int:
        table = self.catalog.get(statement.name)
        freed = table.truncate()
        self.stats.record_table_dropped(freed)
        return 0

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------

    def run_select(self, select: Select) -> Relation:
        relations = [self._run_core(core) for core in select.cores]
        if len(relations) == 1:
            return relations[0]
        first = relations[0]
        for other in relations[1:]:
            if len(other.names) != len(first.names):
                raise PlanError("UNION ALL arms have different column counts")
        columns = {}
        for position, name in enumerate(first.names):
            parts = [rel.columns[rel.names[position]] for rel in relations]
            columns[name] = Column.concat(parts)
        return Relation(list(first.names), columns, None,
                        display_names=list(first.display_names))

    def _run_core(self, core: SelectCore) -> Relation:
        frame = self._build_from(core)
        if core.group_by or any(contains_aggregate(i.expr) for i in core.items):
            relation = self._aggregate(core, frame)
        else:
            relation = self._project(core, frame)
        if core.distinct:
            relation = self._distinct(relation)
        return relation

    # -- FROM/JOIN construction ------------------------------------------

    def _build_from(self, core: SelectCore) -> Frame:
        if not core.from_items:
            # SELECT without FROM: one anonymous row.
            return Frame({}, {}, 1, frozenset())
        frames: dict[str, Frame] = {}
        order: list[str] = []
        for item in core.from_items:
            frame = self._resolve_from_item(item)
            binding = item.binding
            if binding in frames:
                raise PlanError(f"duplicate table binding {binding!r}")
            frames[binding] = frame
            order.append(binding)
        inner_join_items: list[Join] = [j for j in core.joins if j.kind == "inner"]
        left_joins: list[Join] = [j for j in core.joins if j.kind == "left"]
        for join in inner_join_items:
            binding = join.table.binding
            if binding in frames:
                raise PlanError(f"duplicate table binding {binding!r}")
            frames[binding] = self._resolve_from_item(join.table)
            order.append(binding)

        predicates = _conjuncts(core.where)
        for join in inner_join_items:
            predicates.extend(_conjuncts(join.condition))

        # Classify predicates.
        filters: dict[str, list[Expression]] = {b: [] for b in order}
        join_edges: list[tuple[str, str, ColumnRef, ColumnRef]] = []
        residual: list[Expression] = []
        binding_columns = {b: set(f.bindings[b]) for b, f in frames.items()}
        for predicate in predicates:
            touched = _bindings_of(predicate, binding_columns)
            if len(touched) == 1 and next(iter(touched)) in filters:
                # Single-table predicate on an inner-joined table: push it
                # below the join.  (Predicates on LEFT JOIN bindings must
                # stay residual — e.g. `where s.v is null` anti-joins.)
                filters[next(iter(touched))].append(predicate)
            elif _as_join_edge(predicate, binding_columns) is not None:
                join_edges.append(_as_join_edge(predicate, binding_columns))
            else:
                residual.append(predicate)

        # Push single-table filters below the joins.
        for binding in order:
            if filters[binding]:
                frames[binding] = self._apply_filters(frames[binding], filters[binding])

        current = frames[order[0]]
        joined = {order[0]}
        pending = [b for b in order[1:]]
        unused_edges = list(join_edges)
        while pending:
            progressed = False
            for binding in list(pending):
                edges = [
                    e for e in unused_edges
                    if (_edge_bindings(e) == {binding} | (_edge_bindings(e) & joined))
                    and binding in _edge_bindings(e)
                    and len(_edge_bindings(e) & joined) == 1
                ]
                if not edges:
                    continue
                current = self._merge_inner(current, frames[binding], binding, edges)
                joined.add(binding)
                pending.remove(binding)
                for e in edges:
                    unused_edges.remove(e)
                progressed = True
                break
            if not progressed:
                binding = pending.pop(0)
                current = self._cartesian(current, frames[binding], binding)
                joined.add(binding)
        # Edges between already-joined bindings become residual filters.
        for left_ref, right_ref in [(e[2], e[3]) for e in unused_edges]:
            residual.append(BinaryOp("=", left_ref, right_ref))

        for join in left_joins:
            current = self._merge_left(current, join)

        if residual:
            current = self._apply_filters(current, residual)
        return current

    def _resolve_from_item(self, item: FromItem) -> Frame:
        if isinstance(item, TableRef):
            table = self.catalog.get(item.name)
            binding = item.binding
            columns = {
                f"{binding}.{name}": col for name, col in table.columns.items()
            }
            distribution = frozenset(
                {f"{binding}.{table.distribution_column}"}
                if table.distribution_column
                else set()
            )
            sources = {
                f"{binding}.{name}": (table, name) for name in table.columns
            }
            return Frame(columns, {binding: table.column_names}, table.n_rows,
                         distribution, sources)
        if isinstance(item, SubqueryRef):
            relation = self.run_select(item.select)
            binding = item.alias
            columns = {f"{binding}.{n}": relation.columns[n] for n in relation.names}
            distribution = frozenset(
                {f"{binding}.{relation.distribution}"} if relation.distribution else set()
            )
            return Frame(columns, {binding: list(relation.names)}, relation.n_rows,
                         distribution)
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _apply_filters(self, frame: Frame, predicates: list[Expression]) -> Frame:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        keep = np.ones(frame.length, dtype=bool)
        for predicate in predicates:
            keep &= truth_values(evaluate(predicate, env))
        if keep.all():
            return frame
        return frame.filter(keep)

    def _qualified(self, ref: ColumnRef, frame: Frame) -> str:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            if key not in frame.columns:
                raise PlanError(f"unknown column {ref.display()!r}")
            return key
        candidates = [
            f"{binding}.{ref.name}"
            for binding, cols in frame.bindings.items()
            if ref.name in cols
        ]
        if not candidates:
            raise PlanError(f"unknown column {ref.name!r}")
        if len(candidates) > 1:
            raise PlanError(f"ambiguous column {ref.name!r}")
        return candidates[0]

    def _charge_join_motion(self, frame: Frame, key_names: list[str]) -> None:
        """Account data motion for one join input."""
        colocated = bool(frame.distribution & set(key_names))
        plan = self.cluster.plan_motion(frame.byte_size(), frame.length, colocated)
        if plan.kind == "redistribute":
            self.stats.record_redistribution(plan.moved_bytes)
        elif plan.kind == "broadcast":
            self.stats.record_broadcast(
                plan.moved_bytes // self.cluster.n_segments, self.cluster.n_segments
            )

    def _merge_inner(
        self,
        left: Frame,
        right: Frame,
        right_binding: str,
        edges: list[tuple[str, str, ColumnRef, ColumnRef]],
    ) -> Frame:
        left_keys: list[Column] = []
        right_keys: list[Column] = []
        left_names: list[str] = []
        right_names: list[str] = []
        for _, _, ref_a, ref_b in edges:
            # Orient each edge: one side references the right binding.
            if _ref_binding(ref_b, right.bindings) == right_binding:
                left_ref, right_ref = ref_a, ref_b
            else:
                left_ref, right_ref = ref_b, ref_a
            lname = self._qualified(left_ref, left)
            rname = self._qualified(right_ref, right)
            left_keys.append(left.columns[lname])
            right_keys.append(right.columns[rname])
            left_names.append(lname)
            right_names.append(rname)
        left_index = right_index = None
        if len(edges) == 1:
            # Single-column equi-join (the dominant shape): the build side
            # consults — and on a miss populates — its table's index cache;
            # the probe side only picks up a cached index (free stats).
            right_index = self._stored_index(right, right_names[0], build=True)
            left_index = self._stored_index(left, left_names[0], build=False)
        if _ranges_disjoint(left_index, right_index):
            # Provably empty join: skip the kernel and the data motion a
            # stats-blind planner would have charged for co-location.
            self.stats.record_join_pruned()
            l_idx = r_idx = np.empty(0, dtype=np.int64)
        else:
            self._charge_join_motion(left, left_names)
            self._charge_join_motion(right, right_names)
            l_idx, r_idx = self._join_kernel(
                left_keys, right_keys, left_index=left_index, right_index=right_index
            )
        columns = {name: col.take(l_idx) for name, col in left.columns.items()}
        columns.update({name: col.take(r_idx) for name, col in right.columns.items()})
        bindings = dict(left.bindings)
        bindings.update(right.bindings)
        distribution = frozenset(left_names) | frozenset(right_names)
        return Frame(columns, bindings, int(l_idx.shape[0]), distribution)

    def _cartesian(self, left: Frame, right: Frame, right_binding: str) -> Frame:
        total = left.length * right.length
        if total > MAX_CARTESIAN_ROWS:
            raise PlanError(
                f"refusing cartesian product of {left.length} x {right.length} rows; "
                "add an equality join predicate"
            )
        l_idx = np.repeat(np.arange(left.length), right.length)
        r_idx = np.tile(np.arange(right.length), left.length)
        self._charge_join_motion(left, [])
        self._charge_join_motion(right, [])
        columns = {name: col.take(l_idx) for name, col in left.columns.items()}
        columns.update({name: col.take(r_idx) for name, col in right.columns.items()})
        bindings = dict(left.bindings)
        bindings.update(right.bindings)
        return Frame(columns, bindings, total, frozenset())

    def _merge_left(self, left: Frame, join: Join) -> Frame:
        right = self._resolve_from_item(join.table)
        binding = join.table.binding
        if binding in left.bindings:
            raise PlanError(f"duplicate table binding {binding!r}")
        conjuncts = _conjuncts(join.condition)
        binding_columns = {b: set(cols) for b, cols in left.bindings.items()}
        binding_columns[binding] = set(right.bindings[binding])
        left_keys: list[Column] = []
        right_keys: list[Column] = []
        left_names: list[str] = []
        right_names: list[str] = []
        residual: list[Expression] = []
        for predicate in conjuncts:
            edge = _as_join_edge(predicate, binding_columns)
            if edge is None:
                residual.append(predicate)
                continue
            _, _, ref_a, ref_b = edge
            if _ref_binding(ref_b, {binding: right.bindings[binding]}) == binding:
                left_ref, right_ref = ref_a, ref_b
            elif _ref_binding(ref_a, {binding: right.bindings[binding]}) == binding:
                left_ref, right_ref = ref_b, ref_a
            else:
                residual.append(predicate)
                continue
            left_names.append(self._qualified(left_ref, left))
            right_names.append(self._qualified(right_ref, right))
            left_keys.append(left.columns[left_names[-1]])
            right_keys.append(right.columns[right_names[-1]])
        if not left_keys:
            raise PlanError("LEFT JOIN requires at least one equality condition")
        if residual:
            raise PlanError("non-equality LEFT JOIN conditions are not supported")
        right_index = None
        if len(left_keys) == 1:
            right_index = self._stored_index(right, right_names[0], build=True)
        self._charge_join_motion(left, left_names)
        self._charge_join_motion(right, right_names)
        l_idx, r_idx = self._left_join_kernel(
            left_keys, right_keys, right_index=right_index
        )
        columns = {name: col.take(l_idx) for name, col in left.columns.items()}
        unmatched = r_idx == NO_MATCH
        safe_idx = np.where(unmatched, 0, r_idx)
        for name, col in right.columns.items():
            if right.length == 0:
                gathered = Column.nulls(int(l_idx.shape[0]), col.sql_type)
            else:
                gathered = col.take(safe_idx)
                mask = gathered.null_mask() | unmatched
                gathered = Column(gathered.values, gathered.sql_type, mask)
            columns[name] = gathered
        bindings = dict(left.bindings)
        bindings.update(right.bindings)
        distribution = frozenset(left_names)
        return Frame(columns, bindings, int(l_idx.shape[0]), distribution)

    # -- projection / aggregation / distinct -------------------------------

    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"column{position + 1}"

    def _project(self, core: SelectCore, frame: Frame) -> Relation:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        names: list[str] = []
        display: list[str] = []
        columns: dict[str, Column] = {}
        qualified_by_output: dict[str, str] = {}
        position = 0

        def key_for(name: str) -> str:
            return name if name not in columns else f"{name}__{position + 1}"

        for item in core.items:
            if isinstance(item.expr, Star):
                for binding, cols in frame.bindings.items():
                    for col in cols:
                        key = key_for(col)
                        names.append(key)
                        display.append(col)
                        columns[key] = frame.columns[f"{binding}.{col}"]
                        qualified_by_output[key] = f"{binding}.{col}"
                        position += 1
                continue
            name = self._output_name(item, position)
            key = key_for(name)
            columns[key] = evaluate(item.expr, env)
            names.append(key)
            display.append(name)
            if isinstance(item.expr, ColumnRef):
                qualified_by_output[key] = self._qualified(item.expr, frame)
            position += 1
        distribution = None
        for name, qualified in qualified_by_output.items():
            if qualified in frame.distribution:
                distribution = name
                break
        return Relation(names, columns, distribution, display_names=display)

    def _aggregate(self, core: SelectCore, frame: Frame) -> Relation:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        group_refs: list[ColumnRef] = []
        for expr in core.group_by:
            if not isinstance(expr, ColumnRef):
                raise PlanError("GROUP BY supports plain column references only")
            group_refs.append(expr)
        key_columns = [env.lookup(ref) for ref in group_refs]

        if key_columns:
            group_index = None
            if len(group_refs) == 1:
                # A group key scanned straight off a stored table uses (and
                # warms) the table's index cache: the sort performed here is
                # the same one the round's joins need.
                group_index = self._stored_index(
                    frame, self._qualified(group_refs[0], frame), build=True
                )
            order, starts = self._group_kernel(key_columns, index=group_index)
            n_groups = int(starts.shape[0])
            counts = np.diff(np.append(starts, order.shape[0]))
        else:
            order = np.arange(frame.length)
            starts = np.zeros(1, dtype=np.int64)
            n_groups = 1
            counts = np.array([frame.length])

        # Motion: grouping needs rows co-located by the group key.
        if key_columns:
            key_names = [self._qualified(ref, frame) for ref in group_refs]
            colocated = bool(frame.distribution & set(key_names))
            plan = self.cluster.plan_motion(frame.byte_size(), frame.length, colocated)
            if plan.kind == "redistribute":
                self.stats.record_redistribution(plan.moved_bytes)
            elif plan.kind == "broadcast":
                self.stats.record_broadcast(
                    plan.moved_bytes // self.cluster.n_segments,
                    self.cluster.n_segments,
                )

        aggregates: list[Aggregate] = []
        for item in core.items:
            collect_aggregates(item.expr, aggregates)
        agg_results: dict[Aggregate, Column] = {}
        for node in aggregates:
            agg_results[node] = self._compute_aggregate(
                node, env, frame, order, starts, counts, n_groups, key_columns
            )

        group_env_columns: dict[str, Column] = {}
        for ref, column in zip(group_refs, key_columns):
            grouped = column.take(order[starts]) if n_groups else column.take(starts)
            qualified = self._qualified(ref, frame)
            group_env_columns[qualified] = grouped
            group_env_columns.setdefault(ref.name, grouped)
        group_env = Environment(
            group_env_columns, n_groups, self.registry, aggregates=agg_results
        )

        names: list[str] = []
        display: list[str] = []
        columns: dict[str, Column] = {}
        qualified_by_output: dict[str, str] = {}
        for position, item in enumerate(core.items):
            if isinstance(item.expr, Star):
                raise PlanError("'*' cannot be combined with GROUP BY")
            name = self._output_name(item, position)
            key = name if name not in columns else f"{name}__{position + 1}"
            self._check_grouped_refs(item.expr, group_refs)
            columns[key] = evaluate(item.expr, group_env)
            names.append(key)
            display.append(name)
            if isinstance(item.expr, ColumnRef):
                qualified_by_output[key] = self._qualified(item.expr, frame)
        distribution = None
        if key_columns:
            first_key = self._qualified(group_refs[0], frame)
            for name, qualified in qualified_by_output.items():
                if qualified == first_key:
                    distribution = name
                    break
        return Relation(names, columns, distribution, display_names=display)

    def _check_grouped_refs(
        self, expr: Expression, group_refs: list[ColumnRef]
    ) -> None:
        """Reject references to non-grouped columns outside aggregates."""
        if isinstance(expr, Aggregate):
            return
        if isinstance(expr, ColumnRef):
            for ref in group_refs:
                if ref.name == expr.name and (
                    expr.table is None or ref.table is None or ref.table == expr.table
                ):
                    return
            raise PlanError(
                f"column {expr.display()!r} must appear in GROUP BY or an aggregate"
            )
        if isinstance(expr, BinaryOp):
            self._check_grouped_refs(expr.left, group_refs)
            self._check_grouped_refs(expr.right, group_refs)
        elif hasattr(expr, "operand"):
            self._check_grouped_refs(expr.operand, group_refs)
        elif hasattr(expr, "args"):
            for arg in expr.args:
                self._check_grouped_refs(arg, group_refs)

    def _compute_aggregate(
        self,
        node: Aggregate,
        env: Environment,
        frame: Frame,
        order: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        n_groups: int,
        key_columns: list[Column],
    ) -> Column:
        if node.name == "count" and node.arg is None:
            return Column(counts.astype(np.int64), INT64)
        if node.arg is None:
            raise PlanError(f"{node.name}() requires an argument")
        argument = evaluate(node.arg, env)
        if node.distinct:
            return self._count_distinct(argument, key_columns, n_groups)
        if order.shape[0] == 0:
            # Global aggregate over an empty input: count is 0, the others
            # are NULL (SQL semantics); grouped aggregates have no groups.
            if n_groups == 0:
                return Column(np.empty(0, dtype=np.int64), INT64)
            if node.name == "count":
                return Column(np.zeros(n_groups, dtype=np.int64), INT64)
            return Column.nulls(n_groups, argument.sql_type)
        sorted_values = argument.values[order]
        sorted_mask = argument.null_mask()[order]
        valid_counts = np.add.reduceat(
            (~sorted_mask).astype(np.int64), starts
        ) if n_groups else np.zeros(0, dtype=np.int64)
        if node.name == "count":
            return Column(valid_counts, INT64)
        if argument.sql_type not in (INT64, FLOAT64, BOOL):
            raise PlanError(f"{node.name}() on non-numeric column")
        dtype = argument.values.dtype
        if node.name in ("min", "max"):
            if argument.sql_type == INT64:
                sentinel = np.iinfo(np.int64).max if node.name == "min" \
                    else np.iinfo(np.int64).min
            else:
                sentinel = np.inf if node.name == "min" else -np.inf
            padded = np.where(sorted_mask, sentinel, sorted_values)
            reducer = np.minimum if node.name == "min" else np.maximum
            values = reducer.reduceat(padded, starts) if n_groups else padded
            mask = valid_counts == 0
            return Column(
                values.astype(dtype, copy=False),
                argument.sql_type,
                mask if mask.any() else None,
            )
        if node.name in ("sum", "avg"):
            padded = np.where(sorted_mask, 0, sorted_values)
            sums = np.add.reduceat(padded.astype(np.float64), starts) if n_groups \
                else np.zeros(0)
            mask = valid_counts == 0
            if node.name == "sum":
                if argument.sql_type == INT64:
                    return Column(
                        sums.astype(np.int64), INT64, mask if mask.any() else None
                    )
                return Column(sums, FLOAT64, mask if mask.any() else None)
            with np.errstate(invalid="ignore", divide="ignore"):
                averages = sums / valid_counts
            return Column(averages, FLOAT64, mask if mask.any() else None)
        raise PlanError(f"unknown aggregate {node.name!r}")

    def _count_distinct(
        self, argument: Column, key_columns: list[Column], n_groups: int
    ) -> Column:
        """count(distinct x), per group (or globally when no GROUP BY)."""
        valid = ~argument.null_mask()
        all_columns = [col.filter(valid) for col in key_columns]
        all_columns.append(argument.filter(valid))
        unique_idx = distinct_rows(all_columns)
        if not key_columns:
            return Column(np.array([unique_idx.shape[0]], dtype=np.int64), INT64)
        unique_keys = [col.take(unique_idx) for col in all_columns[:-1]]
        inner_order, inner_starts = group_rows(unique_keys)
        per_group = np.diff(np.append(inner_starts, inner_order.shape[0]))
        # Align with the outer grouping: groups with only-NULL arguments or
        # no rows at all are missing here; rebuild by joining on key order.
        outer_order, outer_starts = group_rows(key_columns)
        outer_keys = [col.take(outer_order[outer_starts]) for col in key_columns]
        inner_key_rows = [col.take(inner_order[inner_starts]) for col in unique_keys]
        l_idx, r_idx = join_indices(outer_keys, inner_key_rows)
        result = np.zeros(n_groups, dtype=np.int64)
        result[l_idx] = per_group[r_idx]
        return Column(result, INT64)

    def _distinct(self, relation: Relation) -> Relation:
        columns = [relation.columns[n] for n in relation.names]
        if not columns or relation.n_rows == 0:
            return relation
        colocated = relation.distribution is not None
        plan = self.cluster.plan_motion(
            relation.byte_size(), relation.n_rows, colocated
        )
        if plan.kind == "redistribute":
            self.stats.record_redistribution(plan.moved_bytes)
        elif plan.kind == "broadcast":
            self.stats.record_broadcast(
                plan.moved_bytes // self.cluster.n_segments, self.cluster.n_segments
            )
        keep = self._distinct_kernel(columns)
        keep = np.sort(keep)
        new_columns = {n: relation.columns[n].take(keep) for n in relation.names}
        return Relation(list(relation.names), new_columns, relation.distribution)


# ---------------------------------------------------------------------------
# predicate analysis helpers
# ---------------------------------------------------------------------------


def _ranges_disjoint(
    left_index: Optional[KeyIndex], right_index: Optional[KeyIndex]
) -> bool:
    """True when two key indexes prove an equi-join can match nothing."""
    if left_index is None or right_index is None:
        return False
    if left_index.min_value is None or right_index.min_value is None:
        return False
    return (
        left_index.min_value > right_index.max_value
        or left_index.max_value < right_index.min_value
    )


def _conjuncts(expr: Optional[Expression]) -> list[Expression]:
    """Flatten a predicate into AND-connected conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _ref_binding(ref: ColumnRef, bindings: dict[str, list[str]]) -> Optional[str]:
    if ref.table is not None:
        return ref.table if ref.table in bindings else None
    owners = [b for b, cols in bindings.items() if ref.name in cols]
    if len(owners) == 1:
        return owners[0]
    return None


def _bindings_of(
    expr: Expression, binding_columns: dict[str, set[str]]
) -> set[str]:
    refs: list[ColumnRef] = []
    collect_column_refs(expr, refs)
    touched: set[str] = set()
    for ref in refs:
        if ref.table is not None:
            touched.add(ref.table)
        else:
            owners = [b for b, cols in binding_columns.items() if ref.name in cols]
            if len(owners) == 1:
                touched.add(owners[0])
            else:
                # Ambiguous or unknown: treat as touching everything so the
                # predicate is applied after all joins (and resolution errors
                # surface with a clear message there).
                touched.update(binding_columns.keys())
    return touched


def _as_join_edge(
    expr: Expression, binding_columns: dict[str, set[str]]
) -> Optional[tuple[str, str, ColumnRef, ColumnRef]]:
    """Return (binding_a, binding_b, ref_a, ref_b) for `a.x = b.y` predicates."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    bindings = {b: list(cols) for b, cols in binding_columns.items()}
    left_binding = _ref_binding(left, bindings)
    right_binding = _ref_binding(right, bindings)
    if left_binding is None or right_binding is None:
        return None
    if left_binding == right_binding:
        return None
    return left_binding, right_binding, left, right


def _edge_bindings(edge: tuple[str, str, ColumnRef, ColumnRef]) -> set[str]:
    return {edge[0], edge[1]}
