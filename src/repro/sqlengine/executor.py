"""Statement execution: running compiled physical plans.

Planning and execution are now separate layers.  The planner
(:mod:`repro.sqlengine.physicalplan`) turns a parsed statement into a
:class:`~repro.sqlengine.physicalplan.PhysicalPlan` — resolved FROM items,
predicate classification (per-table filters pushed below the joins,
equi-join edges, residual post-join filters), the greedy join order the
paper credits for much of the in-database performance, per-step column
gathers, compiled distribution sets for the motion verdicts, and fused
pipelines.  The executor here runs those plans: per statement *template*
the plan is compiled once, cached next to the template's AST, cheaply
re-validated against table schemas, and re-executed with only parameter
patching — the per-round statements of the reproduced algorithms stop
paying any planning cost.

Join and group execution is *index-aware*.  Base-table frames carry
provenance (``Frame.sources``): as long as a frame is an unfiltered scan of
a stored table, its columns are traceable back to that table, and keyed
operators consult the table's versioned index cache
(:meth:`~repro.sqlengine.table.Table.ensure_index`).  A cached
:class:`~repro.sqlengine.operators.KeyIndex` supplies the build side of a
join pre-sorted (with uniqueness, sortedness and min/max stats), so the
second and third join against the same table — the paper's per-round
``reps`` pattern — skips its sort entirely; a GROUP BY over a column the
index proves pre-sorted on disk skips both its sort and its gather.  The
stats also drive **join pruning**: when both sides' key ranges are provably
disjoint, the executor emits an empty result without running the kernel
*and without charging the data motion* a stats-blind planner would have
paid.

Kernels run **segment-parallel** when a
:class:`~repro.sqlengine.mpp.SegmentPool` is attached and the input is
large enough: joins and aggregations hash-partition their rows by the
cluster's splitmix64 segment assignment and execute partitions on worker
threads, with output bit-identical to the single-threaded kernels (see
:mod:`repro.sqlengine.parallel`).  The executor is backend-transparent: a
:class:`~repro.sqlengine.mpp.ProcessSegmentPool` runs the very same
kernels in worker processes over shared-memory column buffers — same
partitioning, same recombination, same labels — with automatic thread
fallback for payloads that cannot be shared.

Join pipelines of two or more steps run **chain-fused** (see
:class:`_JoinChain`): a join feeding another join's build side never
materialises its output — the executor keeps per-binding row-index maps,
composes them through each join's output indices, and gathers every
downstream-consumed column exactly once, whether it is the next join's
key, a fused DISTINCT/GROUP BY input, or part of the chain-final frame.
LEFT OUTER JOINs stream inside the chain too: their null-extended probe
rows ride the composed maps as ``NO_MATCH`` validity markers that only
materialisation resolves into null masks, so an outer join can sit in any
chain position — including the fused final.

MPP accounting happens where a real MPP executor would move data: a join or
aggregation whose input is not already distributed on its key charges a
redistribution (or a broadcast for small inputs) to the engine statistics.
Distribution is tracked as a *set* of equivalent column names, compiled
into the plan: after an inner join on ``l.k = r.v`` the result is
hash-distributed on the common key value, so both ``l.k`` and ``r.v`` count
as its distribution columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .ast_nodes import (
    Aggregate,
    AlterRename,
    BinaryOp,
    ColumnRef,
    CreateTable,
    CreateTableAs,
    DropTable,
    Expression,
    InsertSelect,
    InsertValues,
    Select,
    SelectCore,
    SelectItem,
    Star,
    Statement,
    TruncateTable,
)
from .errors import CatalogError, ExecutionError, PlanError
from .expressions import (
    AMBIGUOUS,
    Environment,
    collect_aggregates,
    evaluate,
    truth_values,
)
from .functions import FunctionRegistry
from .mpp import Cluster, SegmentPool, in_pool_task, task_scope
from .operators import (
    NO_MATCH,
    KeyIndex,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
)
from .parallel import (
    PARALLEL_MIN_ROWS,
    AggregateSpec,
    parallel_group_aggregate,
    parallel_join_indices,
    parallel_left_join_indices,
    parallel_left_probe_indexed,
    parallel_probe_indexed,
)
from .physicalplan import (
    CorePlan,
    JoinStepPlan,
    LeftJoinPlan,
    PhysicalPlan,
    ScanPlan,
    SelectPlan,
    compile_statement,
    plan_is_valid,
)
from .stats import EngineStats
from .table import Catalog, Table
from .types import BOOL, FLOAT64, INT64, Column, dtype_for
from .types import _FIXED_WIDTH

#: Safety valve: a join step with no usable equality predicate falls back to
#: a cartesian product only below this many output rows.
MAX_CARTESIAN_ROWS = 1 << 21


@dataclass
class Relation:
    """An executed query result: ordered named columns.

    ``names`` are unique storage keys into ``columns``; ``display_names``
    are the user-visible column names, which SQL allows to repeat in a
    plain SELECT (``select a.w, b.w ...``).  They differ only when a
    projection produced duplicates.
    """

    names: list[str]
    columns: dict[str, Column]
    distribution: Optional[str] = None
    display_names: Optional[list[str]] = None

    def __post_init__(self) -> None:
        if self.display_names is None:
            self.display_names = list(self.names)

    @property
    def n_rows(self) -> int:
        if not self.names:
            return 0
        return len(self.columns[self.names[0]])

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(f"result has no column {name!r}")

    def rows(self, limit: Optional[int] = None) -> list[tuple]:
        """Materialise as Python row tuples (small results only).

        ``limit`` caps the number of rows materialised — rendering paths
        that show only the head of a result should pass it rather than
        paying for full-column Python list conversion.
        """
        if limit is not None and limit < self.n_rows:
            head = {n: self.columns[n].take(np.arange(limit)) for n in self.names}
            lists = [head[n].to_list() for n in self.names]
        else:
            lists = [self.columns[n].to_list() for n in self.names]
        return list(zip(*lists)) if lists else []

    def byte_size(self) -> int:
        return sum(self.columns[n].byte_size() for n in self.names)


@dataclass
class Frame:
    """An intermediate relation during FROM/JOIN processing.

    ``sources`` is column provenance: while the frame is an unfiltered scan
    of a stored table, each qualified column name maps to its
    ``(table, column_name)`` origin, which lets keyed operators consult the
    table's index cache.  Any row-reordering operation (filter, gather,
    join) drops provenance, since cached indexes are positional.
    """

    columns: dict[str, Column]  # key: "binding.column"
    bindings: dict[str, list[str]]  # binding -> column names, in order
    length: int
    distribution: frozenset[str] = frozenset()  # qualified names, value-equal
    sources: dict[str, tuple] = field(default_factory=dict)

    def byte_size(self) -> int:
        return sum(col.byte_size() for col in self.columns.values())

    def env_columns(self) -> dict[str, Column]:
        """Qualified plus bare name bindings (ambiguous bare names marked)."""
        env: dict[str, Column] = dict(self.columns)
        seen: dict[str, int] = {}
        for binding, cols in self.bindings.items():
            for col in cols:
                seen[col] = seen.get(col, 0) + 1
        for binding, cols in self.bindings.items():
            for col in cols:
                if seen[col] == 1:
                    env[col] = self.columns[f"{binding}.{col}"]
                else:
                    env[col] = AMBIGUOUS
        return env

    def take(self, indices: np.ndarray) -> "Frame":
        columns = {name: col.take(indices) for name, col in self.columns.items()}
        return Frame(columns, self.bindings, int(indices.shape[0]), self.distribution)

    def filter(self, keep: np.ndarray) -> "Frame":
        columns = {name: col.filter(keep) for name, col in self.columns.items()}
        return Frame(columns, self.bindings, int(keep.sum()), self.distribution)


def _gather_padded(col: Column, safe_idx: np.ndarray, unmatched: np.ndarray,
                   build_len: int, out_len: int) -> Column:
    """Gather one build-side column of a LEFT OUTER JOIN output.

    ``safe_idx`` is the zero-clamped gather map and ``unmatched`` marks the
    null-extended rows whose markers OR into the null mask; an empty build
    side pads an all-NULL column of the scanned type.  This is the single
    definition of outer-join padding — the staged runner and the chain both
    call it, so their columns are bit-identical by construction.
    """
    if build_len == 0:
        return Column.nulls(out_len, col.sql_type)
    gathered = col.take(safe_idx)
    return Column(gathered.values, gathered.sql_type,
                  gathered.null_mask() | unmatched)


class _ChainColumns:
    """Lazy qualified-name → :class:`~repro.sqlengine.types.Column` view of a
    :class:`_JoinChain`: each access gathers that one column through the
    chain's composed row map."""

    __slots__ = ("_chain",)

    def __init__(self, chain: "_JoinChain"):
        self._chain = chain

    def __getitem__(self, name: str) -> Column:
        return self._chain.column(name)


class _JoinChain:
    """A virtual frame over a fused chain of joins.

    Where the staged pipeline materialises every join step's output —
    gathering each surviving column of both inputs at every step — the
    chain keeps only a per-binding *row-index map* into the base frames and
    composes it through each join's output indices (``map ∘ l_idx``, the
    same monotone-index composition :class:`FusedGroupPlan` exploits).  A
    column is gathered exactly once, when something downstream finally
    consumes it: the next join's key, a fused projection, an aggregate
    argument, or the chain-final materialisation.

    LEFT OUTER JOINs stream through the chain too: a binding that entered
    via an outer join carries ``NO_MATCH`` entries in its row map (one per
    null-extended probe row).  The validity information composes with the
    maps for free — later joins gather the ``NO_MATCH`` markers like any
    other entry — and only materialisation resolves it, gathering through a
    zero-clamped map and OR-ing the marker positions into the column's null
    mask, exactly the padded column the staged left-join runner builds.

    The chain duck-types the ``Frame`` surface the join-step runner reads —
    ``columns`` (lazy), ``sources``, ``length``, ``distribution`` and
    ``byte_size()`` — so kernel dispatch, index-cache consultation, range
    pruning and motion accounting run the exact code the staged pipeline
    runs.  ``byte_size()`` reports byte-for-byte the size the staged
    pipeline's frame would have had: fixed-width columns at width × rows
    plus the gathered null mask, text columns at their exact per-row byte
    lengths gathered through the composed map (the base column's row widths
    are computed once per chain and re-gathered per step).
    """

    __slots__ = ("_frames", "_maps", "_outer", "_gather_cache", "_base",
                 "_staged_cols", "_text_widths", "columns", "length",
                 "distribution", "n_joins", "n_outer")

    def __init__(self, frame: Frame):
        self._frames: dict[str, Frame] = {b: frame for b in frame.bindings}
        self._maps: dict[str, Optional[np.ndarray]] = {
            b: None for b in frame.bindings
        }
        #: Bindings whose row map may hold NO_MATCH (joined via LEFT JOIN).
        self._outer: set[str] = set()
        #: Per-binding (safe map, invalid mask), computed once per applied
        #: join and shared by every column gather and byte_size pass.
        self._gather_cache: dict[str, tuple] = {}
        self._base = frame
        self._staged_cols = list(frame.columns)
        #: Per-row byte widths of text columns, cached per qualified name.
        self._text_widths: dict[str, np.ndarray] = {}
        self.columns = _ChainColumns(self)
        self.length = frame.length
        self.distribution = frame.distribution
        self.n_joins = 0
        self.n_outer = 0

    @property
    def sources(self) -> dict:
        """Column provenance: the base frame's while no join ran (a scan's
        cached indexes stay reachable), empty afterwards — exactly when the
        staged pipeline's materialised frames lose provenance too."""
        return self._base.sources if self.n_joins == 0 else {}

    def _gather_state(
        self, binding: str
    ) -> tuple[Frame, Optional[np.ndarray], Optional[np.ndarray]]:
        """(frame, zero-clamped gather map, null-extension mask) for one
        binding; the mask is ``None`` when every mapped row is valid.
        Cached per binding until the next applied join."""
        frame = self._frames[binding]
        row_map = self._maps[binding]
        if row_map is None or binding not in self._outer:
            return frame, row_map, None
        state = self._gather_cache.get(binding)
        if state is None:
            invalid = row_map == NO_MATCH
            if invalid.any():
                state = (np.where(invalid, 0, row_map), invalid)
            else:
                state = (row_map, None)
            self._gather_cache[binding] = state
        return frame, state[0], state[1]

    def column(self, qualified: str) -> Column:
        binding = qualified.split(".", 1)[0]
        frame, safe_map, invalid = self._gather_state(binding)
        col = frame.columns[qualified]
        if invalid is None:
            return col if safe_map is None else col.take(safe_map)
        return _gather_padded(col, safe_map, invalid, frame.length,
                              self.length)

    def _text_row_widths(self, qualified: str, col: Column) -> np.ndarray:
        """Exact byte length of each base row of a text column (the same
        per-row charge :meth:`Column.byte_size` sums), cached per chain."""
        widths = self._text_widths.get(qualified)
        if widths is None:
            widths = np.fromiter(
                (len(str(v)) for v in col.values), dtype=np.int64,
                count=len(col),
            )
            self._text_widths[qualified] = widths
        return widths

    def byte_size(self) -> int:
        if self.n_joins == 0:
            return self._base.byte_size()
        total = 0
        for qualified in self._staged_cols:
            binding = qualified.split(".", 1)[0]
            frame, safe_map, invalid = self._gather_state(binding)
            col = frame.columns[qualified]
            if invalid is not None and frame.length == 0:
                total += Column.nulls(self.length, col.sql_type).byte_size()
                continue
            width = _FIXED_WIDTH.get(col.sql_type)
            if width is None:
                widths = self._text_row_widths(qualified, col)
                gathered = widths if safe_map is None else widths[safe_map]
                total += int(gathered.sum()) + self.length
            else:
                total += width * self.length
            if invalid is not None or (
                col.mask is not None
                and (safe_map is None or bool(col.mask[safe_map].any()))
            ):
                total += self.length
        return total

    def apply(self, l_idx: np.ndarray, r_idx: np.ndarray, right: Frame,
              step, outer: bool = False) -> None:
        """Fold one executed join step into the chain's row maps.

        ``outer`` marks a LEFT JOIN: ``r_idx`` then carries ``NO_MATCH``
        for null-extended probe rows, which the right bindings' maps keep
        as validity markers.  ``l_idx`` always holds valid chain rows, so
        composing the existing maps needs no special casing — a NO_MATCH
        already present in an earlier outer binding's map is gathered
        through like any other entry.
        """
        for binding, row_map in self._maps.items():
            self._maps[binding] = l_idx if row_map is None else row_map[l_idx]
        for binding in right.bindings:
            self._frames[binding] = right
            self._maps[binding] = r_idx
            if outer:
                self._outer.add(binding)
        self._gather_cache.clear()
        self.length = int(l_idx.shape[0])
        self.distribution = step.out_distribution
        self._staged_cols = list(step.left_gather) + list(step.right_gather)
        self.n_joins += 1
        if outer:
            self.n_outer += 1

    def materialise(self, step) -> Frame:
        """The frame the staged pipeline would have produced after ``step``
        — each surviving column gathered once, through the composed map."""
        columns = {
            name: self.column(name)
            for name in list(step.left_gather) + list(step.right_gather)
        }
        return Frame(columns, step.out_bindings, self.length,
                     step.out_distribution)


class Executor:
    """Executes parsed statements against a catalog."""

    #: Contract of this executor's join kernels: output rows are grouped by
    #: left row, ascending.  The fused join->GROUP BY expansion
    #: (:func:`_expand_group_order`) relies on it; executors whose kernels
    #: break it — the Spark model's partition-major concatenation — must
    #: set this False so the shape falls back to the staged pipeline.
    monotone_join_output = True

    def __init__(
        self,
        catalog: Catalog,
        registry: FunctionRegistry,
        cluster: Cluster,
        stats: EngineStats,
        use_index_cache: bool = True,
        pool: Optional[SegmentPool] = None,
        use_fusion: bool = True,
    ):
        self.catalog = catalog
        self.registry = registry
        self.cluster = cluster
        self.stats = stats
        #: Consult stored tables' index caches for joins/grouping.  Disabled
        #: by backends that model index-less engines (the Spark comparison),
        #: and by tests that need the seed execution strategy.
        self.use_index_cache = use_index_cache
        #: Segment-parallel kernel execution (None = single-threaded).
        self.pool = pool
        #: Compile plans with column pruning and fused join->DISTINCT;
        #: False reproduces the seed's materialising pipeline.
        self.use_fusion = use_fusion

    def _stored_index(
        self, frame: Frame, qualified_name: str, build: bool
    ) -> Optional[KeyIndex]:
        """Fetch (or build) the table index backing a frame column, if any.

        ``build=False`` only returns an already-cached index — used for
        probe sides, where building an index the kernel would not otherwise
        need is wasted work, but reusing a free one enables range pruning.
        """
        if not self.use_index_cache:
            return None
        source = frame.sources.get(qualified_name)
        if source is None:
            return None
        table, column_name = source
        cached = table.cached_index(column_name)
        if cached is not None:
            self.stats.record_index_cache_hit()
            return cached
        if not build:
            return None
        index = table.ensure_index(column_name)
        if index is not None:
            self.stats.record_index_cache_miss()
        return index

    # ------------------------------------------------------------------
    # operator kernels — overridable execution strategy
    #
    # The default engine runs each kernel once over whole columns (an MPP
    # database's co-located, vectorised execution), switching to
    # segment-parallel partitions for large inputs when a pool is attached.
    # The Spark-SQL comparison backend (repro.spark) overrides these with
    # partitioned, shuffle-everything equivalents.
    # ------------------------------------------------------------------

    def _parallel_join_eligible(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        left_index: Optional[KeyIndex],
        right_index: Optional[KeyIndex],
    ) -> bool:
        pool = self.pool
        return (
            pool is not None
            and pool.n_workers > 1
            and left_index is None
            and right_index is None
            and len(left_keys) == 1
            and left_keys[0].mask is None
            and right_keys[0].mask is None
            and left_keys[0].values.dtype.kind == "i"
            and right_keys[0].values.dtype.kind == "i"
            and max(len(left_keys[0]), len(right_keys[0])) >= PARALLEL_MIN_ROWS
        )

    def _parallel_probe_eligible(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        right_index: Optional[KeyIndex],
    ) -> bool:
        """Cached build-side index present: the probe side can be chunked."""
        pool = self.pool
        return (
            pool is not None
            and pool.n_workers > 1
            and right_index is not None
            and len(left_keys) == 1
            and left_keys[0].mask is None
            and right_keys[0].mask is None
            and left_keys[0].values.dtype.kind == "i"
            and right_keys[0].values.dtype.kind == "i"
            and len(left_keys[0]) >= PARALLEL_MIN_ROWS
        )

    def _join_kernel(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        left_index: Optional[KeyIndex] = None,
        right_index: Optional[KeyIndex] = None,
        note: Optional[list] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._parallel_join_eligible(left_keys, right_keys,
                                        left_index, right_index):
            self.stats.record_parallel_partitions(self.pool.n_segments)
            return parallel_join_indices(left_keys, right_keys, self.pool, note)
        if self._parallel_probe_eligible(left_keys, right_keys, right_index):
            local_note: list = []
            result = parallel_probe_indexed(left_keys, right_keys, right_index,
                                            self.pool, local_note)
            self._record_probe_note(local_note, note)
            return result
        return join_indices(left_keys, right_keys, left_index, right_index, note)

    def _record_probe_note(
        self, local_note: list, note: Optional[list]
    ) -> None:
        """Fold a parallel-probe kernel's note into stats and the caller's
        note (the kernel may have fallen back to a single-threaded path)."""
        if local_note and local_note[-1].startswith("parallel-"):
            self.stats.record_parallel_partitions(self.pool.n_segments)
            if local_note[-1].startswith("parallel-dense"):
                self.stats.record_parallel_dense_probe()
            else:
                self.stats.record_parallel_indexed_probe()
        if note is not None:
            note.extend(local_note)

    def _left_join_kernel(
        self,
        left_keys: list[Column],
        right_keys: list[Column],
        left_index: Optional[KeyIndex] = None,
        right_index: Optional[KeyIndex] = None,
        note: Optional[list] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._parallel_join_eligible(left_keys, right_keys,
                                        left_index, right_index):
            self.stats.record_parallel_partitions(self.pool.n_segments)
            return parallel_left_join_indices(left_keys, right_keys,
                                              self.pool, note)
        if self._parallel_probe_eligible(left_keys, right_keys, right_index):
            local_note: list = []
            result = parallel_left_probe_indexed(
                left_keys, right_keys, right_index, self.pool, local_note
            )
            self._record_probe_note(local_note, note)
            return result
        return left_join_indices(left_keys, right_keys, left_index,
                                 right_index, note)

    def _group_kernel(
        self, key_columns: list[Column], index: Optional[KeyIndex] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        return group_rows(key_columns, index=index)

    def _distinct_kernel(
        self, columns: list[Column], note: Optional[list] = None
    ) -> np.ndarray:
        """First-occurrence rows, in ascending row order (the kernels'
        contract; overriding executors must normalise their own output)."""
        return distinct_rows(columns, note=note)

    def _run_distinct(self, columns: list[Column]) -> np.ndarray:
        """Dispatch a DISTINCT kernel and record which strategy engaged."""
        note: list = []
        keep = self._distinct_kernel(columns, note=note)
        if "hash" in note:
            self.stats.record_hash_distinct()
        return keep

    # ------------------------------------------------------------------
    # statement dispatch
    # ------------------------------------------------------------------

    def execute(
        self, statement: Statement, plan_slot=None
    ) -> tuple[Optional[Relation], int]:
        """Run one statement; returns (result relation or None, rowcount).

        ``plan_slot`` is the statement's plan-cache template entry (if
        any); the compiled physical plan is cached on it and reused while
        its validity checks hold.
        """
        plan = self._physical_plan(statement, plan_slot)
        select_plan = plan.select_plan if plan is not None else None
        if isinstance(statement, Select):
            relation = self.run_select(statement, select_plan)
            return relation, relation.n_rows
        if isinstance(statement, CreateTableAs):
            return None, self._create_table_as(statement, select_plan)
        if isinstance(statement, CreateTable):
            return None, self._create_table(statement)
        if isinstance(statement, InsertValues):
            return None, self._insert_values(statement)
        if isinstance(statement, InsertSelect):
            return None, self._insert_select(statement, select_plan)
        if isinstance(statement, DropTable):
            return None, self._drop(statement)
        if isinstance(statement, AlterRename):
            self.catalog.rename(statement.old, statement.new)
            return None, 0
        if isinstance(statement, TruncateTable):
            return None, self._truncate(statement)
        raise ExecutionError(f"cannot execute {type(statement).__name__}")

    def _physical_plan(
        self, statement: Statement, plan_slot
    ) -> Optional[PhysicalPlan]:
        """Fetch the cached physical plan for a statement, or compile one.

        Plans attach to the statement's template entry in the plan cache;
        a cached plan is reused after a cheap validity check (bindings and
        table schema fingerprints), re-compiled when it fails.
        """
        if not isinstance(statement, (Select, CreateTableAs, InsertSelect)):
            return None
        if plan_slot is not None:
            cached = getattr(plan_slot, "physical", None)
            if cached is not None and cached.statement is statement:
                if plan_is_valid(cached, self.catalog):
                    self.stats.record_physical_plan_hit()
                    return cached
                self.stats.record_physical_plan_invalidation()
                plan_slot.physical = None
        plan = compile_statement(statement, self.catalog, fuse=self.use_fusion)
        if plan is None:
            return None
        self.stats.record_physical_plan_miss()
        if plan_slot is not None and plan_slot.statement is statement:
            plan_slot.physical = plan
        return plan

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _create_table_as(
        self, statement: CreateTableAs, plan: Optional[SelectPlan] = None
    ) -> int:
        relation = self.run_select(statement.select, plan)
        names = relation.display_names
        if len(set(names)) != len(names):
            raise PlanError(
                f"cannot create table {statement.name!r}: duplicate column names {names}"
            )
        distribution = statement.distributed_by
        if distribution is not None and distribution not in names:
            raise PlanError(
                f"distribution column {distribution!r} is not in the select list"
            )
        if (
            distribution is not None
            and relation.n_rows > 0
            and relation.distribution != distribution
        ):
            # Result rows must be re-hashed onto the new distribution.
            self.stats.record_redistribution(relation.byte_size())
        stored = {
            display: relation.columns[key]
            for display, key in zip(names, relation.names)
        }
        table = Table(statement.name.lower(), stored, distribution)
        self.catalog.put(table)
        self.stats.record_table_created(table.byte_size(), table.n_rows)
        return table.n_rows

    def _create_table(self, statement: CreateTable) -> int:
        columns = {}
        for name, sql_type in statement.columns:
            columns[name] = Column(np.empty(0, dtype=dtype_for(sql_type)), sql_type)
        table = Table(statement.name.lower(), columns, statement.distributed_by)
        self.catalog.put(table)
        self.stats.record_table_created(0, 0)
        return 0

    def _insert_values(self, statement: InsertValues) -> int:
        table = self.catalog.get(statement.name)
        target_columns = statement.columns or tuple(table.column_names)
        if set(target_columns) != set(table.column_names):
            raise PlanError(
                f"INSERT must cover all columns of {statement.name!r} "
                f"({table.column_names})"
            )
        env = Environment({}, 1, self.registry)
        per_column: dict[str, list] = {name: [] for name in target_columns}
        for row in statement.rows:
            if len(row) != len(target_columns):
                raise PlanError("INSERT row arity mismatch")
            for name, expr in zip(target_columns, row):
                value = evaluate(expr, env)
                per_column[name].append(value.to_list()[0])
        columns = {}
        for name in target_columns:
            existing = table.column(name)
            raw = per_column[name]
            mask = np.array([v is None for v in raw], dtype=bool)
            filler = 0 if existing.sql_type in (INT64, FLOAT64, BOOL) else ""
            values = np.array(
                [filler if v is None else v for v in raw],
                dtype=dtype_for(existing.sql_type),
            )
            columns[name] = Column(values, existing.sql_type, mask if mask.any() else None)
        added = table.append(columns)
        self.stats.record_rows_appended(added, len(statement.rows))
        return len(statement.rows)

    def _insert_select(
        self, statement: InsertSelect, plan: Optional[SelectPlan] = None
    ) -> int:
        table = self.catalog.get(statement.name)
        relation = self.run_select(statement.select, plan)
        target_columns = list(statement.columns or table.column_names)
        if len(relation.names) != len(target_columns):
            raise PlanError("INSERT ... SELECT arity mismatch")
        columns = {}
        for target, source in zip(target_columns, relation.names):
            columns[target] = relation.columns[source]
        added = table.append(columns)
        self.stats.record_rows_appended(added, relation.n_rows)
        return relation.n_rows

    def _drop(self, statement: DropTable) -> int:
        for name in statement.names:
            if statement.if_exists and name not in self.catalog:
                continue
            table = self.catalog.drop(name)
            self.stats.record_table_dropped(table.byte_size())
        return 0

    def _truncate(self, statement: TruncateTable) -> int:
        table = self.catalog.get(statement.name)
        freed = table.truncate()
        self.stats.record_table_dropped(freed)
        return 0

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------

    def run_select(
        self, select: Select, plan: Optional[SelectPlan] = None
    ) -> Relation:
        if plan is None or plan.select is not select:
            compiled = compile_statement(select, self.catalog,
                                         fuse=self.use_fusion)
            plan = compiled.select_plan
        if len(plan.cores) == 1:
            return self._run_core(plan.cores[0])
        # UNION ALL arm arity was validated at compile time
        # (physicalplan.compile_select), so the arms can fan out freely.
        relations = self._run_union_arms(plan.cores)
        first = relations[0]
        columns = {}
        for position, name in enumerate(first.names):
            parts = [rel.columns[rel.names[position]] for rel in relations]
            columns[name] = Column.concat(parts)
        return Relation(list(first.names), columns, None,
                        display_names=list(first.display_names))

    def _run_union_arms(self, cores: list[CorePlan]) -> list[Relation]:
        """Execute UNION ALL arms, overlapping independent arms on the pool.

        The arms of one statement read disjoint pipeline state (shared
        tables are only read, under the catalog/index locks), so all but
        the driver's share are offloaded as pool tasks while the driver
        executes the rest; the results list keeps arm order, so the
        concatenated relation is bit-identical to the serial loop's.  A
        thread already running a pool task (a dataflow statement group, a
        parent UNION arm) executes serially instead: the scheduler's worker
        reservation keeps one worker free for non-blocking *kernel* chunks,
        and a nested blocking offload could consume it and deadlock.
        """
        pool = self.pool
        if pool is None or pool.n_workers <= 1 or in_pool_task():
            return [self._run_core(core) for core in cores]
        n_offload = min(len(cores) - 1, pool.n_workers - 1)
        split = len(cores) - n_offload
        stats = self.stats

        def run_arm(core: CorePlan) -> tuple[Relation, tuple[int, int, int]]:
            # Sample the worker thread's scratch around the arm so its
            # bytes/motion re-attribute to the owning statement's record.
            before = stats.scratch_totals()
            relation = self._run_core(core)
            after = stats.scratch_totals()
            return relation, tuple(
                now - then for now, then in zip(after, before)
            )

        futures = [pool.submit(run_arm, core) for core in cores[split:]]
        with task_scope():
            relations = [self._run_core(core) for core in cores[:split]]
        stats.record_union_arm_overlap(len(futures))
        for future in futures:
            relation, (d_bytes, d_rows, d_motion) = future.result()
            stats.fold_scratch(d_bytes, d_rows, d_motion)
            relations.append(relation)
        return relations

    def _fuse_group(self, plan: CorePlan) -> bool:
        return plan.fused_group is not None and self.monotone_join_output

    def _run_core(self, plan: CorePlan) -> Relation:
        core = plan.core
        if plan.fused is not None:
            return self._run_fused_distinct(plan)
        if self._fuse_group(plan):
            relation = self._run_fused_group(plan)
            if core.distinct:
                relation = self._distinct(relation)
            return relation
        frame = self._execute_from(plan)
        if plan.is_aggregate:
            relation = self._aggregate(core, frame)
        else:
            relation = self._project(core, frame)
        if core.distinct:
            relation = self._distinct(relation)
        return relation

    # -- plan execution: scans, joins, filters -----------------------------

    def _final_right_frame(self, plan: CorePlan, frames: dict) -> Frame:
        """Build-side frame of the final join a fused runner finishes."""
        final = plan.final_join
        if isinstance(final, LeftJoinPlan):
            return self._scan_frame(final.scan)
        return frames[final.binding]

    def _execute_from(self, plan: CorePlan):
        """Run a core's scan/join pipeline.

        Returns the joined (and residual-filtered) :class:`Frame` — or, for
        a fused-final plan, the ``(chain, right_frame)`` pair the fused
        runner finishes: the accumulated left side as a :class:`_JoinChain`
        and the final join's build-side frame.  When the plan marks the
        join pipeline chainable, the joins — inner *and* left outer —
        stream through the chain's composed row maps and no intermediate
        join output is materialised.
        """
        if not plan.scans:
            # SELECT without FROM: one anonymous row.
            return Frame({}, {}, 1, frozenset())
        frames: dict[str, Frame] = {
            scan.binding: self._scan_frame(scan) for scan in plan.scans
        }
        for scan in plan.scans:
            if scan.filters:
                frames[scan.binding] = self._apply_filters(
                    frames[scan.binding], scan.filters
                )
        fuse_final = plan.fused is not None or self._fuse_group(plan)
        steps = list(plan.steps)
        left_joins = list(plan.left_joins)
        if fuse_final:
            # The compiled final join is run by the fused runner, not here.
            if isinstance(plan.final_join, LeftJoinPlan):
                left_joins = left_joins[:-1]
            else:
                steps = steps[:-1]
        if self.use_fusion and plan.chain:
            # Chainable pipeline: stream every (non-final) join through
            # composed row maps; nothing intermediate is materialised.
            chain = _JoinChain(frames[plan.scans[0].binding])
            for step in steps:
                self._execute_chain_step(chain, frames[step.binding], step)
            for left_join in left_joins:
                self._execute_chain_left_step(chain, left_join)
            if fuse_final:
                return chain, self._final_right_frame(plan, frames)
            self._finish_chain(chain)
            last = left_joins[-1] if left_joins else steps[-1]
            current = chain.materialise(last)
        else:
            current = frames[plan.scans[0].binding]
            for step in steps:
                current = self._execute_step(current, frames[step.binding],
                                             step)
            for left_join in left_joins:
                current = self._execute_left_join(current, left_join)
            if fuse_final:
                # Identity chain over the staged frame: the fused runners
                # work on one surface either way.
                return _JoinChain(current), \
                    self._final_right_frame(plan, frames)
        if plan.residual:
            current = self._apply_filters(current, plan.residual)
        return current

    def _execute_chain_step(
        self, chain: _JoinChain, right: Frame, step: JoinStepPlan
    ) -> None:
        """Run one join step against the chain, folding its output indices
        into the composed row maps instead of materialising a frame."""
        if step.cartesian:
            total = chain.length * right.length
            if total > MAX_CARTESIAN_ROWS:
                raise PlanError(
                    f"refusing cartesian product of {chain.length} x "
                    f"{right.length} rows; add an equality join predicate"
                )
            self._charge_join_motion(chain, [])
            self._charge_join_motion(right, [])
            step.kernel = "cartesian"
            l_idx = np.repeat(np.arange(chain.length), right.length)
            r_idx = np.tile(np.arange(right.length), chain.length)
        else:
            l_idx, r_idx = self._join_step_indices(chain, right, step)
        chain.apply(l_idx, r_idx, right, step)

    def _execute_chain_left_step(
        self, chain: _JoinChain, plan: LeftJoinPlan
    ) -> None:
        """Run one LEFT JOIN against the chain: the padded output indices
        fold into the composed row maps, with the build side's NO_MATCH
        markers carried as the binding's validity mask."""
        right = self._scan_frame(plan.scan)
        l_idx, r_idx = self._left_join_step_indices(chain, right, plan)
        chain.apply(l_idx, r_idx, right, plan, outer=True)

    def _finish_chain(self, chain: _JoinChain) -> None:
        """Telemetry: a chain of >= 2 joins streamed without materialising
        any intermediate join output (outer joins riding inside count
        separately)."""
        if chain.n_joins >= 2:
            self.stats.record_join_chain_fusion()
            if chain.n_outer:
                self.stats.record_left_chain_fusion()

    def _scan_frame(self, scan: ScanPlan) -> Frame:
        binding = scan.binding
        if scan.subplan is None:
            table = self.catalog.get(scan.item.name)
            columns = {
                f"{binding}.{name}": table.column(name) for name in scan.columns
            }
            sources = {
                f"{binding}.{name}": (table, name) for name in scan.columns
            }
            return Frame(columns, {binding: list(scan.columns)}, table.n_rows,
                         scan.distribution, sources)
        relation = self.run_select(scan.item.select, scan.subplan)
        if tuple(relation.names) != scan.columns:
            raise ExecutionError(
                f"subquery {binding!r} produced columns {relation.names}, "
                f"planned {list(scan.columns)}"
            )
        columns = {f"{binding}.{n}": relation.columns[n] for n in relation.names}
        return Frame(columns, {binding: list(relation.names)}, relation.n_rows,
                     scan.distribution)

    def _apply_filters(self, frame: Frame, predicates: list[Expression]) -> Frame:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        keep = np.ones(frame.length, dtype=bool)
        for predicate in predicates:
            keep &= truth_values(evaluate(predicate, env))
        if keep.all():
            return frame
        return frame.filter(keep)

    def _qualified(self, ref: ColumnRef, frame: Frame) -> str:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            if key not in frame.columns:
                raise PlanError(f"unknown column {ref.display()!r}")
            return key
        candidates = [
            f"{binding}.{ref.name}"
            for binding, cols in frame.bindings.items()
            if ref.name in cols
        ]
        if not candidates:
            raise PlanError(f"unknown column {ref.name!r}")
        if len(candidates) > 1:
            raise PlanError(f"ambiguous column {ref.name!r}")
        return candidates[0]

    def _charge_join_motion(self, frame: Frame, key_names: list[str]) -> None:
        """Account data motion for one join input."""
        colocated = bool(frame.distribution & set(key_names))
        plan = self.cluster.plan_motion(frame.byte_size(), frame.length, colocated)
        if plan.kind == "redistribute":
            self.stats.record_redistribution(plan.moved_bytes)
        elif plan.kind == "broadcast":
            self.stats.record_broadcast(
                plan.moved_bytes // self.cluster.n_segments, self.cluster.n_segments
            )

    def _join_step_indices(
        self, left: Frame, right: Frame, step: JoinStepPlan
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one compiled equi-join step's kernel (shared with fusion)."""
        left_keys = [left.columns[name] for name in step.left_names]
        right_keys = [right.columns[name] for name in step.right_names]
        left_index = right_index = None
        if len(step.left_names) == 1:
            # Single-column equi-join (the dominant shape): the build side
            # consults — and on a miss populates — its table's index cache;
            # the probe side only picks up a cached index (free stats).
            right_index = self._stored_index(right, step.right_names[0],
                                             build=True)
            left_index = self._stored_index(left, step.left_names[0],
                                            build=False)
        if _ranges_disjoint(left_index, right_index):
            # Provably empty join: skip the kernel and the data motion a
            # stats-blind planner would have charged for co-location.
            self.stats.record_join_pruned()
            step.kernel = "range-pruned"
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        self._charge_join_motion(left, step.left_names)
        self._charge_join_motion(right, step.right_names)
        note: list = []
        l_idx, r_idx = self._join_kernel(
            left_keys, right_keys, left_index=left_index,
            right_index=right_index, note=note,
        )
        if note:
            step.kernel = note[-1]
        return l_idx, r_idx

    def _execute_step(
        self, left: Frame, right: Frame, step: JoinStepPlan
    ) -> Frame:
        if step.cartesian:
            return self._cartesian(left, right, step)
        l_idx, r_idx = self._join_step_indices(left, right, step)
        columns = {
            name: left.columns[name].take(l_idx) for name in step.left_gather
        }
        columns.update({
            name: right.columns[name].take(r_idx) for name in step.right_gather
        })
        return Frame(columns, step.out_bindings, int(l_idx.shape[0]),
                     step.out_distribution)

    def _cartesian(self, left: Frame, right: Frame, step: JoinStepPlan) -> Frame:
        total = left.length * right.length
        if total > MAX_CARTESIAN_ROWS:
            raise PlanError(
                f"refusing cartesian product of {left.length} x {right.length} rows; "
                "add an equality join predicate"
            )
        l_idx = np.repeat(np.arange(left.length), right.length)
        r_idx = np.tile(np.arange(right.length), left.length)
        self._charge_join_motion(left, [])
        self._charge_join_motion(right, [])
        step.kernel = "cartesian"
        columns = {
            name: left.columns[name].take(l_idx) for name in step.left_gather
        }
        columns.update({
            name: right.columns[name].take(r_idx) for name in step.right_gather
        })
        return Frame(columns, step.out_bindings, total, frozenset())

    def _left_join_step_indices(
        self, left, right: Frame, plan: LeftJoinPlan
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one LEFT JOIN's kernel (shared by the staged runner, the
        chain and the fused finals); ``left`` is a Frame or a _JoinChain.
        Unmatched probe rows surface as ``NO_MATCH`` in the right indices.
        """
        left_keys = [left.columns[name] for name in plan.left_names]
        right_keys = [right.columns[name] for name in plan.right_names]
        right_index = None
        if len(left_keys) == 1:
            right_index = self._stored_index(right, plan.right_names[0],
                                             build=True)
        self._charge_join_motion(left, plan.left_names)
        self._charge_join_motion(right, plan.right_names)
        note: list = []
        l_idx, r_idx = self._left_join_kernel(
            left_keys, right_keys, right_index=right_index, note=note
        )
        if note:
            plan.kernel = note[-1]
        return l_idx, r_idx

    def _execute_left_join(self, left: Frame, plan: LeftJoinPlan) -> Frame:
        right = self._scan_frame(plan.scan)
        l_idx, r_idx = self._left_join_step_indices(left, right, plan)
        n_out = int(l_idx.shape[0])
        columns = {
            name: left.columns[name].take(l_idx) for name in plan.left_gather
        }
        unmatched = r_idx == NO_MATCH
        safe_idx = np.where(unmatched, 0, r_idx)
        for name in plan.right_gather:
            columns[name] = _gather_padded(right.columns[name], safe_idx,
                                           unmatched, right.length, n_out)
        return Frame(columns, plan.out_bindings, n_out,
                     plan.out_distribution)

    # -- fused join -> DISTINCT --------------------------------------------

    def _residual_keep(
        self,
        columns: dict[str, Column],
        n_rows: int,
        bare_names: dict[str, str],
        residual: list[Expression],
    ) -> Optional[np.ndarray]:
        """Evaluate residual predicates over gathered fused columns.

        Returns the keep mask, or ``None`` when every row survives (or
        there is nothing to evaluate) — shared by both fused runners so
        their residual semantics can never diverge.
        """
        if not residual:
            return None
        env_map: dict[str, Column] = dict(columns)
        for bare, qualified in bare_names.items():
            env_map[bare] = columns[qualified]
        env = Environment(env_map, n_rows, self.registry)
        keep = np.ones(n_rows, dtype=bool)
        for predicate in residual:
            keep &= truth_values(evaluate(predicate, env))
        return None if keep.all() else keep

    def _apply_final_join(
        self, chain: _JoinChain, right: Frame, plan: CorePlan
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run the fused final join — inner or left outer — and fold it
        into the chain; returns the kernel's output index pair."""
        final = plan.final_join
        if isinstance(final, LeftJoinPlan):
            l_idx, r_idx = self._left_join_step_indices(chain, right, final)
            chain.apply(l_idx, r_idx, right, final, outer=True)
        else:
            l_idx, r_idx = self._join_step_indices(chain, right, final)
            chain.apply(l_idx, r_idx, right, final)
        return l_idx, r_idx

    def _run_fused_distinct(self, plan: CorePlan) -> Relation:
        """Run a compiled fused pipeline: final join, residual filter,
        projection and DISTINCT in one pass over only the needed columns.
        The accumulated left side arrives as a :class:`_JoinChain`, so each
        gathered column is materialised once, through the composed maps."""
        chain, right = self._execute_from(plan)
        fused = plan.fused
        self._apply_final_join(chain, right, plan)
        self._finish_chain(chain)
        columns = {
            name: chain.column(name)
            for name in list(fused.left_gather) + list(fused.right_gather)
        }
        n_rows = chain.length
        keep = self._residual_keep(columns, n_rows, fused.bare_names,
                                   plan.residual)
        if keep is not None:
            columns = {
                name: col.filter(keep) for name, col in columns.items()
            }
            n_rows = int(keep.sum())
        out_columns = {
            key: columns[qualified]
            for key, qualified in zip(fused.out_keys, fused.out_quals)
        }
        self.stats.record_fused_pipeline()
        relation = Relation(list(fused.out_keys), out_columns,
                            fused.out_distribution,
                            display_names=list(fused.display))
        key_columns = [out_columns[key] for key in fused.out_keys]
        if not key_columns or n_rows == 0:
            return relation
        # DISTINCT with the same motion accounting the staged pipeline pays.
        colocated = fused.out_distribution is not None
        motion = self.cluster.plan_motion(relation.byte_size(), n_rows,
                                          colocated)
        if motion.kind == "redistribute":
            self.stats.record_redistribution(motion.moved_bytes)
        elif motion.kind == "broadcast":
            self.stats.record_broadcast(
                motion.moved_bytes // self.cluster.n_segments,
                self.cluster.n_segments,
            )
        keep_idx = self._run_distinct(key_columns)
        deduped = {
            key: out_columns[key].take(keep_idx) for key in fused.out_keys
        }
        # The staged pipeline's _distinct rebuilds the relation without
        # display names; mirror that so both paths are indistinguishable.
        return Relation(list(fused.out_keys), deduped, fused.out_distribution)

    # -- fused join -> GROUP BY --------------------------------------------

    def _run_fused_group(self, plan: CorePlan) -> Relation:
        """Run a compiled fused join->GROUP BY: final join, residual filter
        and aggregation in one pass over the probe stream.

        Only aggregate arguments and residual inputs are gathered at join
        output size.  With left-side keys the grouping order comes from
        grouping the *pre-join* left side (which can use a stored table's
        cached index — provenance the staged pipeline loses the moment it
        materialises the join) and expanding it through the join's monotone
        left-row indices.  With a key on the final right binding
        (``keys_on_right``) the key columns are gathered once through the
        join output — a left-outer final resolves its NO_MATCH markers
        into the keys' null masks, so padded rows land in NULL-key groups
        — and grouped at output size; either way, no full frame ever
        materialises.
        """
        core = plan.core
        fused = plan.fused_group
        chain, right = self._execute_from(plan)
        outer_final = isinstance(plan.final_join, LeftJoinPlan)
        key_columns: list[Column] = []
        group_index = None
        if not fused.keys_on_right:
            # Pre-join left state: the grouping runs on it and expands
            # through the join's monotone left indices, so capture it
            # before the final join folds into the chain.
            key_columns = [chain.column(name) for name in fused.key_quals]
            if len(fused.key_quals) == 1:
                group_index = self._stored_index(chain, fused.key_quals[0],
                                                 build=True)
        n_left = chain.length
        l_idx, r_idx = self._apply_final_join(chain, right, plan)
        # A left-outer final pads unmatched probe rows at the end of the
        # output (the kernels' shared pad contract); the grouping expansion
        # slots them behind each group's matched block.
        unmatched = r_idx == NO_MATCH if outer_final else None
        self._finish_chain(chain)
        if fused.keys_on_right:
            # Right-side keys exist only in the join output: gather them
            # through the composed maps (outer padding resolves into the
            # null masks — _gather_padded, the staged runner's own path).
            key_columns = [chain.column(name) for name in fused.key_quals]
        columns = {
            name: chain.column(name)
            for name in list(fused.left_gather) + list(fused.right_gather)
        }
        n_rows = chain.length

        def row_env() -> Environment:
            env_map: dict[str, Column] = dict(columns)
            for bare, qualified in fused.bare_names.items():
                env_map[bare] = columns[qualified]
            return Environment(env_map, n_rows, self.registry)

        keep = self._residual_keep(columns, n_rows, fused.bare_names,
                                   plan.residual)
        if keep is not None:
            columns = {
                name: col.filter(keep) for name, col in columns.items()
            }
            l_idx = l_idx[keep]
            if unmatched is not None:
                unmatched = unmatched[keep]
            if fused.keys_on_right:
                key_columns = [col.filter(keep) for col in key_columns]
            n_rows = int(keep.sum())

        if fused.keys_on_right:
            # Group the gathered (padded) key columns at output size — the
            # exact input the staged pipeline's aggregation groups, so the
            # stable order is bit-identical by construction.
            order, starts = self._group_kernel(key_columns)
        else:
            # Group the left side once (cached-index aware), then expand
            # through the monotone left-row indices of the join output.
            left_order, left_starts = self._group_kernel(key_columns,
                                                         index=group_index)
            order, starts = _expand_group_order(left_order, left_starts,
                                                l_idx, n_left, unmatched)
        n_groups = int(starts.shape[0])
        counts = np.diff(np.append(starts, order.shape[0]))

        # Motion: the same charge the staged pipeline pays to co-locate its
        # materialised frame by group key (gathered columns plus the key
        # columns the fusion never gathers).
        frame_bytes = sum(col.byte_size() for col in columns.values())
        if fused.keys_on_right:
            frame_bytes += sum(col.byte_size() for col in key_columns)
        else:
            for column in key_columns:
                width = column.byte_size() // len(column) if len(column) else 8
                frame_bytes += width * n_rows
        motion = self.cluster.plan_motion(frame_bytes, n_rows, fused.colocated)
        if motion.kind == "redistribute":
            self.stats.record_redistribution(motion.moved_bytes)
        elif motion.kind == "broadcast":
            self.stats.record_broadcast(
                motion.moved_bytes // self.cluster.n_segments,
                self.cluster.n_segments,
            )

        env = row_env()
        aggregates: list[Aggregate] = []
        for item in core.items:
            collect_aggregates(item.expr, aggregates)
        agg_results: dict[Aggregate, Column] = {}
        for node in aggregates:
            agg_results[node] = self._compute_aggregate(
                node, env, None, order, starts, counts, n_groups, [], False,
            )

        group_refs = list(core.group_by)
        if n_groups == 0:
            first_rows = np.empty(0, dtype=np.int64)
        elif fused.keys_on_right:
            # Output-size keys: each group's representative row indexes
            # the gathered key columns directly.
            first_rows = order[starts]
        else:
            first_rows = l_idx[order[starts]]
        group_env_columns: dict[str, Column] = {}
        for qualified, bare, column in zip(fused.key_quals, fused.key_bares,
                                           key_columns):
            grouped = column.take(first_rows)
            group_env_columns[qualified] = grouped
            group_env_columns.setdefault(bare, grouped)
        group_env = Environment(group_env_columns, n_groups, self.registry,
                                aggregates=agg_results)
        names: list[str] = []
        display: list[str] = []
        out_columns: dict[str, Column] = {}
        for position, item in enumerate(core.items):
            if isinstance(item.expr, Star):
                raise PlanError("'*' cannot be combined with GROUP BY")
            name = self._output_name(item, position)
            key = name if name not in out_columns else f"{name}__{position + 1}"
            self._check_grouped_refs(item.expr, group_refs)
            out_columns[key] = evaluate(item.expr, group_env)
            names.append(key)
            display.append(name)
        self.stats.record_fused_group_pipeline()
        if outer_final:
            self.stats.record_fused_outer_group()
        return Relation(names, out_columns, plan.out_distribution,
                        display_names=display)

    # -- projection / aggregation / distinct -------------------------------

    def _output_name(self, item: SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return f"column{position + 1}"

    def _project(self, core: SelectCore, frame: Frame) -> Relation:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        names: list[str] = []
        display: list[str] = []
        columns: dict[str, Column] = {}
        qualified_by_output: dict[str, str] = {}
        position = 0

        def key_for(name: str) -> str:
            return name if name not in columns else f"{name}__{position + 1}"

        for item in core.items:
            if isinstance(item.expr, Star):
                for binding, cols in frame.bindings.items():
                    for col in cols:
                        key = key_for(col)
                        names.append(key)
                        display.append(col)
                        columns[key] = frame.columns[f"{binding}.{col}"]
                        qualified_by_output[key] = f"{binding}.{col}"
                        position += 1
                continue
            name = self._output_name(item, position)
            key = key_for(name)
            columns[key] = evaluate(item.expr, env)
            names.append(key)
            display.append(name)
            if isinstance(item.expr, ColumnRef):
                qualified_by_output[key] = self._qualified(item.expr, frame)
            position += 1
        distribution = None
        for name, qualified in qualified_by_output.items():
            if qualified in frame.distribution:
                distribution = name
                break
        return Relation(names, columns, distribution, display_names=display)

    def _parallel_aggregate(
        self,
        key_columns: list[Column],
        aggregates: list[Aggregate],
        env: Environment,
        frame: Frame,
    ) -> Optional[tuple[Column, dict, int]]:
        """Partial-then-final aggregation over segment partitions.

        Returns (grouped key column, per-node results, group count), or
        ``None`` when the shape is outside the parallel kernel (which then
        runs the classic path — including its error reporting)."""
        pool = self.pool
        if pool is None or pool.n_workers <= 1:
            return None
        if len(key_columns) != 1 or frame.length < PARALLEL_MIN_ROWS:
            return None
        key = key_columns[0]
        if key.mask is not None or key.values.dtype.kind != "i":
            return None
        specs: list[AggregateSpec] = []
        for node in aggregates:
            if node.distinct:
                return None
            if node.name == "count" and node.arg is None:
                specs.append(AggregateSpec("count*"))
                continue
            if node.name not in ("count", "min", "max", "sum", "avg"):
                return None
            if node.arg is None:
                return None
            argument = evaluate(node.arg, env)
            if node.name != "count" and argument.sql_type not in (
                INT64, FLOAT64, BOOL
            ):
                return None
            if argument.values.dtype == object:
                return None
            specs.append(AggregateSpec(node.name, argument.values,
                                       argument.mask, argument.sql_type))
        unique_keys, results = parallel_group_aggregate(
            key.values, specs, pool
        )
        self.stats.record_parallel_partitions(pool.n_segments)
        agg_results: dict[Aggregate, Column] = {}
        for node, spec, (values, mask) in zip(aggregates, specs, results):
            if spec.kind in ("count*", "count"):
                agg_results[node] = Column(values, INT64)
            elif spec.kind in ("min", "max"):
                agg_results[node] = Column(values, spec.sql_type, mask)
            elif spec.kind == "sum":
                sql_type = INT64 if spec.sql_type == INT64 else FLOAT64
                agg_results[node] = Column(values, sql_type, mask)
            else:  # avg
                agg_results[node] = Column(values, FLOAT64, mask)
        grouped_key = Column(unique_keys, key.sql_type)
        return grouped_key, agg_results, int(unique_keys.shape[0])

    def _aggregate(self, core: SelectCore, frame: Frame) -> Relation:
        env = Environment(frame.env_columns(), frame.length, self.registry)
        group_refs: list[ColumnRef] = []
        for expr in core.group_by:
            if not isinstance(expr, ColumnRef):
                raise PlanError("GROUP BY supports plain column references only")
            group_refs.append(expr)
        key_columns = [env.lookup(ref) for ref in group_refs]

        aggregates: list[Aggregate] = []
        for item in core.items:
            collect_aggregates(item.expr, aggregates)

        parallel = None
        presorted = False
        if key_columns:
            group_index = None
            if len(group_refs) == 1:
                # A group key scanned straight off a stored table uses (and
                # warms) the table's index cache: the sort performed here is
                # the same one the round's joins need.
                group_index = self._stored_index(
                    frame, self._qualified(group_refs[0], frame), build=True
                )
            if group_index is None:
                parallel = self._parallel_aggregate(
                    key_columns, aggregates, env, frame
                )
            if parallel is None:
                order, starts = self._group_kernel(key_columns,
                                                   index=group_index)
                # A cached index that proves the key pre-sorted on disk
                # returned the identity order: skip the aggregate gathers.
                presorted = (
                    group_index is not None
                    and group_index.is_sorted
                    and order is group_index.order
                )
                if presorted:
                    self.stats.record_group_sort_skipped()
                n_groups = int(starts.shape[0])
                counts = np.diff(np.append(starts, order.shape[0]))
            else:
                grouped_key, parallel_results, n_groups = parallel
        else:
            order = np.arange(frame.length)
            starts = np.zeros(1, dtype=np.int64)
            n_groups = 1
            counts = np.array([frame.length])

        # Motion: grouping needs rows co-located by the group key.
        if key_columns:
            key_names = [self._qualified(ref, frame) for ref in group_refs]
            colocated = bool(frame.distribution & set(key_names))
            plan = self.cluster.plan_motion(frame.byte_size(), frame.length, colocated)
            if plan.kind == "redistribute":
                self.stats.record_redistribution(plan.moved_bytes)
            elif plan.kind == "broadcast":
                self.stats.record_broadcast(
                    plan.moved_bytes // self.cluster.n_segments,
                    self.cluster.n_segments,
                )

        agg_results: dict[Aggregate, Column] = {}
        if parallel is not None:
            agg_results = parallel_results
        else:
            for node in aggregates:
                agg_results[node] = self._compute_aggregate(
                    node, env, frame, order, starts, counts, n_groups,
                    key_columns, presorted,
                )

        group_env_columns: dict[str, Column] = {}
        if parallel is not None:
            for ref in group_refs:
                qualified = self._qualified(ref, frame)
                group_env_columns[qualified] = grouped_key
                group_env_columns.setdefault(ref.name, grouped_key)
        else:
            for ref, column in zip(group_refs, key_columns):
                grouped = column.take(order[starts]) if n_groups else column.take(starts)
                qualified = self._qualified(ref, frame)
                group_env_columns[qualified] = grouped
                group_env_columns.setdefault(ref.name, grouped)
        group_env = Environment(
            group_env_columns, n_groups, self.registry, aggregates=agg_results
        )

        names: list[str] = []
        display: list[str] = []
        columns: dict[str, Column] = {}
        qualified_by_output: dict[str, str] = {}
        for position, item in enumerate(core.items):
            if isinstance(item.expr, Star):
                raise PlanError("'*' cannot be combined with GROUP BY")
            name = self._output_name(item, position)
            key = name if name not in columns else f"{name}__{position + 1}"
            self._check_grouped_refs(item.expr, group_refs)
            columns[key] = evaluate(item.expr, group_env)
            names.append(key)
            display.append(name)
            if isinstance(item.expr, ColumnRef):
                qualified_by_output[key] = self._qualified(item.expr, frame)
        distribution = None
        if key_columns:
            first_key = self._qualified(group_refs[0], frame)
            for name, qualified in qualified_by_output.items():
                if qualified == first_key:
                    distribution = name
                    break
        return Relation(names, columns, distribution, display_names=display)

    def _check_grouped_refs(
        self, expr: Expression, group_refs: list[ColumnRef]
    ) -> None:
        """Reject references to non-grouped columns outside aggregates."""
        if isinstance(expr, Aggregate):
            return
        if isinstance(expr, ColumnRef):
            for ref in group_refs:
                if ref.name == expr.name and (
                    expr.table is None or ref.table is None or ref.table == expr.table
                ):
                    return
            raise PlanError(
                f"column {expr.display()!r} must appear in GROUP BY or an aggregate"
            )
        if isinstance(expr, BinaryOp):
            self._check_grouped_refs(expr.left, group_refs)
            self._check_grouped_refs(expr.right, group_refs)
        elif hasattr(expr, "operand"):
            self._check_grouped_refs(expr.operand, group_refs)
        elif hasattr(expr, "args"):
            for arg in expr.args:
                self._check_grouped_refs(arg, group_refs)

    def _compute_aggregate(
        self,
        node: Aggregate,
        env: Environment,
        frame: Frame,
        order: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        n_groups: int,
        key_columns: list[Column],
        presorted: bool = False,
    ) -> Column:
        if node.name == "count" and node.arg is None:
            return Column(counts.astype(np.int64), INT64)
        if node.arg is None:
            raise PlanError(f"{node.name}() requires an argument")
        argument = evaluate(node.arg, env)
        if node.distinct:
            return self._count_distinct(argument, key_columns, n_groups)
        if order.shape[0] == 0:
            # Global aggregate over an empty input: count is 0, the others
            # are NULL (SQL semantics); grouped aggregates have no groups.
            if n_groups == 0:
                return Column(np.empty(0, dtype=np.int64), INT64)
            if node.name == "count":
                return Column(np.zeros(n_groups, dtype=np.int64), INT64)
            return Column.nulls(n_groups, argument.sql_type)
        if presorted:
            # The cached index proved the input pre-grouped on disk: the
            # grouping order is the identity and the gathers are no-ops.
            sorted_values = argument.values
            sorted_mask = argument.null_mask()
        else:
            sorted_values = argument.values[order]
            sorted_mask = argument.null_mask()[order]
        valid_counts = np.add.reduceat(
            (~sorted_mask).astype(np.int64), starts
        ) if n_groups else np.zeros(0, dtype=np.int64)
        if node.name == "count":
            return Column(valid_counts, INT64)
        if argument.sql_type not in (INT64, FLOAT64, BOOL):
            raise PlanError(f"{node.name}() on non-numeric column")
        dtype = argument.values.dtype
        if node.name in ("min", "max"):
            if argument.sql_type == INT64:
                sentinel = np.iinfo(np.int64).max if node.name == "min" \
                    else np.iinfo(np.int64).min
            else:
                sentinel = np.inf if node.name == "min" else -np.inf
            padded = np.where(sorted_mask, sentinel, sorted_values)
            reducer = np.minimum if node.name == "min" else np.maximum
            values = reducer.reduceat(padded, starts) if n_groups else padded
            mask = valid_counts == 0
            return Column(
                values.astype(dtype, copy=False),
                argument.sql_type,
                mask if mask.any() else None,
            )
        if node.name in ("sum", "avg"):
            padded = np.where(sorted_mask, 0, sorted_values)
            sums = np.add.reduceat(padded.astype(np.float64), starts) if n_groups \
                else np.zeros(0)
            mask = valid_counts == 0
            if node.name == "sum":
                if argument.sql_type == INT64:
                    return Column(
                        sums.astype(np.int64), INT64, mask if mask.any() else None
                    )
                return Column(sums, FLOAT64, mask if mask.any() else None)
            with np.errstate(invalid="ignore", divide="ignore"):
                averages = sums / valid_counts
            return Column(averages, FLOAT64, mask if mask.any() else None)
        raise PlanError(f"unknown aggregate {node.name!r}")

    def _count_distinct(
        self, argument: Column, key_columns: list[Column], n_groups: int
    ) -> Column:
        """count(distinct x), per group (or globally when no GROUP BY)."""
        valid = ~argument.null_mask()
        all_columns = [col.filter(valid) for col in key_columns]
        all_columns.append(argument.filter(valid))
        unique_idx = distinct_rows(all_columns)
        if not key_columns:
            return Column(np.array([unique_idx.shape[0]], dtype=np.int64), INT64)
        unique_keys = [col.take(unique_idx) for col in all_columns[:-1]]
        inner_order, inner_starts = group_rows(unique_keys)
        per_group = np.diff(np.append(inner_starts, inner_order.shape[0]))
        # Align with the outer grouping: groups with only-NULL arguments or
        # no rows at all are missing here; rebuild by joining on key order.
        outer_order, outer_starts = group_rows(key_columns)
        outer_keys = [col.take(outer_order[outer_starts]) for col in key_columns]
        inner_key_rows = [col.take(inner_order[inner_starts]) for col in unique_keys]
        l_idx, r_idx = join_indices(outer_keys, inner_key_rows)
        result = np.zeros(n_groups, dtype=np.int64)
        result[l_idx] = per_group[r_idx]
        return Column(result, INT64)

    def _distinct(self, relation: Relation) -> Relation:
        columns = [relation.columns[n] for n in relation.names]
        if not columns or relation.n_rows == 0:
            return relation
        colocated = relation.distribution is not None
        plan = self.cluster.plan_motion(
            relation.byte_size(), relation.n_rows, colocated
        )
        if plan.kind == "redistribute":
            self.stats.record_redistribution(plan.moved_bytes)
        elif plan.kind == "broadcast":
            self.stats.record_broadcast(
                plan.moved_bytes // self.cluster.n_segments, self.cluster.n_segments
            )
        keep = self._run_distinct(columns)
        new_columns = {n: relation.columns[n].take(keep) for n in relation.names}
        return Relation(list(relation.names), new_columns, relation.distribution)


# ---------------------------------------------------------------------------
# fused-grouping and index statistics helpers
# ---------------------------------------------------------------------------


def _expand_group_order(
    left_order: np.ndarray,
    left_starts: np.ndarray,
    l_idx: np.ndarray,
    n_left: int,
    unmatched: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand a left-side grouping through a join's monotone left indices.

    Every join kernel emits output grouped by left row, ascending, so
    ``l_idx`` is non-decreasing and each left row owns one contiguous slot
    range of the output.  The left side's stable grouping
    ``(left_order, left_starts)`` therefore expands to exactly the stable
    grouping ``group_rows`` would compute over the gathered key columns:
    visit left rows in left-grouping order and emit each row's slot range.
    Left rows the join dropped contribute nothing; groups that lose every
    row vanish, like keys that never reach the staged pipeline's frame.

    A left-outer final passes ``unmatched`` (True at null-extended output
    rows).  The shared pad contract appends those rows — one per matchless
    left row, ascending — after every matched row, an order any boolean
    keep-filter preserves.  A stable grouping of the gathered keys then
    lists, inside each group, the matched slots first (ascending left row)
    and the null-extended slots after (ascending left row), which is
    exactly how the expansion interleaves the two streams below.
    """
    total = int(l_idx.shape[0])
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if unmatched is None or not unmatched.any():
        counts = np.bincount(l_idx, minlength=n_left).astype(np.int64,
                                                             copy=False)
        slot_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        cnt = counts[left_order]
        offsets = np.concatenate(([0], np.cumsum(cnt)[:-1]))
        within = np.arange(total) - np.repeat(offsets, cnt)
        order = np.repeat(slot_starts[left_order], cnt) + within
        group_totals = np.add.reduceat(cnt, left_starts)
        starts = np.concatenate(([0], np.cumsum(group_totals)[:-1]))
        keep = group_totals > 0
        return order, starts[keep]
    matched_l = l_idx[~unmatched]
    missing_l = l_idx[unmatched]
    n_inner = int(matched_l.shape[0])
    n_groups = int(left_starts.shape[0])
    counts = np.bincount(matched_l, minlength=n_left).astype(np.int64,
                                                             copy=False)
    slot_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # Each matchless left row owns exactly one padded slot, placed after
    # all matched output in ascending left-row order.
    miss_counts = np.bincount(missing_l, minlength=n_left).astype(
        np.int64, copy=False)
    miss_pos = n_inner + np.cumsum(miss_counts) - miss_counts
    # Matched stream: matched slot ranges visited in left-grouping order.
    cnt_m = counts[left_order]
    off_m = np.concatenate(([0], np.cumsum(cnt_m)[:-1]))
    within = np.arange(n_inner) - np.repeat(off_m, cnt_m)
    matched_stream = np.repeat(slot_starts[left_order], cnt_m) + within
    # Missing stream: padded slots visited in the same left-grouping order.
    cnt_x = miss_counts[left_order]
    missing_stream = miss_pos[left_order][cnt_x == 1]
    # Interleave per group: the matched block, then the missing block.
    group_m = np.add.reduceat(cnt_m, left_starts)
    group_x = np.add.reduceat(cnt_x, left_starts)
    totals = group_m + group_x
    g_starts = np.concatenate(([0], np.cumsum(totals)[:-1]))
    order = np.empty(total, dtype=np.int64)
    g_of_m = np.repeat(np.arange(n_groups), group_m)
    m_off = np.concatenate(([0], np.cumsum(group_m)[:-1]))
    order[g_starts[g_of_m] + np.arange(n_inner) - m_off[g_of_m]] = \
        matched_stream
    g_of_x = np.repeat(np.arange(n_groups), group_x)
    x_off = np.concatenate(([0], np.cumsum(group_x)[:-1]))
    order[g_starts[g_of_x] + group_m[g_of_x]
          + np.arange(int(missing_stream.shape[0])) - x_off[g_of_x]] = \
        missing_stream
    return order, g_starts[totals > 0]


def _ranges_disjoint(
    left_index: Optional[KeyIndex], right_index: Optional[KeyIndex]
) -> bool:
    """True when two key indexes prove an equi-join can match nothing."""
    if left_index is None or right_index is None:
        return False
    if left_index.min_value is None or right_index.min_value is None:
        return False
    return (
        left_index.min_value > right_index.max_value
        or left_index.max_value < right_index.min_value
    )
