"""Shared-memory column buffers for the process-pool backend.

The process backend of :class:`~repro.sqlengine.mpp.ProcessSegmentPool`
never pickles column data.  Instead the driver copies each kernel input
once into a POSIX shared-memory block and ships workers a tiny
:class:`ShmArray` descriptor — ``(block name, dtype, shape)`` — which the
worker rehydrates into a zero-copy ``np.ndarray`` view over the same
physical pages.

Ownership and lifecycle are explicit and driver-side:

* Blocks are created lazily on first parallel use by a
  :class:`ShmRegistry` (one per process pool, owned by its Database).
* Stored-column exports are **adopted**: the column's ``values`` array is
  swapped for the shared view (bit-identical data), so the original heap
  copy is freed and later statements re-export the same column for free.
* A block is unlinked (name removed from ``/dev/shm``) as soon as its
  keyed array dies, on :meth:`ShmRegistry.release_all` (wired to
  ``Database.close()``), or by the module's ``atexit`` sweep if the
  interpreter exits mid-query.  On POSIX an unlink leaves existing
  mappings valid, so live views — including adopted columns still
  referenced by open tables — keep working; their mapping is closed by a
  weakref callback when the view itself dies.
* Workers cache attachments in a small LRU keyed by block name and
  unregister each attachment from ``multiprocessing.resource_tracker``
  (the attach would otherwise double-register the block and a worker's
  tracker could unlink it out from under the driver on worker exit).

The registry degrades, never fails: text (object-dtype) payloads and
allocation errors return ``None`` and the caller falls back to the thread
kernels.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Optional

import numpy as np

__all__ = ["ShmArray", "ShmRegistry", "attach_array"]


@dataclass(frozen=True)
class ShmArray:
    """Picklable descriptor of an ndarray living in a shared-memory block."""

    name: str
    dtype: str
    shape: tuple[int, ...]


class _Export:
    """Driver-side record of one exported block."""

    __slots__ = ("block", "descriptor", "ref", "unlinked")

    def __init__(self, block: shared_memory.SharedMemory, descriptor: ShmArray):
        self.block = block
        self.descriptor = descriptor
        self.ref: Optional[weakref.ref] = None
        self.unlinked = False


class ShmRegistry:
    """Owns every shared-memory block exported by one process pool.

    Exports are cached on the identity of the keyed array (the adopted
    view for columns, the source array otherwise) via weakrefs, so a warm
    loop re-exporting the same stored column or cached index costs a
    dictionary lookup, and a block is reclaimed the moment nothing can
    reach it.
    """

    def __init__(self) -> None:
        # RLock: weakref callbacks can fire from allocations made while
        # the lock is already held by this thread.
        self._lock = threading.RLock()
        self._exports: dict[int, _Export] = {}
        self._created: set[str] = set()
        self._owner_pid = os.getpid()
        self.bytes_exported = 0
        #: Optional hook called with each export's byte count (wired to
        #: ``EngineStats.record_shm_export``).
        self.on_export: Optional[Callable[[int], None]] = None
        _registries.add(self)

    # -- driver-side export ------------------------------------------------

    def export_column(self, column) -> Optional[ShmArray]:
        """Export a Column's values, adopting the shared view as storage.

        Returns the descriptor, or ``None`` for non-shareable payloads
        (text) — the caller then falls back to the thread kernels.  The
        column's ``values`` array is replaced by the bit-identical shared
        view, so the heap copy is freed and the next statement touching
        the same column re-exports it for free.
        """
        with self._lock:
            values = column.values
            entry = self._live_entry(values)
            if entry is not None:
                return entry.descriptor
            made = self._create_export(values)
            if made is None:
                return None
            entry, view = made
            self._key_entry(entry, view)
            column.adopt_storage(view)
            return entry.descriptor

    def export_array(self, array: np.ndarray) -> Optional[ShmArray]:
        """Export a raw array (index orders, slot tables, aggregate args).

        The block lives exactly as long as the source array does; repeat
        exports of the same array object are free.
        """
        with self._lock:
            entry = self._live_entry(array)
            if entry is not None:
                return entry.descriptor
            made = self._create_export(array)
            if made is None:
                return None
            entry, _view = made
            self._key_entry(entry, array)
            return entry.descriptor

    def _live_entry(self, array: np.ndarray) -> Optional[_Export]:
        entry = self._exports.get(id(array))
        if entry is None or entry.unlinked:
            return None
        if entry.ref is None or entry.ref() is not array:
            return None
        return entry

    def _create_export(
        self, array: np.ndarray
    ) -> Optional[tuple[_Export, np.ndarray]]:
        if array.dtype == object:
            return None
        nbytes = max(int(array.nbytes), 1)
        try:
            block = shared_memory.SharedMemory(create=True, size=nbytes)
        except (OSError, ValueError):
            return None
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        if array.size:
            view[...] = array
        descriptor = ShmArray(block.name, array.dtype.str, tuple(array.shape))
        entry = _Export(block, descriptor)
        self._created.add(block.name)
        _owned_names.add(block.name)
        self.bytes_exported += int(array.nbytes)
        hook = self.on_export
        if hook is not None:
            hook(int(array.nbytes))
        return entry, view

    def _key_entry(self, entry: _Export, key: np.ndarray) -> None:
        key_id = id(key)
        entry.ref = weakref.ref(key, lambda _ref: self._drop(key_id))
        self._exports[key_id] = entry

    def _drop(self, key_id: int) -> None:
        """Weakref callback: the keyed array died — reclaim its block."""
        try:
            with self._lock:
                entry = self._exports.get(key_id)
                if entry is None:
                    return
                if entry.ref is not None and entry.ref() is not None:
                    # The slot was re-keyed to a live array after a
                    # release_all; the stale block is gc-reclaimed.
                    return
                del self._exports[key_id]
            try:
                entry.block.close()
            except BufferError:
                pass
            if not entry.unlinked:
                entry.unlinked = True
                _owned_names.discard(entry.descriptor.name)
                try:
                    entry.block.unlink()
                except FileNotFoundError:
                    pass
        except Exception:
            # Callbacks may fire during interpreter teardown.
            pass

    # -- lifecycle ---------------------------------------------------------

    def release_all(self) -> None:
        """Unlink every live block (names vanish from ``/dev/shm``).

        Mappings of still-referenced views stay valid (POSIX unlink
        semantics) and are closed when the views die; the registry stays
        usable — a later parallel statement simply re-exports.
        """
        with self._lock:
            entries = list(self._exports.values())
        for entry in entries:
            if entry.unlinked:
                continue
            entry.unlinked = True
            _owned_names.discard(entry.descriptor.name)
            try:
                entry.block.unlink()
            except FileNotFoundError:
                pass

    def live_block_count(self) -> int:
        """Blocks created and not yet unlinked (test/diagnostic hook)."""
        with self._lock:
            return sum(1 for e in self._exports.values() if not e.unlinked)

    def created_names(self) -> set[str]:
        """Every block name this registry ever created (for leak asserts)."""
        with self._lock:
            return set(self._created)


#: Live registries swept at interpreter exit so a run abandoned mid-query
#: leaves no ``/dev/shm`` segments behind.  Weak so registries die with
#: their pools; the pid guard keeps forked workers (which inherit this
#: module state but exit via ``os._exit``) from ever unlinking driver
#: blocks should an atexit pass run in one.
_registries: "weakref.WeakSet[ShmRegistry]" = weakref.WeakSet()


def _sweep_at_exit() -> None:
    for registry in list(_registries):
        if registry._owner_pid == os.getpid():
            try:
                registry.release_all()
            except Exception:
                pass


atexit.register(_sweep_at_exit)


# -- worker-side attach ----------------------------------------------------

#: Per-process LRU of attached blocks.  Worker tasks of a warm loop hit
#: the same handful of blocks repeatedly; keeping the mapping open makes
#: every attach after the first free.  Single-threaded per worker process,
#: so no lock.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_ATTACH_CAP = 64

#: Names created by a registry in this process (kept for the rare
#: driver-side inline attach, which must not strip the driver's own
#: crash-cleanup registration).
_owned_names: set[str] = set()

#: Pid that imported this module.  A *forked* worker inherits the module
#: (pids differ) and shares the driver's resource tracker: its attach is
#: an idempotent re-register there and must NOT be unregistered — that
#: would strip the driver's crash-cleanup entry and make the driver's
#: eventual unlink a double-unregister.  A *spawned* worker imports fresh
#: (pids match, private tracker) and must unregister, or its tracker
#: unlinks the driver's blocks when the worker exits (bpo-38119).
_MODULE_PID = os.getpid()


def _untrack(block: shared_memory.SharedMemory) -> None:
    """Drop the attach-side resource-tracker registration when — and only
    when — this process owns a private tracker (see ``_MODULE_PID``)."""
    if block.name in _owned_names or os.getpid() != _MODULE_PID:
        return
    try:
        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:
        pass


def attach_array(descriptor: ShmArray) -> np.ndarray:
    """Rehydrate a descriptor into a zero-copy view (worker side)."""
    block = _ATTACHED.get(descriptor.name)
    if block is None:
        block = shared_memory.SharedMemory(name=descriptor.name)
        _untrack(block)
        _ATTACHED[descriptor.name] = block
        while len(_ATTACHED) > _ATTACH_CAP:
            _name, old = _ATTACHED.popitem(last=False)
            try:
                old.close()
            except BufferError:
                pass  # a live view from this very task still reads it
    else:
        _ATTACHED.move_to_end(descriptor.name)
    return np.ndarray(
        descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=block.buf
    )
