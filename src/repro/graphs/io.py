"""Moving graphs between edge lists, database tables and CSV files."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..sqlengine import Database
from .edgelist import EdgeList


def load_edges_into(
    db: Database,
    table: str,
    edges: EdgeList,
    distributed_by: str = "v1",
) -> None:
    """Create table (v1, v2) holding the edge list, as the paper's input.

    One row per undirected edge; algorithms perform their own doubling,
    exactly like the ``create table ccgraph as ... union all ...`` setup
    query of Appendix A.
    """
    db.load_table(
        table,
        {"v1": edges.src.copy(), "v2": edges.dst.copy()},
        distributed_by=distributed_by,
    )


def edges_from_table(db: Database, table: str) -> EdgeList:
    """Read a two-column edge table back into an EdgeList."""
    stored = db.table(table)
    names = stored.column_names
    if len(names) < 2:
        raise ValueError(f"table {table!r} needs two columns, has {names}")
    return EdgeList(
        stored.column(names[0]).values.copy(),
        stored.column(names[1]).values.copy(),
    )


def write_csv(edges: EdgeList, path: str | Path) -> None:
    """Write an edge list as a two-column CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["v1", "v2"])
        for a, b in zip(edges.src.tolist(), edges.dst.tolist()):
            writer.writerow([a, b])


def read_csv(path: str | Path) -> EdgeList:
    """Read a two-column CSV (header optional) into an EdgeList."""
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    with path.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or len(row) < 2:
                continue
            try:
                a, b = int(row[0]), int(row[1])
            except ValueError:
                continue  # header
            sources.append(a)
            targets.append(b)
    return EdgeList(
        np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)
    )
