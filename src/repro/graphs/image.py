"""Synthetic astronomical images and pixel-connectivity graphs.

The paper's Andromeda dataset converts a gigapixel image of the Andromeda
galaxy to a graph "by generating an edge for every pair of horizontally or
vertically adjacent pixels with an 8-bit RGB colour vector distance up to
50", with randomised vertex IDs (Section VII-A).  We cannot ship the
69,536 x 22,230 source image, so :func:`synthetic_starfield` renders a
statistically similar scene — a dark noisy background plus a power-law
population of bright blobs — and :func:`image_to_graph` applies exactly the
paper's conversion rule.  The resulting component-size distribution is
scale-free with one giant background component, the property Figure 5
demonstrates for the real image (including its "single outlier ... the
image's black background").
"""

from __future__ import annotations

import numpy as np

from .edgelist import EdgeList


def synthetic_starfield(
    height: int,
    width: int,
    rng: np.random.Generator,
    n_stars: int | None = None,
    background_level: int = 8,
    background_noise: int = 12,
    star_alpha: float = 2.4,
    max_star_radius: int | None = None,
    hot_pixel_fraction: float = 0.012,
) -> np.ndarray:
    """Render an (height, width, 3) uint8 star-field image.

    Star radii follow a discrete power law with exponent ``star_alpha``,
    which is what produces the scale-free component sizes after graph
    conversion.  The noisy background stays within the colour threshold of
    its neighbours almost everywhere, forming the giant component.  A
    sprinkling of isolated "hot pixels" (single-pixel stars and sensor
    noise, ``hot_pixel_fraction`` of the frame) populates the small end of
    the size distribution, as the real image's faint point sources do.
    """
    if n_stars is None:
        n_stars = max(1, (height * width) // 90)
    if max_star_radius is None:
        max_star_radius = max(3, min(height, width) // 12)
    image = rng.integers(
        0, background_noise, size=(height, width, 3)
    ).astype(np.int32) + background_level
    n_hot = int(height * width * hot_pixel_fraction)
    if n_hot:
        hot_y = rng.integers(0, height, size=n_hot)
        hot_x = rng.integers(0, width, size=n_hot)
        image[hot_y, hot_x] = rng.integers(140, 256, size=(n_hot, 3))
    # Power-law radii via inverse transform on a truncated Pareto.
    u = rng.random(n_stars)
    r_min, r_max = 1.0, float(max_star_radius)
    exponent = 1.0 - star_alpha
    radii = (u * (r_max ** exponent - r_min ** exponent) + r_min ** exponent) \
        ** (1.0 / exponent)
    centres_y = rng.integers(0, height, size=n_stars)
    centres_x = rng.integers(0, width, size=n_stars)
    colours = rng.integers(120, 256, size=(n_stars, 3))
    for cy, cx, radius, colour in zip(centres_y, centres_x, radii, colours):
        r = int(np.ceil(radius))
        y0, y1 = max(0, cy - r), min(height, cy + r + 1)
        x0, x1 = max(0, cx - r), min(width, cx + r + 1)
        yy, xx = np.mgrid[y0:y1, x0:x1]
        inside = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
        image[y0:y1, x0:x1][inside] = colour
    return np.clip(image, 0, 255).astype(np.uint8)


def image_to_graph(
    image: np.ndarray,
    threshold: float = 50.0,
    rng: np.random.Generator | None = None,
    randomise_ids: bool = True,
) -> EdgeList:
    """Convert an RGB image to a pixel-adjacency graph (paper's rule).

    An edge joins horizontally or vertically adjacent pixels whose RGB
    colour vectors differ by Euclidean distance at most ``threshold``.
    Vertex IDs are the (optionally randomised) flattened pixel indices;
    pixels with no qualifying neighbour do not appear (matching the paper,
    whose Andromeda |V| is below the pixel count).
    """
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an (H, W, 3) image")
    height, width = image.shape[:2]
    pixels = image.astype(np.int32)
    ids = np.arange(height * width, dtype=np.int64).reshape(height, width)

    horizontal_diff = pixels[:, 1:, :] - pixels[:, :-1, :]
    horizontal_ok = (horizontal_diff ** 2).sum(axis=2) <= threshold ** 2
    vertical_diff = pixels[1:, :, :] - pixels[:-1, :, :]
    vertical_ok = (vertical_diff ** 2).sum(axis=2) <= threshold ** 2

    src = np.concatenate([
        ids[:, :-1][horizontal_ok].ravel(),
        ids[:-1, :][vertical_ok].ravel(),
    ])
    dst = np.concatenate([
        ids[:, 1:][horizontal_ok].ravel(),
        ids[1:, :][vertical_ok].ravel(),
    ])
    edges = EdgeList(src, dst)
    if randomise_ids:
        if rng is None:
            rng = np.random.default_rng(0)
        edges = edges.with_randomised_ids(rng)
    return edges


def andromeda_like_graph(
    height: int,
    width: int,
    seed: int = 20150105,
    threshold: float = 50.0,
) -> EdgeList:
    """The Andromeda substitute at a chosen resolution (see module docs)."""
    rng = np.random.default_rng(seed)
    image = synthetic_starfield(height, width, rng)
    return image_to_graph(image, threshold=threshold, rng=rng)
