"""The reproduction's dataset registry — Table II at laptop scale.

Every dataset of the paper's test bench (Section VII-A, Table II) has a
generator here that reproduces its *role*: the structural properties that
make it exercise a particular algorithm behaviour.  Sizes are scaled down
by roughly 1000x (the paper runs 10^8..10^9 edges on a 5-node cluster; we
run 10^5..10^6 in-process) and can be scaled further with the
``REPRO_SCALE`` environment variable or the ``scale`` argument.

=================  ==========================================================
Dataset            Role
=================  ==========================================================
andromeda          low-degree 2D image graph, scale-free components + giant
                   background component (Figure 5)
bitcoin_addresses  bipartite address-clustering graph, huge number of tiny
                   components (Figure 5)
bitcoin_full       bipartite transaction graph, few giant "market" components
candels10..160     3D video graphs doubling in size (scalability series)
friendster         dense social network, exactly one component
rmat               R-MAT(0.57, 0.19, 0.19, 0.05) as in Kiveris et al.
path100m           sequentially numbered path: worst case for Hash-to-Min and
                   Cracker space usage
pathunion10        union of doubling-length paths with interleaved IDs: worst
                   case for Two-Phase
streets_of_italy   |E| ~ |V| street network (Section VII-C comparison)
=================  ==========================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .bitcoin import bitcoin_addresses_graph, bitcoin_full_graph
from .edgelist import EdgeList
from .generators import path_graph, path_union, rmat_graph
from .image import andromeda_like_graph
from .social import friendster_like_graph
from .streets import streets_like_graph
from .video import candels_like_graph


def default_scale() -> float:
    """Scale factor from the REPRO_SCALE environment variable (default 1)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}")
    if value <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row: a named generator plus the paper's reported sizes."""

    name: str
    build: Callable[[float], EdgeList]
    description: str
    paper_vertices_m: float
    paper_edges_m: float
    paper_components: str


def _dim(base: int, scale: float) -> int:
    """Scale a linear dimension so areas scale linearly with ``scale``."""
    return max(8, int(round(base * np.sqrt(scale))))


def _count(base: int, scale: float, minimum: int = 64) -> int:
    return max(minimum, int(round(base * scale)))


def _andromeda(scale: float) -> EdgeList:
    return andromeda_like_graph(_dim(300, scale), _dim(420, scale))


def _bitcoin_addresses(scale: float) -> EdgeList:
    return bitcoin_addresses_graph(_count(60_000, scale))


def _bitcoin_full(scale: float) -> EdgeList:
    return bitcoin_full_graph(_count(60_000, scale))


def _candels(n_frames: int) -> Callable[[float], EdgeList]:
    def build(scale: float) -> EdgeList:
        return candels_like_graph(n_frames, _dim(36, scale), _dim(64, scale))

    return build


def _friendster(scale: float) -> EdgeList:
    return friendster_like_graph(_count(24_000, scale))


def _rmat(scale: float) -> EdgeList:
    n_edges = _count(600_000, scale)
    rmat_scale = max(8, int(np.ceil(np.log2(max(256, n_edges / 40)))))
    return rmat_graph(rmat_scale, n_edges, np.random.default_rng(20140401))


def _path100m(scale: float) -> EdgeList:
    return path_graph(_count(100_000, scale))


def _pathunion10(scale: float) -> EdgeList:
    return path_union(10, _count(150, scale, minimum=4))


def _streets(scale: float) -> EdgeList:
    return streets_like_graph(_dim(140, scale), _dim(140, scale))


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(DatasetSpec(
    "andromeda", _andromeda,
    "gigapixel galaxy image as a 4-connectivity pixel graph",
    1459, 2287, "62,166 k"))
_register(DatasetSpec(
    "bitcoin_addresses", _bitcoin_addresses,
    "multi-input address clustering graph of the Bitcoin blockchain",
    878, 830, "216,917 k"))
_register(DatasetSpec(
    "bitcoin_full", _bitcoin_full,
    "full bipartite transaction graph of the Bitcoin blockchain",
    1476, 2079, "37 k"))
for _frames, _v, _e, _c in (
    (10, 83, 238, "39 k"), (20, 166, 483, "48 k"), (40, 332, 975, "91 k"),
    (80, 663, 1958, "224 k"), (160, 1326, 3923, "617 k"),
):
    _register(DatasetSpec(
        f"candels{_frames}", _candels(_frames),
        f"{_frames} video frames as a 6-connectivity pixel graph",
        _v, _e, _c))
_register(DatasetSpec(
    "friendster", _friendster,
    "com-Friendster social network (single component)",
    66, 1806, "1"))
_register(DatasetSpec(
    "rmat", _rmat,
    "R-MAT random graph, parameters (0.57, 0.19, 0.19, 0.05)",
    39, 2079, "5 k"))
_register(DatasetSpec(
    "path100m", _path100m,
    "sequentially numbered path (worst case for HM/CR space)",
    100, 100, "1"))
_register(DatasetSpec(
    "pathunion10", _pathunion10,
    "union of 10 doubling-length paths, interleaved IDs (TP worst case)",
    154, 154, "10"))
_register(DatasetSpec(
    "streets_of_italy", _streets,
    "street network, |E| ~ |V| (Section VII-C comparison)",
    19, 20, "n/a"))

#: Dataset order as in Table II/III of the paper.
TABLE_DATASETS = [
    "andromeda", "bitcoin_addresses", "bitcoin_full",
    "candels10", "candels20", "candels40", "candels80", "candels160",
    "friendster", "rmat", "path100m", "pathunion10",
]


def dataset_names() -> list[str]:
    """All registered dataset names, Table order first."""
    extra = [n for n in _REGISTRY if n not in TABLE_DATASETS]
    return TABLE_DATASETS + sorted(extra)


def get_dataset_spec(name: str) -> DatasetSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise KeyError(f"unknown dataset {name!r}; known: {known}")


def build_dataset(name: str, scale: Optional[float] = None) -> EdgeList:
    """Generate a dataset at the given (or environment-default) scale."""
    spec = get_dataset_spec(name)
    if scale is None:
        scale = default_scale()
    return spec.build(scale)
