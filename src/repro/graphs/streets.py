"""Street-network generator ("Streets of Italy" substitute, Section VII-C).

Lulli et al. evaluate Cracker on a "Streets of Italy" road network with
19M vertices and 20M edges — |E|/|V| ~ 1.05, the signature of street
graphs: almost everywhere degree 2 (road segments) with sparse higher-
degree junctions.  The substitute builds a sparse 2D lattice: a fraction of
grid edges is kept (long chains of degree-2 vertices), plus occasional
diagonals standing in for irregular junctions.
"""

from __future__ import annotations

import numpy as np

from .edgelist import EdgeList


def streets_like_graph(
    height: int,
    width: int,
    keep_fraction: float = 0.52,
    diagonal_fraction: float = 0.02,
    seed: int = 20170301,
) -> EdgeList:
    """A planar-ish street network on a height x width lattice.

    ``keep_fraction`` tunes |E|/|V|: the full lattice has ~2 edges per
    vertex, so keeping ~52% of them yields the ~1.05 ratio of the original
    dataset while leaving many medium-sized components, which is what made
    the dataset slow for label-propagation algorithms.
    """
    rng = np.random.default_rng(seed)
    ids = np.arange(height * width, dtype=np.int64).reshape(height, width)

    horizontal_src = ids[:, :-1].ravel()
    horizontal_dst = ids[:, 1:].ravel()
    vertical_src = ids[:-1, :].ravel()
    vertical_dst = ids[1:, :].ravel()
    src = np.concatenate([horizontal_src, vertical_src])
    dst = np.concatenate([horizontal_dst, vertical_dst])
    keep = rng.random(src.shape[0]) < keep_fraction
    src, dst = src[keep], dst[keep]

    diag_src = ids[:-1, :-1].ravel()
    diag_dst = ids[1:, 1:].ravel()
    keep_diag = rng.random(diag_src.shape[0]) < diagonal_fraction
    src = np.concatenate([src, diag_src[keep_diag]])
    dst = np.concatenate([dst, diag_dst[keep_diag]])

    return EdgeList(src, dst).with_randomised_ids(rng).canonical()
