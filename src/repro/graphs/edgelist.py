"""Edge-list container for undirected graphs.

The paper's problem statement (Section III): a graph is stored as an edge
table of two vertex-ID columns; edges are undirected ((x, y) == (y, x));
isolated vertices may be represented as loop edges (v, v).  This class is
the in-memory version of that table, numpy-backed so datasets load into the
SQL engine without copying row by row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


@dataclass
class EdgeList:
    """An undirected graph stored as two aligned int64 arrays."""

    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same length")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "EdgeList":
        pairs = list(pairs)
        if not pairs:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        array = np.asarray(pairs, dtype=np.int64)
        return cls(array[:, 0], array[:, 1])

    @classmethod
    def empty(cls) -> "EdgeList":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    # -- basic properties -----------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of stored edge rows (including any loop edges)."""
        return int(self.src.shape[0])

    def vertices(self) -> np.ndarray:
        """Sorted unique vertex IDs appearing in the edge list."""
        if self.n_edges == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([self.src, self.dst]))

    @property
    def n_vertices(self) -> int:
        return int(self.vertices().shape[0])

    def max_vertex_id(self) -> int:
        if self.n_edges == 0:
            return -1
        return int(max(self.src.max(), self.dst.max()))

    # -- transforms --------------------------------------------------------

    def canonical(self) -> "EdgeList":
        """Deduplicated undirected form: src <= dst, unique rows, loops kept
        only for otherwise-isolated vertices."""
        if self.n_edges == 0:
            return EdgeList.empty()
        lo = np.minimum(self.src, self.dst)
        hi = np.maximum(self.src, self.dst)
        pairs = np.stack([lo, hi], axis=1)
        pairs = np.unique(pairs, axis=0)
        loops = pairs[:, 0] == pairs[:, 1]
        if loops.any():
            proper = pairs[~loops]
            touched = np.unique(proper.ravel()) if proper.size else np.empty(0, np.int64)
            loop_ids = pairs[loops, 0]
            keep_loops = ~np.isin(loop_ids, touched)
            keep = np.concatenate([proper, np.stack(
                [loop_ids[keep_loops], loop_ids[keep_loops]], axis=1)])
            pairs = keep
        return EdgeList(pairs[:, 0], pairs[:, 1])

    def doubled(self) -> "EdgeList":
        """Both directions of every edge (the paper's setup query)."""
        return EdgeList(
            np.concatenate([self.src, self.dst]),
            np.concatenate([self.dst, self.src]),
        )

    def with_randomised_ids(self, rng: np.random.Generator,
                            id_space: Optional[int] = None) -> "EdgeList":
        """Relabel vertices with a random injection into [0, id_space).

        The paper randomises vertex IDs of the image/video/R-MAT datasets so
        that IDs carry no geometric information.  ``id_space`` defaults to
        4x the vertex count, leaving gaps like a real ID domain.
        """
        vertices = self.vertices()
        n = vertices.shape[0]
        if n == 0:
            return EdgeList.empty()
        if id_space is None:
            id_space = 4 * n
        if id_space < n:
            raise ValueError("id_space smaller than the number of vertices")
        new_ids = rng.choice(id_space, size=n, replace=False).astype(np.int64)
        return self.relabelled(vertices, new_ids)

    def relabelled(self, old_ids: np.ndarray, new_ids: np.ndarray) -> "EdgeList":
        """Apply an explicit old→new vertex-ID mapping."""
        order = np.argsort(old_ids)
        sorted_old = old_ids[order]
        sorted_new = new_ids[order]
        src_pos = np.clip(np.searchsorted(sorted_old, self.src), 0,
                          sorted_old.shape[0] - 1)
        dst_pos = np.clip(np.searchsorted(sorted_old, self.dst), 0,
                          sorted_old.shape[0] - 1)
        if (sorted_old[src_pos] != self.src).any() or \
           (sorted_old[dst_pos] != self.dst).any():
            raise ValueError("relabelling does not cover all vertices")
        return EdgeList(sorted_new[src_pos], sorted_new[dst_pos])

    def concat(self, other: "EdgeList") -> "EdgeList":
        return EdgeList(
            np.concatenate([self.src, other.src]),
            np.concatenate([self.dst, other.dst]),
        )

    def offset_ids(self, offset: int) -> "EdgeList":
        """Shift all vertex IDs by a constant (for disjoint unions)."""
        return EdgeList(self.src + offset, self.dst + offset)

    def degree_histogram(self) -> dict[int, int]:
        """degree -> count over proper (non-loop) edges."""
        proper = self.src != self.dst
        ids = np.concatenate([self.src[proper], self.dst[proper]])
        if ids.size == 0:
            return {}
        _, counts = np.unique(ids, return_counts=True)
        values, frequencies = np.unique(counts, return_counts=True)
        return dict(zip(values.tolist(), frequencies.tolist()))

    def byte_size(self) -> int:
        """Size of the edge table at 8 bytes per cell, as the engine charges."""
        return 16 * self.n_edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        a = self.canonical()
        b = other.canonical()
        return a.n_edges == b.n_edges and bool(
            np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
        )
