"""Graph substrate: edge lists, generators, and the Table II dataset bench."""

from .bitcoin import (
    SyntheticBlockchain,
    bitcoin_addresses_graph,
    bitcoin_full_graph,
    generate_blockchain,
)
from .datasets import (
    TABLE_DATASETS,
    DatasetSpec,
    build_dataset,
    dataset_names,
    default_scale,
    get_dataset_spec,
)
from .edgelist import EdgeList
from .generators import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    path_union,
    rmat_graph,
    star_graph,
)
from .image import andromeda_like_graph, image_to_graph, synthetic_starfield
from .io import edges_from_table, load_edges_into, read_csv, write_csv
from .social import friendster_like_graph
from .streets import streets_like_graph
from .video import candels_like_graph, synthetic_flight, video_to_graph

__all__ = [
    "DatasetSpec",
    "EdgeList",
    "SyntheticBlockchain",
    "TABLE_DATASETS",
    "andromeda_like_graph",
    "bitcoin_addresses_graph",
    "bitcoin_full_graph",
    "build_dataset",
    "candels_like_graph",
    "complete_graph",
    "cycle_graph",
    "dataset_names",
    "default_scale",
    "edges_from_table",
    "friendster_like_graph",
    "generate_blockchain",
    "get_dataset_spec",
    "gnm_random_graph",
    "image_to_graph",
    "load_edges_into",
    "path_graph",
    "path_union",
    "read_csv",
    "rmat_graph",
    "star_graph",
    "streets_like_graph",
    "synthetic_flight",
    "synthetic_starfield",
    "video_to_graph",
    "write_csv",
]
