"""Synthetic graph generators.

Covers the structural families of the paper's test bench (Section VII-A):
path graphs (the worst cases of Figure 2 and Table II's Path100M), unions
of paths (PathUnion10, the Two-Phase worst case), R-MAT random graphs with
the parameters of Kiveris et al., plus the small standard graphs the test
suite uses (cycles, stars, cliques, G(n, m)).
"""

from __future__ import annotations

import numpy as np

from .edgelist import EdgeList


def path_graph(n: int, start_id: int = 1) -> EdgeList:
    """Sequentially numbered path: IDs start_id .. start_id+n-1.

    With sequential numbering this is the adversarial input of Figure 2(a):
    deterministic min-contraction removes one vertex per round.
    """
    if n < 1:
        raise ValueError("path needs at least one vertex")
    if n == 1:
        only = np.array([start_id], dtype=np.int64)
        return EdgeList(only, only.copy())
    ids = np.arange(start_id, start_id + n, dtype=np.int64)
    return EdgeList(ids[:-1], ids[1:])


def path_union(
    n_paths: int,
    base_length: int,
    interleaved_ids: bool = True,
) -> EdgeList:
    """A disjoint union of paths of doubling lengths.

    Reproduces the role of the paper's PathUnion10 dataset: "a union of path
    graphs of different lengths with vertices numbered in a specific way"
    that is the worst case for the Two-Phase algorithm.  With
    ``interleaved_ids`` the vertex numbering runs across the paths round-
    robin, so ID-ordered star operations keep every path long.
    """
    lengths = [base_length * (1 << i) for i in range(n_paths)]
    total = sum(lengths)
    if interleaved_ids:
        # Position j of path p gets ID j * n_paths + p + 1: consecutive IDs
        # always sit on *different* paths.
        sources = []
        targets = []
        for p, length in enumerate(lengths):
            positions = np.arange(length - 1, dtype=np.int64)
            sources.append(positions * n_paths + p + 1)
            targets.append((positions + 1) * n_paths + p + 1)
        return EdgeList(np.concatenate(sources), np.concatenate(targets))
    graphs = []
    offset = 1
    for length in lengths:
        graphs.append(path_graph(length, start_id=offset))
        offset += length
    result = EdgeList.empty()
    for graph in graphs:
        result = result.concat(graph)
    return result


def cycle_graph(n: int, start_id: int = 1) -> EdgeList:
    """A simple cycle on n >= 3 vertices."""
    if n < 3:
        raise ValueError("cycle needs at least three vertices")
    ids = np.arange(start_id, start_id + n, dtype=np.int64)
    return EdgeList(ids, np.roll(ids, -1))


def star_graph(n_leaves: int, centre_id: int = 1) -> EdgeList:
    """A star: centre connected to n_leaves leaves."""
    if n_leaves < 1:
        raise ValueError("star needs at least one leaf")
    leaves = np.arange(centre_id + 1, centre_id + 1 + n_leaves, dtype=np.int64)
    centre = np.full(n_leaves, centre_id, dtype=np.int64)
    return EdgeList(centre, leaves)


def complete_graph(n: int, start_id: int = 1) -> EdgeList:
    """The complete graph K_n."""
    if n < 2:
        raise ValueError("complete graph needs at least two vertices")
    ids = np.arange(start_id, start_id + n, dtype=np.int64)
    src, dst = np.triu_indices(n, k=1)
    return EdgeList(ids[src], ids[dst])


def gnm_random_graph(n: int, m: int, rng: np.random.Generator) -> EdgeList:
    """Erdős–Rényi G(n, m): m edges drawn uniformly (duplicates removed)."""
    if n < 2:
        raise ValueError("G(n, m) needs at least two vertices")
    src = rng.integers(0, n, size=2 * m, dtype=np.int64)
    dst = rng.integers(0, n, size=2 * m, dtype=np.int64)
    keep = src != dst
    edges = EdgeList(src[keep] + 1, dst[keep] + 1).canonical()
    if edges.n_edges > m:
        edges = EdgeList(edges.src[:m], edges.dst[:m])
    return edges


def rmat_graph(
    scale: int,
    n_edges: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    randomise_ids: bool = True,
) -> EdgeList:
    """R-MAT recursive-matrix random graph (Chakrabarti et al. 2004).

    ``scale`` is log2 of the vertex-ID domain.  The default parameters
    (0.57, 0.19, 0.19, 0.05) are exactly those used by Kiveris et al. and
    therefore by the paper's RMAT dataset; vertex IDs are randomised
    afterwards "to decouple the graph structure from artefacts of the
    generation technique" (Section VII-A).
    """
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("R-MAT probabilities must sum to 1")
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        quadrant = rng.random(n_edges)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        go_down = quadrant >= a + b
        go_right = ((quadrant >= a) & (quadrant < a + b)) | (quadrant >= a + b + c)
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    keep = src != dst
    edges = EdgeList(src[keep] + 1, dst[keep] + 1)
    if randomise_ids:
        edges = edges.with_randomised_ids(rng)
    return edges.canonical()
