"""Synthetic Bitcoin-style blockchain and its two analysis graphs.

The paper imports the real Bitcoin blockchain (570,870 blocks, 250 GB) and
derives two graphs (Section VII-A):

* **Bitcoin addresses** — the multi-input address-clustering heuristic of
  Meiklejohn et al.: "if a transaction uses inputs with multiple addresses
  then these addresses are assumed to be controlled by the same entity".
  The graph links addresses to the transactions spending them; connected
  components are address clusters.  At paper scale: |V| 878M, |E| 830M,
  216.9M components — i.e. a huge number of *small* clusters.
* **Bitcoin full** — the full bipartite transaction/output graph, whose
  components are "different markets that have not interacted with each
  other at all": few (37k) mostly giant components.

We cannot ship the blockchain, so :class:`SyntheticBlockchain` simulates
the generative process that gives those graphs their shape: entities with
power-law wallet sizes issue transactions that spend several of their own
addresses (linking them) and pay entities biased towards their own market,
with rare cross-market payments keeping the full graph's component count
far below the entity count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .edgelist import EdgeList


@dataclass
class SyntheticBlockchain:
    """A generated ledger: flat arrays describing every transaction input."""

    #: transaction id of each input row
    input_tx: np.ndarray
    #: address spent by each input row
    input_address: np.ndarray
    #: transaction id of each output row
    output_tx: np.ndarray
    #: output id of each output row (globally unique)
    output_id: np.ndarray
    #: spending transaction for each output row (-1 = unspent)
    output_spent_by: np.ndarray
    n_transactions: int
    n_addresses: int

    def address_graph(self) -> EdgeList:
        """The Meiklejohn address-clustering graph.

        Bipartite: every input links its address to the spending
        transaction.  Address IDs and transaction IDs live in disjoint
        ranges so the graph is properly bipartite.
        """
        tx_base = self.n_addresses
        return EdgeList(self.input_address, self.input_tx + tx_base)

    def full_graph(self) -> EdgeList:
        """The full transaction graph.

        Bipartite transactions/outputs: a transaction connects to every
        output it creates, and every output connects to the transaction
        that later spends it.
        """
        n_outputs = int(self.output_id.shape[0])
        tx_base = n_outputs
        created_src = self.output_tx + tx_base
        created_dst = self.output_id
        spent_mask = self.output_spent_by >= 0
        spent_src = self.output_id[spent_mask]
        spent_dst = self.output_spent_by[spent_mask] + tx_base
        return EdgeList(
            np.concatenate([created_src, spent_src]),
            np.concatenate([created_dst, spent_dst]),
        )


def generate_blockchain(
    n_transactions: int,
    rng: np.random.Generator,
    n_markets: int | None = None,
    addresses_per_entity_alpha: float = 2.0,
    max_inputs: int = 3,
    cross_market_probability: float = 0.002,
) -> SyntheticBlockchain:
    """Generate a synthetic ledger (see module docstring for the model)."""
    if n_transactions < 10:
        raise ValueError("generate at least 10 transactions")
    if n_markets is None:
        # Markets sized by a power law: a handful of big ones plus a tail,
        # mirroring the paper's 37k components over 1.5G vertices.
        n_markets = max(2, n_transactions // 400)
    n_entities = max(4, n_transactions // 3)

    # Entity wallets: power-law address counts, at least one address each.
    wallet_sizes = np.minimum(
        1 + rng.pareto(addresses_per_entity_alpha, size=n_entities), 50.0
    ).astype(np.int64)
    address_entity = np.repeat(np.arange(n_entities, dtype=np.int64), wallet_sizes)
    n_addresses = int(address_entity.shape[0])
    address_ids_by_entity_start = np.concatenate(
        ([0], np.cumsum(wallet_sizes)[:-1])
    )

    # Market membership: entity -> market, power-law market sizes.
    market_weights = 1.0 / np.arange(1, n_markets + 1) ** 1.3
    market_weights /= market_weights.sum()
    entity_market = rng.choice(n_markets, size=n_entities, p=market_weights)

    # Issuing entity of each transaction: activity is also power-law.
    entity_activity = 1.0 / np.arange(1, n_entities + 1) ** 1.1
    entity_activity /= entity_activity.sum()
    tx_entity = rng.choice(n_entities, size=n_transactions, p=entity_activity)

    # Inputs: each transaction spends 1..max_inputs addresses of its entity.
    n_inputs = rng.integers(1, max_inputs + 1, size=n_transactions)
    input_tx = np.repeat(np.arange(n_transactions, dtype=np.int64), n_inputs)
    input_entity = np.repeat(tx_entity, n_inputs)
    offsets = rng.integers(0, 1 << 30, size=input_tx.shape[0])
    input_address = (
        address_ids_by_entity_start[input_entity]
        + offsets % wallet_sizes[input_entity]
    ).astype(np.int64)

    # Outputs: each transaction pays 1-2 recipients; recipients are mostly
    # entities of the same market, rarely cross-market.
    n_outputs_per_tx = rng.integers(1, 3, size=n_transactions)
    output_tx = np.repeat(np.arange(n_transactions, dtype=np.int64), n_outputs_per_tx)
    n_outputs = int(output_tx.shape[0])
    output_id = np.arange(n_outputs, dtype=np.int64)

    # Spending structure: an output created by tx t may be spent by a later
    # transaction of the recipient.  For the *full graph's* component
    # structure what matters is which transactions get linked through
    # outputs; we wire each output to a later transaction of the same
    # market (probability ~0.8), a later cross-market transaction (rare),
    # or leave it unspent.
    tx_market = entity_market[tx_entity]
    output_market = tx_market[output_tx]
    spent_by = np.full(n_outputs, -1, dtype=np.int64)
    spend_roll = rng.random(n_outputs)
    will_spend = spend_roll < 0.85
    cross = rng.random(n_outputs) < cross_market_probability

    # Pre-index transactions by market for same-market spends.
    order_by_market = np.argsort(tx_market, kind="stable")
    sorted_markets = tx_market[order_by_market]
    market_starts = np.searchsorted(sorted_markets, np.arange(n_markets))
    market_ends = np.searchsorted(sorted_markets, np.arange(n_markets), side="right")

    random_pick = rng.integers(0, 1 << 62, size=n_outputs)
    for market in range(n_markets):
        members = order_by_market[market_starts[market]:market_ends[market]]
        if members.size == 0:
            continue
        rows = np.flatnonzero(will_spend & ~cross & (output_market == market))
        if rows.size:
            spent_by[rows] = members[random_pick[rows] % members.size]
    cross_rows = np.flatnonzero(will_spend & cross)
    if cross_rows.size:
        spent_by[cross_rows] = random_pick[cross_rows] % n_transactions

    return SyntheticBlockchain(
        input_tx=input_tx,
        input_address=input_address,
        output_tx=output_tx,
        output_id=output_id,
        output_spent_by=spent_by,
        n_transactions=n_transactions,
        n_addresses=n_addresses,
    )


def bitcoin_addresses_graph(n_transactions: int, seed: int = 20190409) -> EdgeList:
    """The Bitcoin-addresses substitute at a chosen transaction count."""
    rng = np.random.default_rng(seed)
    chain = generate_blockchain(n_transactions, rng)
    return chain.address_graph().with_randomised_ids(rng)


def bitcoin_full_graph(n_transactions: int, seed: int = 20190409) -> EdgeList:
    """The Bitcoin-full substitute at a chosen transaction count."""
    rng = np.random.default_rng(seed)
    chain = generate_blockchain(n_transactions, rng)
    return chain.full_graph().with_randomised_ids(rng)
