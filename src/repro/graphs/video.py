"""Synthetic video volumes and 3D pixel-connectivity graphs.

The paper's Candels10..Candels160 series converts frames of a 4K flight
through the CANDELS Ultra Deep Survey field to graphs "using pixel
6-connectivity (x, y, and time) and a colour difference threshold of 20",
doubling the frame count from one dataset to the next to create a
scalability series (Section VII-A).  :func:`synthetic_flight` renders a
drifting star field (stars move smoothly between frames, as in the source
video), and :func:`video_to_graph` applies the 6-connectivity rule.
"""

from __future__ import annotations

import numpy as np

from .edgelist import EdgeList


def synthetic_flight(
    n_frames: int,
    height: int,
    width: int,
    rng: np.random.Generator,
    n_stars: int | None = None,
    background_level: int = 6,
    background_noise: int = 8,
    drift: float = 0.8,
) -> np.ndarray:
    """Render an (n_frames, height, width, 3) uint8 video volume.

    Stars drift by ``drift`` pixels per frame along per-star directions, so
    a star's pixels stay colour-connected across time — the property that
    makes the temporal edges of the 6-connectivity graph meaningful.
    """
    if n_stars is None:
        n_stars = max(1, (height * width) // 120)
    video = rng.integers(
        0, background_noise, size=(n_frames, height, width, 3)
    ).astype(np.int32) + background_level
    radii = 1.0 + rng.pareto(1.8, size=n_stars)
    radii = np.minimum(radii, min(height, width) / 8.0)
    start_y = rng.uniform(0, height, size=n_stars)
    start_x = rng.uniform(0, width, size=n_stars)
    angles = rng.uniform(0, 2 * np.pi, size=n_stars)
    velocity_y = np.sin(angles) * drift
    velocity_x = np.cos(angles) * drift
    colours = rng.integers(110, 256, size=(n_stars, 3))
    for frame in range(n_frames):
        ys = (start_y + frame * velocity_y) % height
        xs = (start_x + frame * velocity_x) % width
        for cy, cx, radius, colour in zip(ys, xs, radii, colours):
            r = int(np.ceil(radius))
            y0, y1 = max(0, int(cy) - r), min(height, int(cy) + r + 1)
            x0, x1 = max(0, int(cx) - r), min(width, int(cx) + r + 1)
            if y0 >= y1 or x0 >= x1:
                continue
            yy, xx = np.mgrid[y0:y1, x0:x1]
            inside = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
            video[frame, y0:y1, x0:x1][inside] = colour
    return np.clip(video, 0, 255).astype(np.uint8)


def video_to_graph(
    video: np.ndarray,
    threshold: float = 20.0,
    rng: np.random.Generator | None = None,
    randomise_ids: bool = True,
) -> EdgeList:
    """Convert a video volume to a 6-connectivity pixel graph.

    Edges join pixels adjacent in x, y or t whose RGB colour distance is at
    most ``threshold``; vertex IDs are randomised as in the paper.
    """
    if video.ndim != 4 or video.shape[3] != 3:
        raise ValueError("expected an (T, H, W, 3) video volume")
    frames, height, width = video.shape[:3]
    voxels = video.astype(np.int32)
    ids = np.arange(frames * height * width, dtype=np.int64).reshape(
        frames, height, width
    )
    sources = []
    targets = []
    threshold_sq = threshold ** 2

    diff_x = voxels[:, :, 1:, :] - voxels[:, :, :-1, :]
    ok = (diff_x ** 2).sum(axis=3) <= threshold_sq
    sources.append(ids[:, :, :-1][ok].ravel())
    targets.append(ids[:, :, 1:][ok].ravel())

    diff_y = voxels[:, 1:, :, :] - voxels[:, :-1, :, :]
    ok = (diff_y ** 2).sum(axis=3) <= threshold_sq
    sources.append(ids[:, :-1, :][ok].ravel())
    targets.append(ids[:, 1:, :][ok].ravel())

    diff_t = voxels[1:, :, :, :] - voxels[:-1, :, :, :]
    ok = (diff_t ** 2).sum(axis=3) <= threshold_sq
    sources.append(ids[:-1, :, :][ok].ravel())
    targets.append(ids[1:, :, :][ok].ravel())

    edges = EdgeList(np.concatenate(sources), np.concatenate(targets))
    if randomise_ids:
        if rng is None:
            rng = np.random.default_rng(0)
        edges = edges.with_randomised_ids(rng)
    return edges


def candels_like_graph(
    n_frames: int,
    height: int,
    width: int,
    seed: int = 20170913,
    threshold: float = 20.0,
) -> EdgeList:
    """One member of the Candels scalability series (see module docs)."""
    rng = np.random.default_rng(seed)
    video = synthetic_flight(n_frames, height, width, rng)
    return video_to_graph(video, threshold=threshold, rng=rng)
