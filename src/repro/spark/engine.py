"""The Spark SQL comparison backend (Section VII-C).

The paper also implements Randomised Contraction in Spark SQL and finds it
"roughly 2.3 times as long ... as for the in-database one, despite both
executing the same SQL code on the same hardware", conjecturing that the
gap comes from the database's more mature query optimisation and execution.

:class:`SparkSQLDatabase` reproduces that setting: the *same* SQL text runs
through the same parser and planner, but execution models an RDD/shuffle
engine instead of a co-located MPP database:

* **no co-location awareness** — every join, aggregation and distinct
  performs a full shuffle of its inputs (charged as motion), because the
  modelled engine does not track physical distribution between stages;
* **task granularity** — operator inputs are hash-partitioned into a fixed
  number of tasks and each task runs the kernel separately, paying Python/
  numpy dispatch per task the way an executor pays per-task overhead
  (smaller batches, same total work, more fixed cost);
* **no broadcast optimisation** — small relations are shuffled like large
  ones.

Everything else (SQL dialect, UDFs, statistics, space budget) behaves
identically, so algorithms run unchanged against either backend and the
measured ratio is attributable to the execution model — which is exactly
the comparison Section VII-C makes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sqlengine.database import Database
from ..sqlengine.executor import Executor
from ..sqlengine.mpp import hash64
from ..sqlengine.operators import (
    NO_MATCH,
    distinct_rows,
    group_rows,
    join_indices,
    left_join_indices,
)
from ..sqlengine.types import Column


def _partition_ids(key: Column, n_tasks: int) -> np.ndarray:
    """Task assignment by key hash (NULL keys all land in task 0)."""
    if key.sql_type == "text":
        hashed = np.array([hash(v) for v in key.values], dtype=np.uint64)
    else:
        hashed = hash64(key.values)
    parts = (hashed % np.uint64(n_tasks)).astype(np.int64)
    if key.mask is not None:
        parts[key.mask] = 0
    return parts


class SparkExecutor(Executor):
    """Executor with shuffle-everything, per-task kernel execution."""

    #: The partitioned join concatenates per-task outputs partition-major,
    #: so its left-row indices are not ascending — the fused join->GROUP BY
    #: expansion cannot run on it and falls back to the staged pipeline.
    monotone_join_output = False

    def __init__(self, catalog, registry, cluster, stats, n_tasks: int = 64):
        # Spark SQL has no MPP-style table indexes to reuse; keep the
        # shuffle-everything accounting pure by disabling the index cache.
        super().__init__(catalog, registry, cluster, stats, use_index_cache=False)
        self.n_tasks = n_tasks
        #: Total tasks launched, a Spark-ish metric exposed for reporting.
        self.tasks_launched = 0

    # -- motion: every keyed operation shuffles its whole input ------------

    def _charge_join_motion(self, frame, key_names) -> None:
        if frame.length:
            self.stats.record_redistribution(frame.byte_size())

    # -- kernels: hash-partitioned per-task execution ------------------------

    def _join_kernel(self, left_keys, right_keys, left_index=None,
                     right_index=None, note=None):
        if note is not None:
            note.append("spark-partitioned")
        return self._partitioned_join(left_keys, right_keys, outer=False)

    def _left_join_kernel(self, left_keys, right_keys, left_index=None,
                          right_index=None, note=None):
        if note is not None:
            note.append("spark-partitioned")
        return self._partitioned_join(left_keys, right_keys, outer=True)

    def _partitioned_join(self, left_keys, right_keys, outer: bool):
        n_left = len(left_keys[0])
        n_right = len(right_keys[0])
        if min(n_left, n_right) == 0 or max(n_left, n_right) < self.n_tasks * 4:
            self.tasks_launched += 1
            kernel = left_join_indices if outer else join_indices
            return kernel(left_keys, right_keys)
        left_parts = _partition_ids(left_keys[0], self.n_tasks)
        right_parts = _partition_ids(right_keys[0], self.n_tasks)
        left_order = np.argsort(left_parts, kind="stable")
        right_order = np.argsort(right_parts, kind="stable")
        left_bounds = np.searchsorted(left_parts[left_order],
                                      np.arange(self.n_tasks + 1))
        right_bounds = np.searchsorted(right_parts[right_order],
                                       np.arange(self.n_tasks + 1))
        out_left = []
        out_right = []
        kernel = left_join_indices if outer else join_indices
        for task in range(self.n_tasks):
            l_rows = left_order[left_bounds[task]:left_bounds[task + 1]]
            r_rows = right_order[right_bounds[task]:right_bounds[task + 1]]
            if l_rows.size == 0:
                continue
            if r_rows.size == 0:
                if outer:
                    out_left.append(l_rows)
                    out_right.append(np.full(l_rows.size, NO_MATCH, dtype=np.int64))
                continue
            self.tasks_launched += 1
            l_sub = [col.take(l_rows) for col in left_keys]
            r_sub = [col.take(r_rows) for col in right_keys]
            li, ri = kernel(l_sub, r_sub)
            out_left.append(l_rows[li])
            if outer:
                matched = ri != NO_MATCH
                global_ri = np.where(
                    matched, r_rows[np.clip(ri, 0, None)], NO_MATCH
                )
            else:
                global_ri = r_rows[ri]
            out_right.append(global_ri)
        if not out_left:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(out_left), np.concatenate(out_right)

    def _group_kernel(self, key_columns, index=None):
        n = len(key_columns[0]) if key_columns else 0
        if n < self.n_tasks * 4:
            self.tasks_launched += 1
            return group_rows(key_columns)
        parts = _partition_ids(key_columns[0], self.n_tasks)
        order = np.argsort(parts, kind="stable")
        bounds = np.searchsorted(parts[order], np.arange(self.n_tasks + 1))
        out_order = []
        out_starts = []
        offset = 0
        for task in range(self.n_tasks):
            rows = order[bounds[task]:bounds[task + 1]]
            if rows.size == 0:
                continue
            self.tasks_launched += 1
            sub = [col.take(rows) for col in key_columns]
            sub_order, sub_starts = group_rows(sub)
            out_order.append(rows[sub_order])
            out_starts.append(sub_starts + offset)
            offset += rows.size
        return np.concatenate(out_order), np.concatenate(out_starts)

    def _distinct_kernel(self, columns, note=None):
        n = len(columns[0]) if columns else 0
        if n < self.n_tasks * 4:
            self.tasks_launched += 1
            return distinct_rows(columns, note=note)
        parts = _partition_ids(columns[0], self.n_tasks)
        order = np.argsort(parts, kind="stable")
        bounds = np.searchsorted(parts[order], np.arange(self.n_tasks + 1))
        keep = []
        for task in range(self.n_tasks):
            rows = order[bounds[task]:bounds[task + 1]]
            if rows.size == 0:
                continue
            self.tasks_launched += 1
            sub = [col.take(rows) for col in columns]
            keep.append(rows[distinct_rows(sub)])
        if not keep:
            return np.empty(0, dtype=np.int64)
        # Distinct rows may still collide across partitions only when the
        # first column alone did not separate them; finish with one pass.
        # The concatenation is partition-major, so the result is sorted to
        # honour the kernel contract (ascending row order).
        candidate = np.concatenate(keep)
        sub = [col.take(candidate) for col in columns]
        # The finish pass runs the same kernel class as the partitioned
        # passes; route its note through so kernel telemetry (hash
        # DISTINCT counting) reflects large inputs too.
        return np.sort(candidate[distinct_rows(sub, note=note)])


class SparkSQLDatabase(Database):
    """A Database whose executor models Spark SQL (see module docstring)."""

    def __init__(
        self,
        n_segments: int = 4,
        space_budget_bytes: Optional[int] = None,
        n_tasks: int = 64,
    ):
        super().__init__(n_segments=n_segments, space_budget_bytes=space_budget_bytes)
        self._executor = SparkExecutor(
            self.catalog, self.registry, self.cluster, self.stats, n_tasks
        )

    @property
    def tasks_launched(self) -> int:
        return self._executor.tasks_launched
