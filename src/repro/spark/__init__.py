"""Spark SQL comparison backend (Section VII-C of the paper)."""

from .engine import SparkExecutor, SparkSQLDatabase

__all__ = ["SparkExecutor", "SparkSQLDatabase"]
