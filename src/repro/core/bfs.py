"""The "Breadth First Search" strategy of Section IV (MADlib-style).

Every vertex starts with the minimum ID of its closed neighbourhood as its
representative and repeatedly replaces it with the minimum representative
in the closed neighbourhood until nothing changes.  This is the approach of
the Apache MADlib connected-components implementation, and the paper's
Section IV shows why it fails at scale: on a sequentially numbered path of
n vertices it takes n - 1 rounds, since information travels one hop per
round.  It is included as the naive baseline for the E-G2 experiment.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sqlengine import Database
from .base import SQLConnectedComponents


class BreadthFirstSearchCC(SQLConnectedComponents):
    """Min-label propagation to a fixed point.

    ``max_rounds`` bounds the iteration count (the worst case is the graph
    diameter, which is |V| - 1); exceeding it raises RuntimeError so a
    misjudged input cannot hang a benchmark run.
    """

    name = "breadth-first-search"

    def __init__(self, table_prefix: str = "cc", max_rounds: Optional[int] = None):
        super().__init__(table_prefix)
        self.max_rounds = max_rounds

    def _execute(self, db: Database, edges_table: str, result_table: str,
                 rng: random.Random):
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        db.execute(
            f"""
            create table {p}reps as
            select v1 as v, least(v1, min(v2)) as rep
            from {p}e
            group by v1
            distributed by (v)
            """,
            label=f"{self.name}:init",
        )
        rounds = 0
        while True:
            rounds += 1
            if self.max_rounds is not None and rounds > self.max_rounds:
                raise RuntimeError(
                    f"{self.name} did not converge within {self.max_rounds} rounds"
                )
            db.execute(
                f"""
                create table {p}new as
                select r.v as v, least(r.rep, coalesce(t.m, r.rep)) as rep
                from {p}reps as r
                left outer join (
                    select e.v1 as v, min(rn.rep) as m
                    from {p}e as e, {p}reps as rn
                    where e.v2 = rn.v
                    group by e.v1
                ) as t on (r.v = t.v)
                distributed by (v)
                """,
                label=f"{self.name}:improve",
            )
            changed = db.execute(
                f"""
                select count(*) from {p}reps as a, {p}new as b
                where a.v = b.v and a.rep != b.rep
                """,
                label=f"{self.name}:converged?",
            ).scalar()
            db.execute(f"drop table {p}reps")
            db.execute(f"alter table {p}new rename to {p}reps")
            if changed == 0:
                break
        db.execute(f"alter table {p}reps rename to {result_table}")
        db.execute(f"drop table {p}e")
        return rounds, {}
