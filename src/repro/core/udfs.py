"""User-defined SQL functions backing the randomisation methods.

The paper loads a C function ``axplusb`` into HAWQ (Appendix A, Figure 7)
to evaluate GF(2^64) affine maps inside queries.  This module registers the
equivalent (numpy-vectorised) functions with our engine:

* ``axplusb(A, x, B)``  — GF(2^64) affine map, the paper's UDF;
* ``axbmodp(A, x, B, p)`` — the GF(p) "SQL-only" alternative;
* ``blowfish(key, x)``  — the encryption method's pseudo-random bijection.

Constant arguments arrive once per query as Python scalars, so per-constant
preparation (the GF(2^64) byte tables, the Blowfish key schedule) is cached
across calls exactly like a C UDF would keep state per prepared statement.
"""

from __future__ import annotations

import numpy as np

from ..ff.blowfish import Blowfish
from ..ff.gf2_64 import Gf2AffineMap, to_unsigned
from ..ff.gfp import GfpAffineMap
from ..sqlengine import Database
from ..sqlengine.errors import ExecutionError

#: Registered-function names, for introspection/tests.
UDF_NAMES = ("axplusb", "axbmodp", "blowfish")


def _as_uint64(x) -> np.ndarray:
    if np.isscalar(x) or not isinstance(x, np.ndarray):
        x = np.array([x])
    return np.ascontiguousarray(x).astype(np.uint64, copy=False)


def register_udfs(db: Database) -> None:
    """Install axplusb/axbmodp/blowfish into a database (idempotent)."""
    gf2_cache: dict[tuple[int, int], Gf2AffineMap] = {}
    gfp_cache: dict[tuple[int, int, int], GfpAffineMap] = {}
    cipher_cache: dict[int, Blowfish] = {}

    def axplusb(a, x, b):
        key = (to_unsigned(int(a)), to_unsigned(int(b)))
        if key[0] == 0:
            raise ExecutionError("axplusb requires A != 0 (h must be a bijection)")
        mapping = gf2_cache.get(key)
        if mapping is None:
            mapping = Gf2AffineMap(key[0], key[1])
            if len(gf2_cache) > 64:
                gf2_cache.clear()
            gf2_cache[key] = mapping
        return mapping.apply(_as_uint64(x)).view(np.int64)

    def axbmodp(a, x, b, p):
        key = (int(a), int(b), int(p))
        mapping = gfp_cache.get(key)
        if mapping is None:
            mapping = GfpAffineMap(*key)
            if len(gfp_cache) > 64:
                gfp_cache.clear()
            gfp_cache[key] = mapping
        return mapping.apply(_as_uint64(x)).view(np.int64)

    def blowfish(key, x):
        key_int = to_unsigned(int(key))
        cipher = cipher_cache.get(key_int)
        if cipher is None:
            cipher = Blowfish.from_round_key(key_int)
            if len(cipher_cache) > 64:
                cipher_cache.clear()
            cipher_cache[key_int] = cipher
        return cipher.encrypt_vector(_as_uint64(x)).view(np.int64)

    db.create_function("axplusb", axplusb)
    db.create_function("axbmodp", axbmodp)
    db.create_function("blowfish", blowfish)
