"""Ground-truth connected components.

Two independent reference implementations:

* :class:`UnionFind` — the classical disjoint-set forest with union by size
  and path compression (the paper's Section I baseline for the sequential
  setting), used directly in property tests;
* :func:`ground_truth_labels` — a fast path through
  ``scipy.sparse.csgraph.connected_components``.

The test suite cross-checks the two against each other (and against
networkx), so every SQL algorithm is validated against an agreed truth.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sparse
from scipy.sparse.csgraph import connected_components as _scipy_components

from ..graphs.edgelist import EdgeList


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (creating it if new)."""
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._size[x] = 1
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> dict[int, list[int]]:
        """root -> sorted members, over every element ever seen."""
        groups: dict[int, list[int]] = {}
        for x in list(self._parent):
            groups.setdefault(self.find(x), []).append(x)
        for members in groups.values():
            members.sort()
        return groups

    def labels(self) -> dict[int, int]:
        """element -> smallest member of its set."""
        result: dict[int, int] = {}
        for root, members in self.components().items():
            smallest = members[0]
            for member in members:
                result[member] = smallest
        return result


def unionfind_labels(edges: EdgeList) -> dict[int, int]:
    """Labels by union-find (pure Python; fine up to ~10^6 edges)."""
    uf = UnionFind()
    for a, b in zip(edges.src.tolist(), edges.dst.tolist()):
        uf.union(a, b)
    return uf.labels()


def ground_truth_labels(edges: EdgeList) -> tuple[np.ndarray, np.ndarray]:
    """(vertices, labels): canonical min-ID labels via scipy.

    ``vertices`` is sorted; ``labels[i]`` is the smallest vertex ID in the
    component of ``vertices[i]``.
    """
    vertices = edges.vertices()
    n = vertices.shape[0]
    if n == 0:
        return vertices, vertices.copy()
    src = np.searchsorted(vertices, edges.src)
    dst = np.searchsorted(vertices, edges.dst)
    matrix = sparse.coo_matrix(
        (np.ones(edges.n_edges, dtype=np.int8), (src, dst)), shape=(n, n)
    )
    _, assignment = _scipy_components(matrix, directed=False)
    # Convert arbitrary component ids to canonical min-vertex labels.
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    group_start = np.concatenate(
        ([True], sorted_assignment[1:] != sorted_assignment[:-1])
    )
    starts = np.flatnonzero(group_start)
    min_per_group = np.minimum.reduceat(vertices[order], starts)
    labels = np.empty(n, dtype=np.int64)
    group_index = np.cumsum(group_start) - 1
    labels[order] = min_per_group[group_index]
    return vertices, labels


def count_components(edges: EdgeList) -> int:
    """Number of connected components (isolated loop-vertices count)."""
    _, labels = ground_truth_labels(edges)
    if labels.shape[0] == 0:
        return 0
    return int(np.unique(labels).shape[0])
