"""Shared machinery for the SQL connected-components algorithms.

Every algorithm in this reproduction — Randomised Contraction and the
ported baselines — follows the paper's execution model (Appendix A): a
Python driver issuing SQL statements against the database, with all "heavy
lifting" done by the queries.  This module provides the common driver
scaffolding: temp-table namespacing, run bracketing with statistics
snapshots, round counting, and result extraction.
"""

from __future__ import annotations

import math
import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sqlengine import Database
from ..sqlengine.stats import StatsSnapshot


@dataclass
class CCRunResult:
    """Everything measured about one algorithm run.

    ``stats`` holds the deltas of the engine counters over the run — the
    quantities behind Tables III (queries/runtime), IV (peak space) and V
    (bytes written).
    """

    algorithm: str
    result_table: str
    rounds: int
    sql_queries: int
    elapsed_seconds: float
    stats: StatsSnapshot
    n_labelled: int
    extra: dict = field(default_factory=dict)

    def labels(self, db: Database) -> tuple[np.ndarray, np.ndarray]:
        """Fetch (vertices, labels) arrays from the result table."""
        table = db.table(self.result_table)
        names = table.column_names
        return (
            table.column(names[0]).values.copy(),
            table.column(names[1]).values.copy(),
        )


class SQLConnectedComponents(ABC):
    """Base class: a connected-components algorithm driven over SQL.

    Subclasses implement :meth:`_execute`, issuing queries through
    ``db.execute`` using ``self.prefix``-namespaced temporary tables, and
    return the number of algorithm rounds.
    """

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"

    def __init__(self, table_prefix: str = "cc"):
        self.prefix = table_prefix

    # -- public API --------------------------------------------------------

    def run(
        self,
        db: Database,
        edges_table: str,
        result_table: str = "ccresult",
        seed: Optional[int] = None,
    ) -> CCRunResult:
        """Run the algorithm on ``edges_table`` (columns v1, v2).

        The labelling lands in ``result_table`` (columns v, r).  Temporary
        tables are cleaned up even if the run aborts (e.g. on a space-budget
        violation), so the database remains usable.
        """
        rng = random.Random(seed)
        preserve = {edges_table.lower()}
        self.cleanup(db, preserve=preserve)
        db.drop_table(result_table, if_exists=True)
        before = db.stats.snapshot()
        db.stats.reset_peak()
        started = time.perf_counter()
        try:
            rounds, extra = self._execute(db, edges_table, result_table, rng)
        except BaseException:
            self.cleanup(db, preserve=preserve | {result_table.lower()})
            raise
        elapsed = time.perf_counter() - started
        after = db.stats.snapshot()
        delta = after.delta(before)
        n_labelled = db.table(result_table).n_rows
        return CCRunResult(
            algorithm=self.name,
            result_table=result_table,
            rounds=rounds,
            sql_queries=delta.queries,
            elapsed_seconds=elapsed,
            stats=delta,
            n_labelled=n_labelled,
            extra=extra,
        )

    def cleanup(self, db: Database, preserve: set[str] | None = None) -> None:
        """Drop temporary tables created under this prefix.

        ``preserve`` names tables to keep (the input edge table, and the
        result table when cleaning up after a failure).
        """
        keep = {"ccresult"} | (preserve or set())
        for name in list(db.table_names()):
            if name.startswith(self.prefix) and name not in keep:
                db.drop_table(name, if_exists=True)

    # -- subclass hooks --------------------------------------------------------

    @abstractmethod
    def _execute(
        self,
        db: Database,
        edges_table: str,
        result_table: str,
        rng: random.Random,
    ) -> tuple[int, dict]:
        """Run the algorithm; return (rounds, extra-metrics dict)."""

    # -- shared helpers -----------------------------------------------------------

    def _setup_doubled_edges(self, db: Database, edges_table: str, name: str) -> int:
        """The paper's setup query: both directions of every edge."""
        return db.execute(
            f"""
            create table {name} as
            select v1, v2 from {edges_table}
            union all
            select v2, v1 from {edges_table}
            distributed by (v1)
            """,
            label=f"{self.name}:setup",
        ).rowcount

    def _round_guard(self, rounds: int, n_hint: int, limit_factor: float = 12.0,
                     hard_limit: Optional[int] = None) -> None:
        """Abort clearly if an algorithm loops far beyond its round bound."""
        if hard_limit is not None:
            if rounds > hard_limit:
                raise RuntimeError(
                    f"{self.name} exceeded its round limit ({hard_limit})"
                )
            return
        bound = limit_factor * (math.log2(max(n_hint, 2)) + 2) + 8
        if rounds > bound:
            raise RuntimeError(
                f"{self.name} ran {rounds} rounds, beyond the expected "
                f"O(log n) bound (~{bound:.0f}) — aborting a likely "
                "non-terminating run"
            )
