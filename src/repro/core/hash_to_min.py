"""Hash-to-Min (Rastogi et al., ICDE 2013), ported to SQL.

The best-performing MapReduce algorithm of the paper's related work
(Section II, Table I): each vertex v maintains a cluster C(v), initialised
to its closed neighbourhood.  Per round, with m = min C(v):

* the whole cluster is sent to m           -> pairs (m, u) for u in C(v);
* m is sent to every member of the cluster -> pairs (u, m) for u in C(v).

The new C(v) is the union of everything received.  At convergence, C(m) of
a component's minimum vertex m holds the entire component and every other
vertex holds exactly {m}; ``min(u)`` per vertex is then the component label.

The port follows the paper's methodology (Section VII): "a 'map' using
key-value messages was converted to the creation of a temporary database
table distributed by the key, and the subsequent 'reduce' was implemented
as an aggregate function applied on that table".

The known weakness reproduced here: worst-case space O(|V|^2) — a path
graph makes the minimum's cluster grow by doubling, so under the bench's
space budget Hash-to-Min DNFs on the larger and path-shaped datasets
exactly as in the paper's Table III ("Hash-to-Min did not finish").
"""

from __future__ import annotations

import random

from ..sqlengine import Database
from .base import SQLConnectedComponents


class HashToMin(SQLConnectedComponents):
    """The Hash-to-Min algorithm on cluster-membership pair tables."""

    name = "hash-to-min"

    def _execute(self, db: Database, edges_table: str, result_table: str,
                 rng: random.Random):
        p = self.prefix
        # C(v) = N[v]: both edge directions plus v itself (covers loops).
        db.execute(
            f"""
            create table {p}c as
            select distinct v, u from (
                select v1 as v, v2 as u from {edges_table}
                union all
                select v2 as v, v1 as u from {edges_table}
                union all
                select v1 as v, v1 as u from {edges_table}
                union all
                select v2 as v, v2 as u from {edges_table}
            ) as q
            distributed by (v)
            """,
            label=f"{self.name}:init",
        )
        n_hint = max(db.table(f"{p}c").n_rows, 2)
        previous_size = db.table(f"{p}c").n_rows
        rounds = 0
        while True:
            rounds += 1
            self._round_guard(rounds, n_hint)
            db.execute(
                f"""
                create table {p}m as
                select v, min(u) as m from {p}c group by v
                distributed by (v)
                """,
                label=f"{self.name}:min",
            )
            new_size = db.execute(
                f"""
                create table {p}cnew as
                select distinct v, u from (
                    select m.m as v, c.u as u
                    from {p}c as c, {p}m as m where c.v = m.v
                    union all
                    select c.u as v, m.m as u
                    from {p}c as c, {p}m as m where c.v = m.v
                ) as q
                distributed by (v)
                """,
                label=f"{self.name}:exchange",
            ).rowcount
            if new_size == previous_size:
                changed = db.execute(
                    f"""
                    select count(*) from {p}cnew as n
                    left outer join {p}c as c on (n.v = c.v and n.u = c.u)
                    where c.v is null
                    """,
                    label=f"{self.name}:converged?",
                ).scalar()
            else:
                changed = 1
            db.execute(f"drop table {p}c, {p}m")
            db.execute(f"alter table {p}cnew rename to {p}c")
            previous_size = new_size
            if changed == 0:
                break
        db.execute(
            f"""
            create table {result_table} as
            select v, min(u) as rep from {p}c group by v
            distributed by (v)
            """,
            label=f"{self.name}:labels",
        )
        db.execute(f"drop table {p}c")
        return rounds, {}
