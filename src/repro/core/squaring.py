"""The graph-squaring approach of Section IV — the quadratic blow-up demo.

Section IV's second naive idea: repeatedly compute G^2 (add an edge (x, z)
whenever (x, y) and (y, z) are edges) via an SQL self-join, reaching
radius-2^n neighbourhoods in n steps.  It converges in O(log diameter)
rounds — but "the result is ultimately the complete graph with |V|^2
edges", which is why the paper rejects it.  This implementation exists to
*measure* that blow-up (experiment E-G2): it reports the edge-table size of
every round, and under a space budget it DNFs exactly as predicted.
"""

from __future__ import annotations

import random

from ..sqlengine import Database
from .base import SQLConnectedComponents


class GraphSquaringCC(SQLConnectedComponents):
    """Repeated squaring to the transitive closure, then min-labelling."""

    name = "graph-squaring"

    def __init__(self, table_prefix: str = "cc", max_rounds: int = 64):
        super().__init__(table_prefix)
        self.max_rounds = max_rounds

    def _execute(self, db: Database, edges_table: str, result_table: str,
                 rng: random.Random):
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        db.execute(
            f"create table {p}d as select distinct v1, v2 from {p}e "
            f"distributed by (v1)",
            label=f"{self.name}:dedup",
        )
        db.execute(f"drop table {p}e")
        db.execute(f"alter table {p}d rename to {p}e")
        edge_counts = [db.table(f"{p}e").n_rows]
        rounds = 0
        while True:
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError(f"{self.name} exceeded {self.max_rounds} rounds")
            n_edges = db.execute(
                f"""
                create table {p}sq as
                select distinct v1, v2 from (
                    select v1, v2 from {p}e
                    union all
                    select a.v1 as v1, b.v2 as v2
                    from {p}e as a, {p}e as b
                    where a.v2 = b.v1 and a.v1 != b.v2
                ) as q
                distributed by (v1)
                """,
                label=f"{self.name}:square",
            ).rowcount
            previous = db.table(f"{p}e").n_rows
            db.execute(f"drop table {p}e")
            db.execute(f"alter table {p}sq rename to {p}e")
            edge_counts.append(n_edges)
            if n_edges == previous:
                break
        db.execute(
            f"""
            create table {result_table} as
            select v1 as v, least(v1, min(v2)) as rep
            from {p}e
            group by v1
            distributed by (v)
            """,
            label=f"{self.name}:labels",
        )
        db.execute(f"drop table {p}e")
        return rounds, {"edge_counts": edge_counts}
