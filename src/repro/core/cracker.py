"""Cracker (Lulli et al., IEEE TPDS 2017), ported to SQL.

The Spark-based competitor of the paper's Table I: per iteration every
vertex learns the minimum of its closed neighbourhood, vertices that are
nobody's minimum are *pruned* from the graph (and attached to a seed
candidate in a propagation forest), and the surviving candidates are
re-linked.  When the graph runs out of edges, each component has exactly
one surviving root, and labels propagate root-to-leaf down the forest.

Per round, with H(v) = the set of candidate minima vertex v heard about
(every u tells all of N[u] ∪ {u} the value m(u) = min(N[u] ∪ {u})):

* seeds       = vertices that are someone's minimum (appear as some m(u));
* pruning     = every non-seed v leaves the graph; the forest gains the
                edge (min H(v) -> v);
* re-linking  = the next graph connects min H(v) to every other candidate
                in H(v), preserving component connectivity among seeds.

This is the "vertex pruning" idea that gives Cracker its O(log |V|) round
bound at the price of the O(|V|·|E| / log |V|) communication the paper's
Table I quotes.  The final propagation phase walks the forest depth by
depth, O(log |V|) joins in expectation.
"""

from __future__ import annotations

import random

from ..sqlengine import Database
from .base import SQLConnectedComponents


class Cracker(SQLConnectedComponents):
    """The Cracker pruning + propagation algorithm."""

    name = "cracker"

    def _execute(self, db: Database, edges_table: str, result_table: str,
                 rng: random.Random):
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}raw")
        db.execute(
            f"create table {p}verts as select distinct v1 as v from {p}raw "
            f"distributed by (v)",
            label=f"{self.name}:vertices",
        )
        db.execute(
            f"""
            create table {p}g as
            select distinct v1, v2 from {p}raw where v1 != v2
            distributed by (v1)
            """,
            label=f"{self.name}:dedup",
        )
        db.execute(f"drop table {p}raw")
        db.execute(
            f"create table {p}tree (parent int, child int) distributed by (child)"
        )
        n_hint = max(db.table(f"{p}verts").n_rows, 2)
        rounds = 0
        while db.table(f"{p}g").n_rows > 0:
            rounds += 1
            self._round_guard(rounds, n_hint)
            # Minimum of each closed neighbourhood.
            db.execute(
                f"""
                create table {p}vmin as
                select v1 as u, least(v1, min(v2)) as m
                from {p}g
                group by v1
                distributed by (u)
                """,
                label=f"{self.name}:min-selection",
            )
            # H: candidate minima each vertex hears about.
            db.execute(
                f"""
                create table {p}h as
                select distinct v, m from (
                    select e.v2 as v, m.m as m
                    from {p}g as e, {p}vmin as m where e.v1 = m.u
                    union all
                    select u as v, m from {p}vmin
                ) as q
                distributed by (v)
                """,
                label=f"{self.name}:candidates",
            )
            db.execute(
                f"""
                create table {p}hmin as
                select v, min(m) as mm from {p}h group by v
                distributed by (v)
                """,
                label=f"{self.name}:candidate-min",
            )
            db.execute(
                f"create table {p}seeds as select distinct m as v from {p}h "
                f"distributed by (v)",
                label=f"{self.name}:seeds",
            )
            # Prune non-seeds into the propagation forest.
            db.execute(
                f"""
                insert into {p}tree
                select h.mm as parent, h.v as child
                from {p}hmin as h
                left outer join {p}seeds as s on (h.v = s.v)
                where s.v is null
                """,
                label=f"{self.name}:prune",
            )
            # Re-link surviving candidates around each local minimum.
            db.execute(
                f"""
                create table {p}gdir as
                select distinct h.mm as v1, c.m as v2
                from {p}hmin as h, {p}h as c
                where h.v = c.v and c.m != h.mm
                distributed by (v1)
                """,
                label=f"{self.name}:relink",
            )
            db.execute(f"drop table {p}g")
            db.execute(
                f"""
                create table {p}g as
                select distinct v1, v2 from (
                    select v1, v2 from {p}gdir
                    union all
                    select v2 as v1, v1 as v2 from {p}gdir
                ) as q
                distributed by (v1)
                """,
                label=f"{self.name}:symmetrise",
            )
            db.execute(f"drop table {p}vmin, {p}h, {p}hmin, {p}seeds, {p}gdir")

        # Propagation: roots are vertices never pruned.
        db.execute(
            f"""
            create table {p}lab as
            select vs.v as v, vs.v as rep
            from {p}verts as vs
            left outer join {p}tree as t on (vs.v = t.child)
            where t.child is null
            distributed by (v)
            """,
            label=f"{self.name}:roots",
        )
        depth = 0
        while True:
            depth += 1
            self._round_guard(depth, n_hint)
            added = db.execute(
                f"""
                insert into {p}lab
                select t.child as v, l.rep as rep
                from {p}tree as t
                inner join {p}lab as l on (t.parent = l.v)
                left outer join {p}lab as done on (t.child = done.v)
                where done.v is null
                """,
                label=f"{self.name}:propagate",
            ).rowcount
            if added == 0:
                break
        db.execute(f"alter table {p}lab rename to {result_table}")
        db.execute(f"drop table {p}tree, {p}verts, {p}g")
        return rounds, {"propagation_depth": depth}
