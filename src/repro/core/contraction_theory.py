"""Contraction-factor theory: Theorem 1, Lemma 1 and Appendix B.

The paper's performance analysis rests on one quantity: the expected
fraction gamma of vertices that survive one contraction round.  Section VI
proves gamma <= 3/4 for the random-reals and finite-fields methods;
Appendix B sharpens this to gamma <= 2/3 under full randomisation (uniform
random vertex orderings), a bound that is tight for the directed 3-cycle.

This module provides the machinery to *measure* those statements:

* :func:`exact_expected_gamma` — exact expectation by enumerating all |V|!
  orderings (small graphs), for undirected or directed inputs;
* :func:`monte_carlo_gamma` — estimates gamma on real graphs under any of
  the implemented randomisation methods;
* :func:`type_census` / :func:`lemma1_counts` — the type-0/1/2+ vertex
  classification behind Lemma 1, with the exact per-vertex counting that
  the lemma's injection argument is about.

Figure 9's record-gamma graph (gamma = 81215/144144) is only depicted as an
image in the paper, so its exact adjacency is not recoverable; the
enumeration machinery here reproduces every bound that is stated in text
(directed 3-cycle = 2/3, Theorem 1's 3/4, Theorem 2's 2/3).
"""

from __future__ import annotations

import itertools
import math
import random
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from ..ff.permutation import RandomisationMethod, get_method
from ..graphs.edgelist import EdgeList


def _closed_out_neighbourhoods(
    n: int, arcs: Iterable[tuple[int, int]]
) -> list[list[int]]:
    """N+[v] for vertices 0..n-1 given arcs (directed edges)."""
    neighbourhoods: list[set[int]] = [{v} for v in range(n)]
    for a, b in arcs:
        neighbourhoods[a].add(b)
    return [sorted(s) for s in neighbourhoods]


def representatives_under_labelling(
    neighbourhoods: Sequence[Sequence[int]], label: Sequence[int]
) -> set[int]:
    """{r(v)} for all v, where r(v) = argmin_{w in N+[v]} label[w]."""
    chosen = set()
    for out in neighbourhoods:
        best = min(out, key=lambda w: label[w])
        chosen.add(best)
    return chosen


def exact_expected_gamma(
    n: int,
    edges: Iterable[tuple[int, int]],
    directed: bool = False,
) -> Fraction:
    """Exact E[#representatives] / n over all n! labellings.

    Vertices are 0..n-1.  For undirected graphs each edge contributes both
    arcs (the Appendix-B convention).  Every vertex must have a non-empty
    out-neighbourhood for the directed case (Theorem 2's hypothesis); for
    undirected graphs the closed neighbourhood always includes v itself so
    the function is total either way.  Practical up to n ~ 9.
    """
    if n < 1:
        raise ValueError("need at least one vertex")
    if n > 10:
        raise ValueError("exact enumeration is factorial; use monte_carlo_gamma")
    arc_list = list(edges)
    if not directed:
        arc_list = arc_list + [(b, a) for a, b in arc_list]
    neighbourhoods = _closed_out_neighbourhoods(n, arc_list)
    total = 0
    count = 0
    for permutation in itertools.permutations(range(n)):
        total += len(representatives_under_labelling(neighbourhoods, permutation))
        count += 1
    return Fraction(total, count * n)


def directed_three_cycle_gamma() -> Fraction:
    """Gamma of the directed 3-cycle — Appendix B's tight case (= 2/3)."""
    return exact_expected_gamma(3, [(0, 1), (1, 2), (2, 0)], directed=True)


def type_census(
    neighbourhoods: Sequence[Sequence[int]], label: Sequence[int]
) -> tuple[int, int, int]:
    """(type0, type1, type2+) counts under one labelling (Appendix B).

    Type 0: the vertex represents nobody; type 1: exactly one vertex;
    type 2+: two or more.
    """
    times_chosen = [0] * len(neighbourhoods)
    for out in neighbourhoods:
        best = min(out, key=lambda w: label[w])
        times_chosen[best] += 1
    type0 = sum(1 for c in times_chosen if c == 0)
    type1 = sum(1 for c in times_chosen if c == 1)
    type2 = sum(1 for c in times_chosen if c >= 2)
    return type0, type1, type2


def lemma1_counts(
    n: int,
    arcs: Iterable[tuple[int, int]],
    vertex: int,
) -> tuple[int, int]:
    """(#labellings where ``vertex`` is type 1, #labellings where type 0).

    Lemma 1 states the first is <= the second for any directed graph where
    the vertex has a non-empty out-neighbourhood.  Exact enumeration; small
    n only.
    """
    neighbourhoods = _closed_out_neighbourhoods(n, list(arcs))
    if len(neighbourhoods[vertex]) <= 1:
        raise ValueError("Lemma 1 requires N+(v) to be non-empty")
    type1 = 0
    type0 = 0
    for permutation in itertools.permutations(range(n)):
        times = 0
        for out in neighbourhoods:
            best = min(out, key=lambda w: permutation[w])
            if best == vertex:
                times += 1
                if times > 1:
                    break
        if times == 0:
            type0 += 1
        elif times == 1:
            type1 += 1
    return type1, type0


def one_round_surviving_fraction(
    edges: EdgeList,
    method: RandomisationMethod | str,
    rng: random.Random,
) -> float:
    """Fraction of vertices chosen as representatives in one round.

    Applies one draw of the given randomisation method to the (doubled)
    edge list and counts distinct representatives, exactly what one
    contraction round of the algorithm keeps.  Isolated vertices are absent
    by construction (every listed vertex has an edge), matching the
    theorem's setting.
    """
    if isinstance(method, str):
        method = get_method(method)
    vertices = edges.vertices()
    n = vertices.shape[0]
    if n == 0:
        raise ValueError("empty graph")
    round_fn = method.new_round(rng)
    h_all = np.asarray(round_fn.apply(vertices.astype(np.uint64)))
    # Position-indexed h values; minimise over closed neighbourhoods.
    position = {int(v): i for i, v in enumerate(vertices.tolist())}
    src_idx = np.array([position[int(v)] for v in edges.src.tolist()])
    dst_idx = np.array([position[int(v)] for v in edges.dst.tolist()])
    best = h_all.copy()
    np.minimum.at(best, src_idx, h_all[dst_idx])
    np.minimum.at(best, dst_idx, h_all[src_idx])
    return float(np.unique(best).shape[0] / n)


def monte_carlo_gamma(
    edges: EdgeList,
    method: RandomisationMethod | str = "finite-fields",
    rounds: int = 32,
    seed: int = 0,
) -> tuple[float, float]:
    """(mean, standard error) of the one-round surviving fraction."""
    rng = random.Random(seed)
    samples = [
        one_round_surviving_fraction(edges, method, rng) for _ in range(rounds)
    ]
    mean = float(np.mean(samples))
    stderr = float(np.std(samples, ddof=1) / math.sqrt(len(samples))) \
        if len(samples) > 1 else 0.0
    return mean, stderr


def theorem1_bound() -> Fraction:
    """The Section VI bound on gamma: 3/4."""
    return Fraction(3, 4)


def appendix_b_bound() -> Fraction:
    """The full-randomisation bound on gamma: 2/3."""
    return Fraction(2, 3)
