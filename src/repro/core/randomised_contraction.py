"""Randomised Contraction — the paper's algorithm (Section V).

Per round, every vertex picks the member of its closed neighbourhood that
minimises a fresh random bijection ``h_i`` of the vertex IDs; the graph is
contracted to the chosen representatives; duplicate and loop edges are
dropped; the loop repeats until the edge table is empty.  The composition
of the per-round representative maps labels every vertex with its
component.

Three interchangeable implementations, selected by the randomisation
method's strategy and the ``variant`` argument:

``variant="fast"`` (Figure 4 / Appendix A; pointwise *affine* methods)
    The headline configuration.  Per-round representative tables ``R_i``
    are kept and composed back-to-front after the contraction loop, with
    the relabelling of skipped rounds collapsed into one accumulated affine
    pair ``(A, B)`` — possible precisely because finite-field rounds are
    affine.  Space is linear in expectation.

``variant="deterministic-space"`` (Figure 3; any pointwise method)
    Composes the representative map into a full-size table ``L`` each
    round: ``L := coalesce(R∘L, h_i∘L)``.  Works for non-affine bijections
    (Blowfish), and bounds space deterministically.

table-strategy methods (random reals)
    The paper's "random reals" method: a per-vertex random table is
    materialised each round and joined against; representatives are actual
    vertex IDs (argmin), so composition is the plain ``coalesce(R∘L, L)``.
    This achieves full randomisation (a uniform random permutation — we
    realise it exactly, as integer ranks of random reals) at the cost of
    shipping the random table across the cluster, which the engine's
    motion accounting makes visible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

import numpy as np

from ..ff.permutation import (
    POINTWISE,
    TABLE,
    FiniteFieldMethod,
    PointwiseRound,
    RandomisationMethod,
    get_method,
)
from ..sqlengine import Database
from ..sqlengine.errors import ExecutionError
from .base import SQLConnectedComponents
from .udfs import register_udfs


class _OverlappedComposer:
    """Runs per-round composition statements off the critical path.

    The looping variants (Figure 3 / table-strategy) compose the label
    table ``L`` with round *i*'s representatives while round *i+1* only
    needs the contracted edge table — the two statement groups touch
    disjoint tables and distinct SQL templates.  When the database has a
    multi-worker :class:`~repro.sqlengine.mpp.SegmentPool`, the composition
    is submitted to it and the driving thread proceeds straight into the
    next contraction; compositions stay mutually ordered (at most one in
    flight), so the label table's contents — and the final labels — are
    bit-identical to the serial schedule.  Without a pool (or with a
    single worker) everything runs inline, unchanged.

    Overlap trades peak space for wall clock: round *i*'s label/reps/
    scratch tables are briefly live alongside round *i+1*'s edge/reps
    tables, a set the serial schedule never holds at once.  Under a space
    budget (the bench harness's Table III/IV DNF machinery) that would
    make budget violations timing-dependent, so a budgeted database always
    composes inline — its peak-space profile stays the serial one.
    """

    def __init__(self, db: Database):
        pool = getattr(db, "pool", None)
        self._db = db
        budgeted = db.stats.space_budget_bytes is not None
        self._pool = (
            pool if pool is not None and pool.n_workers > 1 and not budgeted
            else None
        )
        self._future = None

    def submit(self, compose: Callable[[], None]) -> None:
        """Run one round's composition, overlapped when the pool allows.

        Waits for the previous composition first: ``L`` is both an input
        and the output of every composition, so two can never overlap each
        other — only the foreground contraction.
        """
        self.wait()
        if self._pool is None:
            compose()
            return
        self._db.stats.record_overlapped_composition()
        self._future = self._pool.submit(compose)

    def wait(self) -> None:
        """Drain the in-flight composition, re-raising its error, if any."""
        if self._future is not None:
            future, self._future = self._future, None
            future.result()

    def drain(self) -> None:
        """Best-effort wait for error paths (the original error wins)."""
        try:
            self.wait()
        except Exception:
            pass


class RandomisedContraction(SQLConnectedComponents):
    """The paper's Randomised Contraction algorithm.

    Parameters
    ----------
    method:
        A :class:`~repro.ff.permutation.RandomisationMethod` or its registry
        name: ``"finite-fields"`` (default, the paper's recommendation),
        ``"prime-field"``, ``"encryption"``, ``"random-reals"``, or
        ``"identity"`` (no randomisation; exhibits the Figure 2 worst case).
    variant:
        ``"fast"`` (Figure 4, default) or ``"deterministic-space"``
        (Figure 3).  ``"fast"`` requires an affine pointwise method and
        falls back with a clear error otherwise.
    max_rounds:
        Safety bound on contraction rounds; ``None`` derives a generous
        O(log |V|) bound automatically (the identity method is exempted,
        since its worst case is deliberately linear).
    """

    name = "randomised-contraction"

    def __init__(
        self,
        method: RandomisationMethod | str = "finite-fields",
        variant: str = "fast",
        table_prefix: str = "cc",
        max_rounds: Optional[int] = None,
    ):
        super().__init__(table_prefix)
        if isinstance(method, str):
            method = get_method(method)
        if variant not in ("fast", "deterministic-space"):
            raise ValueError(f"unknown variant {variant!r}")
        if variant == "fast":
            if method.strategy != POINTWISE:
                raise ValueError(
                    f"the fast (Figure 4) variant needs a pointwise method; "
                    f"{method.name!r} requires per-vertex tables — use "
                    f"variant='deterministic-space'"
                )
            if not hasattr(method, "affine_sql"):
                raise ValueError(
                    f"the fast (Figure 4) variant composes affine relabellings; "
                    f"method {method.name!r} is not affine — use "
                    f"variant='deterministic-space'"
                )
        self.method = method
        self.variant = variant
        self.max_rounds = max_rounds
        self.name = f"randomised-contraction[{method.name},{variant}]" \
            if (method.name, variant) != ("finite-fields", "fast") \
            else "randomised-contraction"

    # ------------------------------------------------------------------

    def _execute(self, db, edges_table, result_table, rng):
        register_udfs(db)
        n_hint = max(db.table(edges_table).n_rows, 2)
        if self.method.strategy == TABLE:
            rounds = self._run_table_strategy(db, edges_table, result_table, rng,
                                              n_hint)
        elif self.variant == "fast":
            rounds = self._run_fast(db, edges_table, result_table, rng, n_hint)
        else:
            rounds = self._run_deterministic_space(db, edges_table, result_table,
                                                   rng, n_hint)
        return rounds, {"method": self.method.name, "variant": self.variant}

    def _check_rounds(self, rounds: int, n_hint: int) -> None:
        if self.method.name == "identity":
            return  # deliberately unbounded: the worst-case demonstration
        self._round_guard(rounds, n_hint, hard_limit=self.max_rounds)

    # ------------------------------------------------------------------
    # Figure 4 / Appendix A: the fast variant
    # ------------------------------------------------------------------

    def _run_fast(self, db: Database, edges_table: str, result_table: str,
                  rng: random.Random, n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}graph")
        round_no = 0
        stack: list[PointwiseRound] = []
        while True:
            round_no += 1
            self._check_rounds(round_no, n_hint)
            h = self.method.new_round(rng)
            stack.append(h)
            reps = f"{p}reps{round_no}"
            db.execute(
                f"""
                create table {reps} as
                select v1 v,
                       least({h.sql_expr('v1')}, min({h.sql_expr('v2')})) rep
                from {p}graph
                group by v1
                distributed by (v)
                """,
                label=f"{self.name}:reps",
            )
            db.execute(
                f"""
                create table {p}graph2 as
                select r1.rep as v1, v2
                from {p}graph, {reps} as r1
                where {p}graph.v1 = r1.v
                distributed by (v2)
                """,
                label=f"{self.name}:relabel-src",
            )
            db.execute(f"drop table {p}graph")
            graph_size = db.execute(
                f"""
                create table {p}graph3 as
                select distinct v1, r2.rep as v2
                from {p}graph2, {reps} as r2
                where {p}graph2.v2 = r2.v
                  and v1 != r2.rep
                distributed by (v1)
                """,
                label=f"{self.name}:contract",
            ).rowcount
            db.execute(f"drop table {p}graph2")
            db.execute(f"alter table {p}graph3 rename to {p}graph")
            if graph_size == 0:
                break
        total_rounds = round_no

        # Back-to-front composition with an accumulated affine relabelling,
        # exactly the second loop of Figure 4 / Appendix A.
        field = stack[-1].affine[2]
        acc_a, acc_b = field.one, field.zero
        while True:
            a_i, b_i, field = stack.pop().affine
            acc_a, acc_b = (
                field.mul(acc_a, a_i),
                field.add(field.mul(acc_a, b_i), acc_b),
            )
            round_no -= 1
            if round_no == 0:
                break
            acc_sql = self.method.affine_sql(acc_a, acc_b, "r1.rep")
            db.execute(
                f"""
                create table {p}tmp as
                select r1.v as v, coalesce(r2.rep, {acc_sql}) as rep
                from {p}reps{round_no} as r1
                left outer join {p}reps{round_no + 1} as r2
                  on (r1.rep = r2.v)
                distributed by (v)
                """,
                label=f"{self.name}:compose",
            )
            db.execute(f"drop table {p}reps{round_no}, {p}reps{round_no + 1}")
            db.execute(f"alter table {p}tmp rename to {p}reps{round_no}")
        db.execute(f"alter table {p}reps1 rename to {result_table}")
        db.execute(f"drop table {p}graph")
        return total_rounds

    # ------------------------------------------------------------------
    # Figure 3: deterministic space
    # ------------------------------------------------------------------

    def _run_deterministic_space(self, db: Database, edges_table: str,
                                 result_table: str, rng: random.Random,
                                 n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        composer = _OverlappedComposer(db)
        first_round = True
        rounds = 0
        try:
            while True:
                rounds += 1
                self._check_rounds(rounds, n_hint)
                h = self.method.new_round(rng)
                # Per-round representative table names decouple round i's
                # composition (background) from round i+1's contraction
                # (foreground): the two statement groups touch disjoint
                # tables, so they can overlap on the segment pool.
                reps = f"{p}r{rounds}"
                db.execute(
                    f"""
                    create table {reps} as
                    select v1 v,
                           least({h.sql_expr('v1')}, min({h.sql_expr('v2')})) rep
                    from {p}e
                    group by v1
                    distributed by (v)
                    """,
                    label=f"{self.name}:reps",
                )
                row_count = db.execute(
                    f"""
                    create table {p}t as
                    select distinct rv.rep as v1, rw.rep as v2
                    from {p}e, {reps} as rv, {reps} as rw
                    where {p}e.v1 = rv.v and {p}e.v2 = rw.v
                      and rv.rep != rw.rep
                    distributed by (v1)
                    """,
                    label=f"{self.name}:contract",
                ).rowcount
                db.execute(f"drop table {p}e")
                db.execute(f"alter table {p}t rename to {p}e")
                if first_round:
                    first_round = False
                    db.execute(f"alter table {reps} rename to {p}l")
                else:
                    composer.submit(
                        self._compose_statements(db, reps, h.sql_expr("l.rep"))
                    )
                if row_count == 0:
                    break
            composer.wait()
        except BaseException:
            composer.drain()
            raise
        db.execute(f"alter table {p}l rename to {result_table}")
        db.execute(f"drop table {p}e")
        return rounds

    def _compose_statements(
        self, db: Database, reps: str, rep_sql: str
    ) -> Callable[[], None]:
        """One round's composition ``L := coalesce(R∘L, h_i∘L)`` as a
        closure the composer can run inline or on the pool.  Uses its own
        scratch table name (``{p}c``) so it never collides with the
        foreground round's ``{p}t``."""
        p = self.prefix

        def compose() -> None:
            db.execute(
                f"""
                create table {p}c as
                select l.v as v,
                       coalesce(r.rep, {rep_sql}) as rep
                from {p}l as l
                left outer join {reps} as r on (l.rep = r.v)
                distributed by (v)
                """,
                label=f"{self.name}:compose",
            )
            db.execute(f"drop table {p}l, {reps}")
            db.execute(f"alter table {p}c rename to {p}l")

        return compose

    # ------------------------------------------------------------------
    # Table-strategy methods (random reals): argmin representatives
    # ------------------------------------------------------------------

    def _run_table_strategy(self, db: Database, edges_table: str,
                            result_table: str, rng: random.Random,
                            n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        np_rng = np.random.default_rng(rng.getrandbits(63))
        composer = _OverlappedComposer(db)
        first_round = True
        rounds = 0
        try:
            while True:
                rounds += 1
                self._check_rounds(rounds, n_hint)
                vertices = np.unique(db.table(f"{p}e").column("v1").values)
                if vertices.shape[0] == 0:
                    # Degenerate input (empty edge table): nothing to do.
                    if first_round:
                        db.execute(f"create table {result_table} (v int, r int)")
                    break
                # A uniformly random permutation, realised as the ranks of
                # i.i.d. random reals (this is the "random reals method"
                # with exact tie-free ordering).
                ranks = np.empty(vertices.shape[0], dtype=np.int64)
                ranks[np_rng.permutation(vertices.shape[0])] = np.arange(
                    vertices.shape[0], dtype=np.int64
                )
                db.load_table(f"{p}rand", {"v": vertices, "h": ranks},
                              distributed_by="v")
                # The random table must reach every segment (the paper's
                # noted disadvantage of this method).
                db.stats.record_broadcast(
                    db.table(f"{p}rand").byte_size(), db.cluster.n_segments
                )
                reps = f"{p}r{rounds}"
                db.execute(
                    f"""
                    create table {p}nmin as
                    select e.v1 as v, min(h2.h) as hmin
                    from {p}e as e, {p}rand as h2
                    where e.v2 = h2.v
                    group by e.v1
                    distributed by (v)
                    """,
                    label=f"{self.name}:neigh-min",
                )
                db.execute(
                    f"""
                    create table {p}cmin as
                    select m.v as v, least(m.hmin, hv.h) as hmin
                    from {p}nmin as m, {p}rand as hv
                    where m.v = hv.v
                    distributed by (v)
                    """,
                    label=f"{self.name}:closed-min",
                )
                db.execute(
                    f"""
                    create table {reps} as
                    select mc.v as v, h3.v as rep
                    from {p}cmin as mc, {p}rand as h3
                    where mc.hmin = h3.h
                    distributed by (v)
                    """,
                    label=f"{self.name}:argmin",
                )
                row_count = db.execute(
                    f"""
                    create table {p}t as
                    select distinct rv.rep as v1, rw.rep as v2
                    from {p}e, {reps} as rv, {reps} as rw
                    where {p}e.v1 = rv.v and {p}e.v2 = rw.v
                      and rv.rep != rw.rep
                    distributed by (v1)
                    """,
                    label=f"{self.name}:contract",
                ).rowcount
                db.execute(f"drop table {p}e")
                db.execute(f"alter table {p}t rename to {p}e")
                if first_round:
                    first_round = False
                    db.execute(f"alter table {reps} rename to {p}l")
                else:
                    composer.submit(
                        self._compose_statements(db, reps, "l.rep")
                    )
                db.execute(f"drop table {p}rand, {p}nmin, {p}cmin")
                if row_count == 0:
                    break
            composer.wait()
        except BaseException:
            composer.drain()
            raise
        if not first_round:
            db.execute(f"alter table {p}l rename to {result_table}")
        db.drop_table(f"{p}e", if_exists=True)
        return rounds
