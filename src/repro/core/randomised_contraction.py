"""Randomised Contraction — the paper's algorithm (Section V).

Per round, every vertex picks the member of its closed neighbourhood that
minimises a fresh random bijection ``h_i`` of the vertex IDs; the graph is
contracted to the chosen representatives; duplicate and loop edges are
dropped; the loop repeats until the edge table is empty.  The composition
of the per-round representative maps labels every vertex with its
component.

Three interchangeable implementations, selected by the randomisation
method's strategy and the ``variant`` argument:

``variant="fast"`` (Figure 4 / Appendix A; pointwise *affine* methods)
    The headline configuration.  Per-round representative tables ``R_i``
    are kept and composed back-to-front after the contraction loop, with
    the relabelling of skipped rounds collapsed into one accumulated affine
    pair ``(A, B)`` — possible precisely because finite-field rounds are
    affine.  Space is linear in expectation.

``variant="deterministic-space"`` (Figure 3; any pointwise method)
    Composes the representative map into a full-size table ``L`` each
    round: ``L := coalesce(R∘L, h_i∘L)``.  Works for non-affine bijections
    (Blowfish), and bounds space deterministically.

table-strategy methods (random reals)
    The paper's "random reals" method: a per-vertex random table is
    materialised each round and joined against; representatives are actual
    vertex IDs (argmin), so composition is the plain ``coalesce(R∘L, L)``.
    This achieves full randomisation (a uniform random permutation — we
    realise it exactly, as integer ranks of random reals) at the cost of
    shipping the random table across the cluster, which the engine's
    motion accounting makes visible.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from ..ff.permutation import (
    POINTWISE,
    TABLE,
    FiniteFieldMethod,
    PointwiseRound,
    RandomisationMethod,
    get_method,
)
from ..sqlengine import Database
from ..sqlengine.errors import ExecutionError
from .base import SQLConnectedComponents
from .dataflow import DataflowScheduler
from .udfs import register_udfs


class RandomisedContraction(SQLConnectedComponents):
    """The paper's Randomised Contraction algorithm.

    Parameters
    ----------
    method:
        A :class:`~repro.ff.permutation.RandomisationMethod` or its registry
        name: ``"finite-fields"`` (default, the paper's recommendation),
        ``"prime-field"``, ``"encryption"``, ``"random-reals"``, or
        ``"identity"`` (no randomisation; exhibits the Figure 2 worst case).
    variant:
        ``"fast"`` (Figure 4, default) or ``"deterministic-space"``
        (Figure 3).  ``"fast"`` requires an affine pointwise method and
        falls back with a clear error otherwise.
    max_rounds:
        Safety bound on contraction rounds; ``None`` derives a generous
        O(log |V|) bound automatically (the identity method is exempted,
        since its worst case is deliberately linear).
    """

    name = "randomised-contraction"

    def __init__(
        self,
        method: RandomisationMethod | str = "finite-fields",
        variant: str = "fast",
        table_prefix: str = "cc",
        max_rounds: Optional[int] = None,
    ):
        super().__init__(table_prefix)
        if isinstance(method, str):
            method = get_method(method)
        if variant not in ("fast", "deterministic-space"):
            raise ValueError(f"unknown variant {variant!r}")
        if variant == "fast":
            if method.strategy != POINTWISE:
                raise ValueError(
                    f"the fast (Figure 4) variant needs a pointwise method; "
                    f"{method.name!r} requires per-vertex tables — use "
                    f"variant='deterministic-space'"
                )
            if not hasattr(method, "affine_sql"):
                raise ValueError(
                    f"the fast (Figure 4) variant composes affine relabellings; "
                    f"method {method.name!r} is not affine — use "
                    f"variant='deterministic-space'"
                )
        self.method = method
        self.variant = variant
        self.max_rounds = max_rounds
        self.name = f"randomised-contraction[{method.name},{variant}]" \
            if (method.name, variant) != ("finite-fields", "fast") \
            else "randomised-contraction"

    # ------------------------------------------------------------------

    def _execute(self, db, edges_table, result_table, rng):
        register_udfs(db)
        n_hint = max(db.table(edges_table).n_rows, 2)
        if self.method.strategy == TABLE:
            rounds = self._run_table_strategy(db, edges_table, result_table, rng,
                                              n_hint)
        elif self.variant == "fast":
            rounds = self._run_fast(db, edges_table, result_table, rng, n_hint)
        else:
            rounds = self._run_deterministic_space(db, edges_table, result_table,
                                                   rng, n_hint)
        return rounds, {"method": self.method.name, "variant": self.variant}

    def _check_rounds(self, rounds: int, n_hint: int) -> None:
        if self.method.name == "identity":
            return  # deliberately unbounded: the worst-case demonstration
        self._round_guard(rounds, n_hint, hard_limit=self.max_rounds)

    # ------------------------------------------------------------------
    # Figure 4 / Appendix A: the fast variant
    # ------------------------------------------------------------------

    def _run_fast(self, db: Database, edges_table: str, result_table: str,
                  rng: random.Random, n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}graph")
        round_no = 0
        stack: list[PointwiseRound] = []
        while True:
            round_no += 1
            self._check_rounds(round_no, n_hint)
            h = self.method.new_round(rng)
            stack.append(h)
            reps = f"{p}reps{round_no}"
            db.execute(
                f"""
                create table {reps} as
                select v1 v,
                       least({h.sql_expr('v1')}, min({h.sql_expr('v2')})) rep
                from {p}graph
                group by v1
                distributed by (v)
                """,
                label=f"{self.name}:reps",
            )
            db.execute(
                f"""
                create table {p}graph2 as
                select r1.rep as v1, v2
                from {p}graph, {reps} as r1
                where {p}graph.v1 = r1.v
                distributed by (v2)
                """,
                label=f"{self.name}:relabel-src",
            )
            db.execute(f"drop table {p}graph")
            graph_size = db.execute(
                f"""
                create table {p}graph3 as
                select distinct v1, r2.rep as v2
                from {p}graph2, {reps} as r2
                where {p}graph2.v2 = r2.v
                  and v1 != r2.rep
                distributed by (v1)
                """,
                label=f"{self.name}:contract",
            ).rowcount
            db.execute(f"drop table {p}graph2")
            db.execute(f"alter table {p}graph3 rename to {p}graph")
            if graph_size == 0:
                break
        total_rounds = round_no

        # Back-to-front composition with an accumulated affine relabelling,
        # exactly the second loop of Figure 4 / Appendix A — run as a
        # statement-level dataflow.  Each iteration writes its own scratch
        # name ``{p}c{k}`` (the old shared ``{p}tmp`` was a write-write
        # serialiser), so the chain decomposes into per-round pairs:
        #
        #   create c{k}  — reads reps{k} and the upper table (reps{k+1} on
        #                  the first iteration, c{k+1} after); the genuine
        #                  data dependency of the chain;
        #   retire  k    — drops reps{k} and the upper table; WAR-ordered
        #                  after create c{k}, but *independent* of
        #                  create c{k-1} (which reads only reps{k-1}/c{k}).
        #
        # The scheduler therefore overlaps round k's retire — and the tail
        # of round k+1's retire — with round k-1's composing join, instead
        # of stalling the driver on every drop/rename.
        sched = DataflowScheduler(db)
        upper = f"{p}reps{total_rounds}"
        composed: Optional[str] = None
        field = stack[-1].affine[2]
        acc_a, acc_b = field.one, field.zero
        try:
            while True:
                a_i, b_i, field = stack.pop().affine
                acc_a, acc_b = (
                    field.mul(acc_a, a_i),
                    field.add(field.mul(acc_a, b_i), acc_b),
                )
                round_no -= 1
                if round_no == 0:
                    break
                acc_sql = self.method.affine_sql(acc_a, acc_b, "r1.rep")
                composed = f"{p}c{round_no}"
                sched.submit([(
                    f"""
                    create table {composed} as
                    select r1.v as v, coalesce(r2.rep, {acc_sql}) as rep
                    from {p}reps{round_no} as r1
                    left outer join {upper} as r2
                      on (r1.rep = r2.v)
                    distributed by (v)
                    """,
                    f"{self.name}:compose",
                )])
                sched.submit([(f"drop table {p}reps{round_no}, {upper}", "")])
                upper = composed
            sched.wait_all()
        except BaseException:
            sched.drain()
            raise
        final = composed if composed is not None else f"{p}reps1"
        db.execute(f"alter table {final} rename to {result_table}")
        db.execute(f"drop table {p}graph")
        return total_rounds

    # ------------------------------------------------------------------
    # Figure 3: deterministic space
    # ------------------------------------------------------------------

    def _run_deterministic_space(self, db: Database, edges_table: str,
                                 result_table: str, rng: random.Random,
                                 n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        # Statement-level dataflow: per-round representative table names
        # (``{p}r{N}``) and the composition's own scratch name (``{p}c``)
        # keep the statement groups' read/write sets disjoint exactly where
        # the rounds are independent.  The composing CREATE only reads
        # ``l`` and the round's reps — no hazard with the contraction — so
        # it is submitted *before* the driver waits on the contract and the
        # two joins overlap on the pool; only the composition's
        # drop/rename finish waits for the contract (it retires the reps
        # table the contract still reads).  The old composer serialised all
        # of this behind a single in-flight slot.
        sched = DataflowScheduler(db)
        first_round = True
        rounds = 0
        try:
            while True:
                rounds += 1
                self._check_rounds(rounds, n_hint)
                h = self.method.new_round(rng)
                reps = f"{p}r{rounds}"
                sched.submit([(
                    f"""
                    create table {reps} as
                    select v1 v,
                           least({h.sql_expr('v1')}, min({h.sql_expr('v2')})) rep
                    from {p}e
                    group by v1
                    distributed by (v)
                    """,
                    f"{self.name}:reps",
                )])
                composing = self._submit_compose(db, sched, first_round, reps,
                                                 h.sql_expr("l.rep"))
                row_count = self._run_contract(sched, reps)
                self._finish_compose(sched, first_round, composing, reps,
                                     h.sql_expr("l.rep"))
                first_round = False
                if row_count == 0:
                    break
            sched.wait_all()
        except BaseException:
            sched.drain()
            raise
        db.execute(f"alter table {p}l rename to {result_table}")
        db.execute(f"drop table {p}e")
        return rounds

    # -- contraction/composition scheduling (shared by the looping
    # variants) -----------------------------------------------------------

    def _run_contract(self, sched: DataflowScheduler, reps: str) -> int:
        """Submit one round's contraction group — contract the doubled
        edge table over the round's representatives, retire the old edges,
        install the contracted ones — and wait it out; returns the
        contracted edge count that decides loop exit."""
        p = self.prefix
        contract = sched.submit([
            (
                f"""
                create table {p}t as
                select distinct rv.rep as v1, rw.rep as v2
                from {p}e, {reps} as rv, {reps} as rw
                where {p}e.v1 = rv.v and {p}e.v2 = rw.v
                  and rv.rep != rw.rep
                distributed by (v1)
                """,
                f"{self.name}:contract",
            ),
            (f"drop table {p}e", ""),
            (f"alter table {p}t rename to {p}e", ""),
        ])
        return sched.wait(contract)[0].rowcount

    def _compose_create(self, reps: str, rep_sql: str) -> tuple:
        """The composing statement ``C := coalesce(R∘L, h_i∘L)``: reads
        only ``l`` and the round's reps, so it can overlap the round's
        contraction.  Writes its own scratch name (``{p}c``), never the
        foreground round's ``{p}t``."""
        p = self.prefix
        return (
            f"""
            create table {p}c as
            select l.v as v,
                   coalesce(r.rep, {rep_sql}) as rep
            from {p}l as l
            left outer join {reps} as r on (l.rep = r.v)
            distributed by (v)
            """,
            f"{self.name}:compose",
        )

    def _compose_finish(self, reps: str) -> list:
        """Retire the composed-over tables and install ``C`` as the new
        ``L``.  Its write set (``l``, ``c``, the reps table) makes the
        scheduler order it after the composing CREATE *and* after the
        contraction that still reads the reps table."""
        p = self.prefix
        return [
            (f"drop table {p}l, {reps}", ""),
            (f"alter table {p}c rename to {p}l", ""),
        ]

    def _submit_compose(self, db: Database, sched: DataflowScheduler,
                        first_round: bool, reps: str, rep_sql: str):
        """Launch round ``i``'s composing CREATE alongside its contraction
        (asynchronous schedules only).

        Inline schedules keep the serial statement order — composition
        strictly after the contraction — because a space-budgeted run's
        peak-space profile (the Table III/IV DNF signal) must stay exactly
        the serial one, and the budget check fires statement by statement.
        """
        if first_round or not sched.asynchronous:
            return None
        task = sched.submit([self._compose_create(reps, rep_sql)])
        db.stats.record_overlapped_composition()
        return task

    def _finish_compose(self, sched: DataflowScheduler, first_round: bool,
                        composing, reps: str, rep_sql: str) -> None:
        """After the contract: install the composed labels (or, in round
        one, adopt the reps table as the initial ``L``)."""
        p = self.prefix
        if first_round:
            sched.submit([(f"alter table {reps} rename to {p}l", "")])
        elif composing is not None:
            sched.submit(self._compose_finish(reps))
        else:
            # Inline schedule: the whole composition runs here, after the
            # contraction, preserving the serial peak-space profile.
            sched.submit([self._compose_create(reps, rep_sql)]
                         + self._compose_finish(reps))

    # ------------------------------------------------------------------
    # Table-strategy methods (random reals): argmin representatives
    # ------------------------------------------------------------------

    def _run_table_strategy(self, db: Database, edges_table: str,
                            result_table: str, rng: random.Random,
                            n_hint: int) -> int:
        p = self.prefix
        self._setup_doubled_edges(db, edges_table, f"{p}e")
        np_rng = np.random.default_rng(rng.getrandbits(63))
        sched = DataflowScheduler(db)
        first_round = True
        rounds = 0
        scratch_drop = None
        try:
            while True:
                rounds += 1
                self._check_rounds(rounds, n_hint)
                if scratch_drop is not None:
                    # The random/scratch tables are re-created outside the
                    # scheduler (bulk load), so the previous round's
                    # background drop must land first.
                    sched.wait(scratch_drop)
                vertices = np.unique(db.table(f"{p}e").column("v1").values)
                if vertices.shape[0] == 0:
                    # Degenerate input (empty edge table): nothing to do.
                    if first_round:
                        db.execute(f"create table {result_table} (v int, r int)")
                    break
                # A uniformly random permutation, realised as the ranks of
                # i.i.d. random reals (this is the "random reals method"
                # with exact tie-free ordering).
                ranks = np.empty(vertices.shape[0], dtype=np.int64)
                ranks[np_rng.permutation(vertices.shape[0])] = np.arange(
                    vertices.shape[0], dtype=np.int64
                )
                db.load_table(f"{p}rand", {"v": vertices, "h": ranks},
                              distributed_by="v")
                # The random table must reach every segment (the paper's
                # noted disadvantage of this method).
                db.stats.record_broadcast(
                    db.table(f"{p}rand").byte_size(), db.cluster.n_segments
                )
                reps = f"{p}r{rounds}"
                # The reps-building pipeline (neigh-min -> closed-min ->
                # argmin) and the contraction chain after it: the scheduler
                # serialises them through their table hazards while round
                # i-1's composition runs alongside.
                sched.submit([(
                    f"""
                    create table {p}nmin as
                    select e.v1 as v, min(h2.h) as hmin
                    from {p}e as e, {p}rand as h2
                    where e.v2 = h2.v
                    group by e.v1
                    distributed by (v)
                    """,
                    f"{self.name}:neigh-min",
                )])
                sched.submit([(
                    f"""
                    create table {p}cmin as
                    select m.v as v, least(m.hmin, hv.h) as hmin
                    from {p}nmin as m, {p}rand as hv
                    where m.v = hv.v
                    distributed by (v)
                    """,
                    f"{self.name}:closed-min",
                )])
                sched.submit([(
                    f"""
                    create table {reps} as
                    select mc.v as v, h3.v as rep
                    from {p}cmin as mc, {p}rand as h3
                    where mc.hmin = h3.h
                    distributed by (v)
                    """,
                    f"{self.name}:argmin",
                )])
                composing = self._submit_compose(db, sched, first_round,
                                                 reps, "l.rep")
                row_count = self._run_contract(sched, reps)
                self._finish_compose(sched, first_round, composing, reps,
                                     "l.rep")
                first_round = False
                scratch_drop = sched.submit(
                    [(f"drop table {p}rand, {p}nmin, {p}cmin", "")]
                )
                if row_count == 0:
                    break
            sched.wait_all()
        except BaseException:
            sched.drain()
            raise
        if not first_round:
            db.execute(f"alter table {p}l rename to {result_table}")
        db.drop_table(f"{p}e", if_exists=True)
        return rounds
