"""Validation of connected-component labellings.

Section III: "A correct output of the algorithm is one where any two
vertices share the same r value if and only if they belong to the same
connected component" — labels need not be vertex IDs (Randomised
Contraction's relabelling optimisation produces arbitrary field elements),
only consistent.  :func:`validate_labelling` checks exactly that, without
assuming anything about label values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.edgelist import EdgeList
from .unionfind import ground_truth_labels


@dataclass
class ValidationReport:
    """The outcome of a labelling check."""

    valid: bool
    reason: str
    n_vertices: int
    n_components_expected: int
    n_labels_found: int


def validate_labelling(
    edges: EdgeList, vertices: np.ndarray, labels: np.ndarray
) -> ValidationReport:
    """Check a labelling against ground truth.

    The check exploits a standard argument: if (a) every vertex is labelled
    exactly once, (b) the two endpoints of every edge share a label, and
    (c) the number of distinct labels equals the true component count, then
    the labelling *is* the component partition — (b) makes each label class
    a union of components, and (c) forces the union to be trivial.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    labels = np.asarray(labels)
    expected_vertices, truth = ground_truth_labels(edges)
    n = expected_vertices.shape[0]

    if vertices.shape[0] != labels.shape[0]:
        return ValidationReport(False, "vertices/labels length mismatch", n, 0, 0)
    order = np.argsort(vertices, kind="stable")
    sorted_vertices = vertices[order]
    sorted_labels = labels[order]
    if sorted_vertices.shape[0] != n or not np.array_equal(sorted_vertices,
                                                           expected_vertices):
        return ValidationReport(
            False,
            "labelled vertex set differs from the graph's vertex set",
            n,
            0,
            0,
        )

    # (b) endpoints agree.
    src_pos = np.searchsorted(sorted_vertices, edges.src)
    dst_pos = np.searchsorted(sorted_vertices, edges.dst)
    if not np.array_equal(sorted_labels[src_pos], sorted_labels[dst_pos]):
        bad = int(np.flatnonzero(
            sorted_labels[src_pos] != sorted_labels[dst_pos]
        ).shape[0])
        return ValidationReport(
            False, f"{bad} edge(s) connect differently-labelled vertices", n, 0, 0
        )

    n_expected = int(np.unique(truth).shape[0]) if n else 0
    n_found = int(np.unique(labels).shape[0]) if n else 0
    if n_found != n_expected:
        return ValidationReport(
            False,
            f"found {n_found} distinct labels, expected {n_expected} components",
            n,
            n_expected,
            n_found,
        )
    return ValidationReport(True, "ok", n, n_expected, n_found)


def assert_valid_labelling(
    edges: EdgeList, vertices: np.ndarray, labels: np.ndarray
) -> None:
    """Raise AssertionError with a readable reason if the labelling is bad."""
    report = validate_labelling(edges, vertices, labels)
    if not report.valid:
        raise AssertionError(f"invalid component labelling: {report.reason}")
