"""The paper's contribution and its competitors, all driven over SQL.

* :class:`~repro.core.randomised_contraction.RandomisedContraction` —
  the paper's algorithm (Figures 3, 4, Appendix A);
* :class:`~repro.core.hash_to_min.HashToMin`,
  :class:`~repro.core.two_phase.TwoPhase`,
  :class:`~repro.core.cracker.Cracker` — the three leading distributed
  baselines of Table I, ported to SQL as in Section VII;
* :class:`~repro.core.bfs.BreadthFirstSearchCC`,
  :class:`~repro.core.squaring.GraphSquaringCC` — the naive approaches of
  Section IV;
* :mod:`~repro.core.unionfind` / :mod:`~repro.core.labels` — ground truth
  and output validation;
* :mod:`~repro.core.contraction_theory` — the Theorem 1 / Appendix B
  machinery (contraction-factor bounds).
"""

from .base import CCRunResult, SQLConnectedComponents
from .bfs import BreadthFirstSearchCC
from .cracker import Cracker
from .hash_to_min import HashToMin
from .labels import ValidationReport, assert_valid_labelling, validate_labelling
from .randomised_contraction import RandomisedContraction
from .runner import ALGORITHMS, CCResult, connected_components, make_algorithm
from .squaring import GraphSquaringCC
from .two_phase import TwoPhase
from .udfs import register_udfs
from .unionfind import (
    UnionFind,
    count_components,
    ground_truth_labels,
    unionfind_labels,
)

__all__ = [
    "ALGORITHMS",
    "BreadthFirstSearchCC",
    "CCResult",
    "CCRunResult",
    "Cracker",
    "GraphSquaringCC",
    "HashToMin",
    "RandomisedContraction",
    "SQLConnectedComponents",
    "TwoPhase",
    "UnionFind",
    "ValidationReport",
    "assert_valid_labelling",
    "connected_components",
    "count_components",
    "ground_truth_labels",
    "make_algorithm",
    "register_udfs",
    "unionfind_labels",
    "validate_labelling",
]
