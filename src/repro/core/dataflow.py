"""Statement-level dataflow scheduling for the contraction drivers.

The randomised-contraction loop is a short program whose statements touch
a handful of tables in a fixed pattern: build representatives from the
edge table, contract the edges, compose the label table.  The dependency
structure between those statements is known statically — ConnectIt
(Dhulipala et al.) exploits exactly this to schedule connectivity work
asynchronously instead of in lockstep rounds — yet until now the driver
ran everything serially except a single overlapped composition slot
(``_OverlappedComposer``), which allowed at most one background statement
and blocked the driver whenever a second round's composition arrived
early.

:class:`DataflowScheduler` generalises that slot into a dependency DAG
over *statement groups*:

* each submitted task is a list of SQL statements executed in order on one
  worker (a composition is ``CREATE TABLE … AS``/``DROP``/``RENAME`` — an
  atomic group, since splitting it would let a dependent observe the
  half-renamed state);
* every task carries **read and write table sets** derived from its parsed
  statements (:func:`statement_effects`): SELECT inputs are reads, created
  /dropped/renamed/truncated/inserted-into tables are writes;
* a task waits for every unfinished task whose writes intersect its reads
  or writes, and for every unfinished reader of a table it writes (the
  classic RAW/WAW/WAR hazards) — nothing else.  Independent statements,
  e.g. round *i*'s L-composition and round *i+1*'s reps-building and
  contraction, run concurrently on the database's
  :class:`~repro.sqlengine.mpp.SegmentPool`.

Because the hazard sets fully order every pair of conflicting statements,
the catalog state each statement observes — and therefore the final labels
— is bit-identical to the serial schedule; the engine's catalog, plan
cache and statistics locks (and the round-unique table/template names)
make the concurrent execution safe, exactly as they did for the single
overlapped composition.

Two situations fall back to inline execution at ``submit()`` time, so the
serial peak-space profile and synchronous error behaviour are preserved:
a database without a multi-worker pool, and a database under a **space
budget** (overlap holds round *i*'s tables alive alongside round *i+1*'s,
which would make budget violations timing-dependent — the bench harness's
Table III/IV DNF machinery needs the serial profile).

Effects are derived from the plan cache's statement *templates* without
ever patching a template AST (patching a shared template here while a
worker thread executes a statement of the same template would violate the
cache's single-occupancy rule): a template's parameter-independent
read/write name sets — table names with their ``$k`` digit markers intact
— are computed once from the verified template's slot list and cached on
the entry, and each submitted statement instantiates them with its own
parameters in one cheap regex pass.  A warm round loop therefore derives
every statement's effect sets with zero parses (counted as
``effects_cache_hits``); a fresh parse remains only for first-seen
templates, uncacheable statements, and databases without a plan cache.
A small per-scheduler memo additionally keeps fixed-text statements
(drops, renames) free of even the normalisation pass.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional, Union

from ..sqlengine import Database
from ..sqlengine.ast_nodes import (
    AlterRename,
    CreateTable,
    CreateTableAs,
    DropTable,
    InsertSelect,
    InsertValues,
    Statement,
    TableRef,
    TruncateTable,
)
from ..sqlengine.mpp import task_scope
from ..sqlengine.parser import parse_statement
from ..sqlengine.plancache import _MARKER_RE, _collect_nodes

#: How many distinct statement texts the effects memo retains.
_EFFECTS_MEMO_LIMIT = 256


def statement_effects(
    statement: Union[str, Statement]
) -> tuple[frozenset[str], frozenset[str]]:
    """Derive the (reads, writes) table-name sets of one SQL statement.

    Reads are every stored table the statement scans (the ``TableRef``
    nodes of its SELECT, if any); writes are the tables whose catalog
    entry the statement creates, fills, drops, renames or truncates.
    Names are normalised to the catalog's lower-case keys.
    """
    if isinstance(statement, str):
        statement = parse_statement(statement)
    refs: list[TableRef] = []
    _collect_nodes(statement, TableRef, refs)
    reads = {ref.name.lower() for ref in refs}
    writes: set[str] = set()
    if isinstance(statement, (CreateTableAs, CreateTable, InsertValues,
                              InsertSelect, TruncateTable)):
        writes.add(statement.name.lower())
    elif isinstance(statement, DropTable):
        writes.update(name.lower() for name in statement.names)
    elif isinstance(statement, AlterRename):
        writes.add(statement.old.lower())
        writes.add(statement.new.lower())
    return frozenset(reads), frozenset(writes)


def _template_effects(entry) -> tuple[tuple, tuple]:
    """Parameter-independent (reads, writes) name templates of one plan
    template: tuples of table-name strings that may contain ``$k`` digit
    markers.  Derived from the *verified* template AST plus its slot list
    — a parameterised name field's pristine template value lives in the
    slots (patching rewrites only the node), and a field without a slot is
    never patched — so no parse and no template mutation is needed.
    """
    slot_values = {
        (id(node), field_name): value
        for node, field_name, value in entry.slots
    }

    def field_template(node, field_name: str):
        return slot_values.get((id(node), field_name),
                               getattr(node, field_name))

    statement = entry.statement
    reads = tuple(field_template(node, "name")
                  for node in entry.table_nodes)
    writes: list = []
    if isinstance(statement, (CreateTableAs, CreateTable, InsertValues,
                              InsertSelect, TruncateTable)):
        writes.append(field_template(statement, "name"))
    elif isinstance(statement, DropTable):
        writes.extend(field_template(statement, "names"))
    elif isinstance(statement, AlterRename):
        writes.append(field_template(statement, "old"))
        writes.append(field_template(statement, "new"))
    return reads, tuple(writes)


def _instantiate_names(templates: tuple, params: list[str]) -> frozenset[str]:
    """Substitute a statement's parameters into cached name templates."""
    return frozenset(
        (_MARKER_RE.sub(lambda m: params[int(m.group(1))], name)
         if "$" in name else name).lower()
        for name in templates
    )


class StatementTask:
    """One scheduled group of SQL statements plus its dataflow state."""

    __slots__ = ("statements", "reads", "writes", "deps", "dependents",
                 "results", "error", "done", "started")

    def __init__(self, statements: list[tuple[str, str]],
                 reads: frozenset[str], writes: frozenset[str]):
        self.statements = statements
        self.reads = reads
        self.writes = writes
        #: Unfinished tasks this one must wait for (drained as they finish).
        self.deps: set["StatementTask"] = set()
        self.dependents: list["StatementTask"] = []
        self.results: list = []
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        self.started = False


class DataflowScheduler:
    """Run statement groups as a dependency DAG on the segment pool.

    ``submit()`` never blocks (in asynchronous mode): conflicting tasks are
    queued behind their hazards, independent ones start immediately, and
    the driver thread only stops at :meth:`wait`/:meth:`wait_all`.  At most
    ``task_slots - 1`` tasks execute at once, so a task that internally
    fans its kernels out over the pool always finds a free worker — the
    pool can never deadlock on its own parents.

    On a process-backed pool the statement groups themselves stay on the
    thread side (they are closures over the Database), but every eligible
    kernel inside them dispatches its partitions to worker *processes*
    (see :mod:`repro.sqlengine.parallel`), so overlapping groups — round
    *i*'s composition beside round *i+1*'s contraction — no longer share
    one GIL for their kernel work.  The one-worker reservation is kept on
    every backend: non-shareable payloads (text keys, exhausted shared
    memory) still fall back to thread-side ``pool.map`` fan-out, which
    must always find a free thread worker to drain its chunks.
    """

    def __init__(self, db: Database):
        pool = getattr(db, "pool", None)
        self._db = db
        budgeted = db.stats.space_budget_bytes is not None
        self._pool = (
            pool if pool is not None and pool.n_workers > 1 and not budgeted
            else None
        )
        self._lock = threading.Lock()
        self._unfinished: set[StatementTask] = set()
        self._ready: deque[StatementTask] = deque()
        self._running = 0
        self._max_running = max(1, pool.task_slots - 1) \
            if self._pool is not None else 1
        self._last_writer: dict[str, StatementTask] = {}
        self._readers: dict[str, set[StatementTask]] = {}
        self._failed: Optional[BaseException] = None
        self._effects: dict[str, tuple[frozenset[str], frozenset[str]]] = {}

    @property
    def asynchronous(self) -> bool:
        """True when submitted tasks can actually overlap on the pool."""
        return self._pool is not None

    # -- submission --------------------------------------------------------

    def _memo_effects(self, sql: str) -> tuple[frozenset[str], frozenset[str]]:
        effects = self._effects.get(sql)
        if effects is not None:
            self._db.stats.record_effects_cache_hit()
            return effects
        effects = self._template_effects_for(sql)
        if effects is None:
            effects = statement_effects(sql)
        if len(self._effects) >= _EFFECTS_MEMO_LIMIT:
            self._effects.clear()
        self._effects[sql] = effects
        return effects

    def _template_effects_for(
        self, sql: str
    ) -> Optional[tuple[frozenset[str], frozenset[str]]]:
        """Derive effect sets from the plan cache's statement template, or
        ``None`` when the statement is uncacheable (the caller parses).
        A pre-existing template — any warm round loop — costs only the
        normalisation regex plus the marker substitution, no parse."""
        plans = getattr(self._db, "_plans", None)
        if plans is None:
            return None
        entry, params, pre_existing = plans.template_entry(sql)
        if entry is None:
            return None
        template = entry.effects
        if template is None:
            template = _template_effects(entry)
            entry.effects = template
        if pre_existing:
            self._db.stats.record_effects_cache_hit()
        reads_t, writes_t = template
        return (_instantiate_names(reads_t, params),
                _instantiate_names(writes_t, params))

    def submit(
        self, statements: list, label: str = ""
    ) -> StatementTask:
        """Schedule one group of statements; returns its task handle.

        ``statements`` is a list of SQL strings or ``(sql, label)`` pairs
        executed in order on one worker.  A task whose hazards are all
        resolved starts immediately; otherwise it runs as its dependencies
        finish.  If an earlier task already failed, its error re-raises
        here (the driver must not keep extending a broken schedule).
        """
        pairs = [
            (sql, label) if isinstance(sql, str) else (sql[0], sql[1] or label)
            for sql in statements
        ]
        reads: set[str] = set()
        writes: set[str] = set()
        for sql, _ in pairs:
            stmt_reads, stmt_writes = self._memo_effects(sql)
            reads |= stmt_reads
            writes |= stmt_writes
        task = StatementTask(pairs, frozenset(reads), frozenset(writes))
        if self._pool is None:
            self._execute(task)
            task.done.set()
            if task.error is not None:
                raise task.error
            return task
        with self._lock:
            if self._failed is not None:
                raise self._failed
            touched = task.reads | task.writes
            for table in touched:
                writer = self._last_writer.get(table)
                if writer is not None and writer in self._unfinished:
                    task.deps.add(writer)
            for table in task.writes:
                for reader in self._readers.get(table, ()):
                    if reader in self._unfinished and reader is not task:
                        task.deps.add(reader)
            # Engagement telemetry: this task is independent of at least
            # one in-flight task, so the two overlap on the pool.  The
            # check runs against the transitive dependency closure — a
            # task is not "overlapped" with its own ancestors.
            closure: set[StatementTask] = set()
            frontier = list(task.deps)
            while frontier:
                dep = frontier.pop()
                if dep in closure:
                    continue
                closure.add(dep)
                frontier.extend(d for d in dep.deps if d in self._unfinished)
            if any(other not in closure for other in self._unfinished):
                self._db.stats.record_dataflow_overlap()
            for dep in task.deps:
                dep.dependents.append(task)
            self._unfinished.add(task)
            for table in task.writes:
                self._last_writer[table] = task
                self._readers.pop(table, None)
            for table in task.reads:
                self._readers.setdefault(table, set()).add(task)
            if not task.deps:
                self._ready.append(task)
            self._dispatch_locked()
        return task

    # -- execution ---------------------------------------------------------

    def _dispatch_locked(self) -> None:
        while self._ready and self._running < self._max_running:
            task = self._ready.popleft()
            task.started = True
            self._running += 1
            self._pool.submit(self._run_task, task)

    def _execute(self, task: StatementTask) -> None:
        # task_scope marks the statements as pool-task work even when they
        # run on the driver thread (_help_once, or the serial fallback), so
        # operators that fan sub-plans out over the pool — the parallel
        # UNION ALL arms — bail to their serial path instead of blocking a
        # scheduler slot on nested futures.
        try:
            with task_scope():
                for sql, label in task.statements:
                    task.results.append(self._db.execute(sql, label=label))
        except BaseException as error:
            task.error = error

    def _run_task(self, task: StatementTask) -> None:
        self._execute(task)
        with self._lock:
            self._running -= 1
            self._finish_locked(task)
            self._dispatch_locked()
        task.done.set()

    def _retire_locked(self, task: StatementTask) -> None:
        """Drop a finished (or poisoned) task from every tracking
        structure — the single copy of the retire bookkeeping."""
        self._unfinished.discard(task)
        for table, writer in list(self._last_writer.items()):
            if writer is task:
                del self._last_writer[table]
        for readers in self._readers.values():
            readers.discard(task)

    def _finish_locked(self, task: StatementTask) -> None:
        if task.error is not None and self._failed is None:
            self._failed = task.error
        self._retire_locked(task)
        for dependent in task.dependents:
            dependent.deps.discard(task)
            if task.error is not None:
                # A broken dependency poisons the subtree: dependents see
                # the ancestor's error instead of running on a half-built
                # catalog.
                self._poison_locked(dependent, task.error)
            elif not dependent.deps and not dependent.started \
                    and dependent.error is None:
                self._ready.append(dependent)

    def _poison_locked(
        self, task: StatementTask, error: BaseException
    ) -> None:
        if task.started or task.error is not None:
            return
        task.started = True
        task.error = error
        self._retire_locked(task)
        for dependent in task.dependents:
            dependent.deps.discard(task)
            self._poison_locked(dependent, error)
        task.done.set()

    # -- completion --------------------------------------------------------

    def _help_once(self, waiting_for: StatementTask) -> bool:
        """Run one ready task on the calling (driver) thread.

        The worker cap keeps ``n_workers - 1`` tasks on the pool so a
        task's own kernel fan-out always finds a free worker; a waiting
        driver thread is idle capacity, so it executes queued tasks
        itself — on a two-worker pool this is what keeps the contraction
        genuinely overlapping the composition (the driver runs one while
        the worker runs the other), exactly like the pre-DAG composer.
        Prefers the task being waited for when it is ready.
        """
        with self._lock:
            if waiting_for.done.is_set() or not self._ready:
                return False
            if waiting_for in self._ready:
                self._ready.remove(waiting_for)
                helper = waiting_for
            else:
                helper = self._ready.popleft()
            helper.started = True
            self._running += 1
        self._run_task(helper)
        return True

    def wait(self, task: StatementTask) -> list:
        """Block until one task finishes; returns its per-statement
        :class:`~repro.sqlengine.database.ResultSet` list (re-raising the
        task's — or a poisoning ancestor's — error).  While blocked, the
        driver thread executes queued ready tasks itself (see
        :meth:`_help_once`)."""
        while not task.done.is_set():
            if not self._help_once(task):
                task.done.wait()
        if task.error is not None:
            raise task.error
        return task.results

    def wait_all(self) -> None:
        """Drain every submitted task, re-raising the first error."""
        while True:
            with self._lock:
                pending = next(iter(self._unfinished), None)
                first_error = self._failed
            if pending is None:
                if first_error is not None:
                    raise first_error
                return
            pending.done.wait()

    def drain(self) -> None:
        """Best-effort wait for error paths (the original error wins)."""
        try:
            self.wait_all()
        except Exception:
            pass
