"""The one-call public API: run any algorithm on an edge list.

Wraps database creation, dataset loading, algorithm execution, result
extraction and (optionally) validation into a single call::

    from repro import connected_components
    from repro.graphs import path_graph

    result = connected_components(path_graph(1000), algorithm="rc", seed=7)
    result.labels_by_vertex  # {vertex_id: component_label}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..graphs.edgelist import EdgeList
from ..graphs.io import load_edges_into
from ..sqlengine import Database
from .base import CCRunResult, SQLConnectedComponents
from .bfs import BreadthFirstSearchCC
from .cracker import Cracker
from .hash_to_min import HashToMin
from .labels import ValidationReport, validate_labelling
from .randomised_contraction import RandomisedContraction
from .squaring import GraphSquaringCC
from .two_phase import TwoPhase

#: Algorithm registry: name -> zero-argument factory.  Short aliases match
#: the column heads of the paper's Table III (RC, HM, TP, CR).
ALGORITHMS: dict[str, Callable[[], SQLConnectedComponents]] = {
    "randomised-contraction": RandomisedContraction,
    "rc": RandomisedContraction,
    "hash-to-min": HashToMin,
    "hm": HashToMin,
    "two-phase": TwoPhase,
    "tp": TwoPhase,
    "cracker": Cracker,
    "cr": Cracker,
    "breadth-first-search": BreadthFirstSearchCC,
    "bfs": BreadthFirstSearchCC,
    "graph-squaring": GraphSquaringCC,
    "squaring": GraphSquaringCC,
}


def make_algorithm(name_or_instance) -> SQLConnectedComponents:
    """Resolve an algorithm name (or pass an instance through)."""
    if isinstance(name_or_instance, SQLConnectedComponents):
        return name_or_instance
    try:
        factory = ALGORITHMS[str(name_or_instance).lower()]
    except KeyError:
        known = ", ".join(sorted(set(ALGORITHMS)))
        raise KeyError(f"unknown algorithm {name_or_instance!r}; known: {known}")
    return factory()


@dataclass
class CCResult:
    """Connected-components output plus run metrics."""

    vertices: np.ndarray
    labels: np.ndarray
    run: CCRunResult
    validation: Optional[ValidationReport] = None

    @property
    def labels_by_vertex(self) -> dict[int, int]:
        """{vertex_id: component_label} (materialised; small graphs)."""
        return dict(zip(self.vertices.tolist(), self.labels.tolist()))

    @property
    def n_components(self) -> int:
        if self.labels.shape[0] == 0:
            return 0
        return int(np.unique(self.labels).shape[0])

    def components(self) -> dict[int, list[int]]:
        """{component_label: sorted vertex list}."""
        groups: dict[int, list[int]] = {}
        for vertex, label in zip(self.vertices.tolist(), self.labels.tolist()):
            groups.setdefault(label, []).append(vertex)
        for members in groups.values():
            members.sort()
        return groups


def connected_components(
    edges: EdgeList,
    algorithm: str | SQLConnectedComponents = "randomised-contraction",
    seed: Optional[int] = None,
    db: Optional[Database] = None,
    n_segments: int = 4,
    space_budget_bytes: Optional[int] = None,
    validate: bool = False,
) -> CCResult:
    """Compute connected components of an edge list in-database.

    Parameters
    ----------
    edges:
        The input graph (isolated vertices may appear as loop edges).
    algorithm:
        Registry name (``"rc"``, ``"hm"``, ``"tp"``, ``"cr"``, ``"bfs"``,
        ``"squaring"``) or a configured algorithm instance, e.g.
        ``RandomisedContraction(method="encryption",
        variant="deterministic-space")``.
    db:
        Reuse an existing database (the edge table is created inside it);
        by default a fresh one is created.
    validate:
        Also check the output against the union-find ground truth and
        attach the :class:`ValidationReport`.
    """
    algo = make_algorithm(algorithm)
    if db is None:
        db = Database(n_segments=n_segments, space_budget_bytes=space_budget_bytes)
    table = "ccinput"
    db.drop_table(table, if_exists=True)
    db.drop_table("ccresult", if_exists=True)
    load_edges_into(db, table, edges)
    run = algo.run(db, table, result_table="ccresult", seed=seed)
    vertices, labels = run.labels(db)
    validation = None
    if validate:
        validation = validate_labelling(edges, vertices, labels)
        if not validation.valid:
            raise AssertionError(
                f"{algo.name} produced an invalid labelling: {validation.reason}"
            )
    return CCResult(vertices=vertices, labels=labels, run=run, validation=validation)
