"""Two-Phase / alternating star contraction (Kiveris et al., SoCC 2014).

The linear-space MapReduce competitor of the paper's Table I, taking
Theta(log^2 |V|) rounds.  The building blocks operate on the undirected
neighbourhood view of the edge set; with m(u) = min(N[u] ∪ {u}):

* **Large-Star**: every vertex u connects its *strictly larger* neighbours
  to m(u):   E' = ∪_u {(v, m(u)) : v ∈ N(u), v > u}.
* **Small-Star**: every vertex u connects its not-larger neighbours and
  itself to m(u):   E' = ∪_u {(v, m(u)) : v ∈ N(u), v <= u} ∪ {(u, m(u))}.

Rounds alternate Large-Star and Small-Star until the edge set stops
changing, at which point every component is a star centred on its minimum
vertex.  Kiveris et al. prove convergence in O(log^2 n) rounds; the
PathUnion10 dataset (doubling path lengths, interleaved IDs) exercises that
behaviour, which is why the paper includes it as Two-Phase's worst case.

Space discipline — the property that makes Two-Phase the least
space-hungry algorithm in the paper's Table IV — is preserved by storing
each undirected edge *once* (as the directed (child, parent) pair a star
operation emits) and symmetrising on the fly in a FROM-clause subquery,
which is pipelined by the engine rather than written to storage.  This
mirrors the MapReduce original, where the doubling happens inside the map
phase and is never materialised.

Isolated vertices: star operations drop loop edges, so the original vertex
set is retained in a side table and label assembly uses a left join —
isolated vertices label themselves.
"""

from __future__ import annotations

import math
import random

from ..sqlengine import Database
from .base import SQLConnectedComponents

#: Inline symmetric view of the directed pair table (never materialised).
_SYM = "(select v1, v2 from {e} union all select v2 as v1, v1 as v2 from {e})"


class TwoPhase(SQLConnectedComponents):
    """Alternating Large-Star/Small-Star contraction."""

    name = "two-phase"

    def _star_step(self, db: Database, large: bool) -> tuple[int, int]:
        """One star operation into {p}enew, swapped into {p}e.

        Returns (new edge count, changed) where ``changed`` is zero iff the
        operation was a no-op — the sound convergence signal (a star forest
        pointing at component minima is exactly a common fixed point of
        both operations).  The comparison runs while both tables are live,
        so no snapshot table is ever stored across rounds.
        """
        p = self.prefix
        sym = _SYM.format(e=f"{p}e")
        label = "large" if large else "small"
        input_count = db.table(f"{p}e").n_rows
        db.execute(
            f"""
            create table {p}m as
            select v1 as u, least(v1, min(v2)) as m
            from {sym} as sym
            group by v1
            distributed by (u)
            """,
            label=f"{self.name}:{label}-min",
        )
        if large:
            body = f"""
                select sym.v2 as v1, m.m as v2
                from {sym} as sym, {p}m as m
                where sym.v1 = m.u and sym.v2 > sym.v1
            """
        else:
            body = f"""
                select sym.v2 as v1, m.m as v2
                from {sym} as sym, {p}m as m
                where sym.v1 = m.u and sym.v2 <= sym.v1
                union all
                select m.u as v1, m.m as v2 from {p}m as m
            """
        new_count = db.execute(
            f"""
            create table {p}enew as
            select distinct v1, v2 from (
                {body}
            ) as q
            where v1 != v2
            distributed by (v1)
            """,
            label=f"{self.name}:{label}-star",
        ).rowcount
        if new_count == input_count:
            changed = int(db.execute(
                f"""
                select count(*) from {p}enew as n
                left outer join {p}e as c on (n.v1 = c.v1 and n.v2 = c.v2)
                where c.v1 is null
                """,
                label=f"{self.name}:{label}-changed?",
            ).scalar())
        else:
            changed = 1
        db.execute(f"drop table {p}e, {p}m")
        db.execute(f"alter table {p}enew rename to {p}e")
        return new_count, changed

    def _execute(self, db: Database, edges_table: str, result_table: str,
                 rng: random.Random):
        p = self.prefix
        db.execute(
            f"""
            create table {p}verts as
            select distinct v from (
                select v1 as v from {edges_table}
                union all
                select v2 as v from {edges_table}
            ) as q
            distributed by (v)
            """,
            label=f"{self.name}:vertices",
        )
        db.execute(
            f"""
            create table {p}e as
            select distinct v1, v2 from {edges_table} where v1 != v2
            distributed by (v1)
            """,
            label=f"{self.name}:dedup",
        )
        n_hint = max(db.table(f"{p}verts").n_rows, 2)
        hard_limit = int(8 * (math.log2(n_hint) + 2) ** 2 + 16)
        rounds = 0
        while db.table(f"{p}e").n_rows > 0:
            rounds += 1
            self._round_guard(rounds, n_hint, hard_limit=hard_limit)
            _, large_changed = self._star_step(db, large=True)
            _, small_changed = self._star_step(db, large=False)
            if large_changed == 0 and small_changed == 0:
                break
        # Star edges now point every vertex at its component minimum.
        sym = _SYM.format(e=f"{p}e")
        db.execute(
            f"""
            create table {p}lab as
            select v1 as v, least(v1, min(v2)) as rep
            from {sym} as sym
            group by v1
            distributed by (v)
            """,
            label=f"{self.name}:star-labels",
        )
        db.execute(
            f"""
            create table {result_table} as
            select vs.v as v, coalesce(l.rep, vs.v) as rep
            from {p}verts as vs
            left outer join {p}lab as l on (vs.v = l.v)
            distributed by (v)
            """,
            label=f"{self.name}:labels",
        )
        db.execute(f"drop table {p}e, {p}lab, {p}verts")
        return rounds, {}
