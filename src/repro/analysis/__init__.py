"""Analysis utilities: Figure-5 component statistics and run metrics."""

from .components import (
    ScaleFreeFit,
    binned_histogram,
    component_sizes,
    fit_scale_free,
    render_figure5,
    size_histogram,
)
from .metrics import (
    SpaceReport,
    bytes_to_human,
    quasi_linearity_exponent,
    relative_stdev,
)

__all__ = [
    "ScaleFreeFit",
    "SpaceReport",
    "binned_histogram",
    "bytes_to_human",
    "component_sizes",
    "fit_scale_free",
    "quasi_linearity_exponent",
    "relative_stdev",
    "render_figure5",
    "size_histogram",
]
