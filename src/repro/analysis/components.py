"""Component-size analysis — the substrate for Figure 5.

Figure 5 of the paper plots, on log-log axes, the number of components of
each size for the Andromeda and Bitcoin-addresses graphs, showing a
"roughly scale-free distribution": a (roughly) linear log-log relationship,
with the Andromeda background as a single giant outlier.  This module
computes the distribution, fits the log-log line, and renders a terminal
version of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.unionfind import ground_truth_labels
from ..graphs.edgelist import EdgeList


def component_sizes(edges: EdgeList) -> np.ndarray:
    """Sizes of all connected components, descending."""
    _, labels = ground_truth_labels(edges)
    if labels.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1].astype(np.int64)


def size_histogram(edges: EdgeList) -> tuple[np.ndarray, np.ndarray]:
    """(distinct component sizes ascending, number of components of each)."""
    sizes = component_sizes(edges)
    if sizes.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values, counts = np.unique(sizes, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


@dataclass
class ScaleFreeFit:
    """A log-log linear fit of the component-size distribution."""

    slope: float
    intercept: float
    r_squared: float
    n_points: int
    giant_component_size: int
    n_components: int

    @property
    def looks_scale_free(self) -> bool:
        """The paper's qualitative criterion: decreasing, roughly linear
        log-log relationship over multiple size decades."""
        return self.slope < -0.5 and self.r_squared > 0.55 and self.n_points >= 4


def fit_scale_free(edges: EdgeList, drop_giant: bool = True) -> ScaleFreeFit:
    """Fit log2(count) ~ slope * log2(size) + intercept.

    ``drop_giant`` excludes the single largest component from the fit,
    mirroring the paper's remark that Andromeda's background component is
    the one outlier of an otherwise scale-free plot.
    """
    values, counts = size_histogram(edges)
    if values.shape[0] < 2:
        return ScaleFreeFit(0.0, 0.0, 0.0, int(values.shape[0]),
                            int(values[-1]) if values.shape[0] else 0,
                            int(counts.sum()) if counts.shape[0] else 0)
    giant = int(values[-1])
    n_components = int(counts.sum())
    fit_values, fit_counts = values, counts
    if drop_giant and counts[-1] == 1 and values.shape[0] > 2:
        fit_values, fit_counts = values[:-1], counts[:-1]
    x = np.log2(fit_values.astype(np.float64))
    y = np.log2(fit_counts.astype(np.float64))
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScaleFreeFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        n_points=int(fit_values.shape[0]),
        giant_component_size=giant,
        n_components=n_components,
    )


def binned_histogram(edges: EdgeList) -> list[tuple[int, int]]:
    """(2^k size bucket lower bound, components in bucket) — Figure 5 axes."""
    sizes = component_sizes(edges)
    if sizes.shape[0] == 0:
        return []
    exponents = np.floor(np.log2(sizes)).astype(int)
    buckets: list[tuple[int, int]] = []
    for exponent in range(int(exponents.max()) + 1):
        count = int((exponents == exponent).sum())
        if count:
            buckets.append((1 << exponent, count))
    return buckets


def render_figure5(series: dict[str, EdgeList], width: int = 60) -> str:
    """Terminal rendition of Figure 5: log-log histograms per dataset."""
    lines = ["component size distribution (log-log, bucketed by powers of 2)"]
    for name, edges in series.items():
        buckets = binned_histogram(edges)
        fit = fit_scale_free(edges)
        lines.append("")
        lines.append(
            f"-- {name}: {fit.n_components} components, giant = "
            f"{fit.giant_component_size}, log-log slope = {fit.slope:.2f} "
            f"(R^2 = {fit.r_squared:.2f})"
        )
        if not buckets:
            lines.append("   (empty graph)")
            continue
        max_count = max(count for _, count in buckets)
        for size, count in buckets:
            bar = "#" * max(1, int(width * np.log2(count + 1)
                                   / np.log2(max_count + 1)))
            lines.append(f"   size >= {size:>9,d} | {bar} {count}")
    return "\n".join(lines)
