"""Run-metric helpers shared by the bench harness and the tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def relative_stdev(samples: Sequence[float]) -> float:
    """Standard deviation / mean — the variability metric of Section VII-B.

    The paper compares the average relative standard deviation of run times
    (4.0% for Randomised Contraction vs 1.6-2.2% for the deterministic
    algorithms) to argue randomisation adds little variability.
    """
    values = list(samples)
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / mean


def quasi_linearity_exponent(
    sizes: Sequence[float], times: Sequence[float]
) -> float:
    """Fit time ~ size^alpha; alpha ~ 1 means quasi-linear scaling.

    Used for the Candels10..160 scalability claim ("runtime is essentially
    linear in the size of the graph", Section VII-B).
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need two or more (size, time) points")
    xs = [math.log(s) for s in sizes]
    ys = [math.log(t) for t in times]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all sizes identical")
    return sxy / sxx


@dataclass
class SpaceReport:
    """Space metrics of one run, in the units of Tables IV and V."""

    input_bytes: int
    peak_bytes: int
    written_bytes: int

    @property
    def peak_ratio(self) -> float:
        """Peak live space over input size (Table IV's comparison)."""
        return self.peak_bytes / max(self.input_bytes, 1)

    @property
    def written_ratio(self) -> float:
        """Total bytes written over input size (Table V's comparison)."""
        return self.written_bytes / max(self.input_bytes, 1)


def bytes_to_human(n_bytes: float) -> str:
    """1234567 -> '1.2 MB' (decimal units, as the paper's GB tables)."""
    value = float(n_bytes)
    for unit in ("B", "kB", "MB", "GB", "TB"):
        if abs(value) < 1000 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")
