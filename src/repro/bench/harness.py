"""The experiment harness behind every table and figure reproduction.

Runs (dataset, algorithm) pairs under the conditions of Section VII-B:

* a fresh database per run, with the dataset loaded as the input table;
* a fixed space budget standing in for the paper's fixed cluster memory —
  algorithms that blow past it are reported as DNF ("did not finish"),
  reproducing the dashes of Table III;
* per-run measurement of the quantities the paper reports: wall-clock
  seconds (Table III / Figure 6), peak live space (Table IV), total bytes
  written (Table V), plus rounds, query counts and simulated data motion.

Datasets are generated once and cached; repeated measurements reuse them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.base import SQLConnectedComponents
from ..core.runner import make_algorithm
from ..graphs.datasets import TABLE_DATASETS, build_dataset
from ..graphs.edgelist import EdgeList
from ..graphs.io import load_edges_into
from ..sqlengine import Database, SpaceBudgetExceeded
from .scale import bench_reps, bench_scale

#: Default space budget as a multiple of the *largest* input in a suite —
#: the reproduction's analogue of the paper's fixed 5 x 48 GiB cluster.
DEFAULT_BUDGET_FACTOR = 7.0


@dataclass
class RunOutcome:
    """One (dataset, algorithm, repetition) measurement."""

    dataset: str
    algorithm: str
    status: str  # "ok" or "dnf"
    seconds: float
    rounds: int
    sql_queries: int
    input_bytes: int
    peak_bytes: int
    written_bytes: int
    motion_bytes: int
    n_components: int
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class Harness:
    """Dataset cache + run executor for the benchmark suite."""

    scale: Optional[float] = None
    n_segments: int = 4
    budget_factor: Optional[float] = DEFAULT_BUDGET_FACTOR
    seed: int = 20200420
    _datasets: dict[str, EdgeList] = field(default_factory=dict)

    def dataset(self, name: str) -> EdgeList:
        """Build (or fetch the cached) dataset at the harness scale."""
        if name not in self._datasets:
            scale = self.scale if self.scale is not None else bench_scale()
            self._datasets[name] = build_dataset(name, scale)
        return self._datasets[name]

    def input_bytes(self, name: str) -> int:
        return self.dataset(name).byte_size()

    def budget_bytes(self, dataset_names: Iterable[str]) -> Optional[int]:
        """The suite-wide space budget (None = unlimited)."""
        if self.budget_factor is None:
            return None
        largest = max(self.input_bytes(name) for name in dataset_names)
        return int(self.budget_factor * largest)

    def run_once(
        self,
        dataset_name: str,
        algorithm: str | SQLConnectedComponents,
        seed_offset: int = 0,
        space_budget_bytes: Optional[int] = None,
        db_factory=None,
    ) -> RunOutcome:
        """One measured run; space-budget violations become DNF outcomes."""
        edges = self.dataset(dataset_name)
        algo = make_algorithm(algorithm)
        factory = db_factory or Database
        db = factory(
            n_segments=self.n_segments, space_budget_bytes=space_budget_bytes
        )
        load_edges_into(db, "ccinput", edges)
        input_bytes = db.table("ccinput").byte_size()
        started = time.perf_counter()
        try:
            run = algo.run(db, "ccinput", seed=self.seed + seed_offset)
        except SpaceBudgetExceeded as exc:
            return RunOutcome(
                dataset=dataset_name,
                algorithm=algo.name,
                status="dnf",
                seconds=time.perf_counter() - started,
                rounds=0,
                sql_queries=0,
                input_bytes=input_bytes,
                peak_bytes=exc.used_bytes,
                written_bytes=db.stats.bytes_written,
                motion_bytes=db.stats.motion_bytes,
                n_components=0,
                error=str(exc),
            )
        vertices, labels = run.labels(db)
        n_components = len(set(labels.tolist())) if labels.shape[0] else 0
        return RunOutcome(
            dataset=dataset_name,
            algorithm=algo.name,
            status="ok",
            seconds=run.elapsed_seconds,
            rounds=run.rounds,
            sql_queries=run.sql_queries,
            input_bytes=input_bytes,
            peak_bytes=run.stats.peak_live_bytes,
            written_bytes=run.stats.bytes_written,
            motion_bytes=run.stats.motion_bytes,
            n_components=n_components,
            error="",
        )

    def run_suite(
        self,
        dataset_names: Optional[list[str]] = None,
        algorithms: Optional[list[str]] = None,
        reps: Optional[int] = None,
    ) -> list[RunOutcome]:
        """The Table III/IV/V grid: every algorithm on every dataset."""
        dataset_names = dataset_names or list(TABLE_DATASETS)
        algorithms = algorithms or ["rc", "hm", "tp", "cr"]
        reps = reps if reps is not None else bench_reps()
        budget = self.budget_bytes(dataset_names)
        outcomes: list[RunOutcome] = []
        for dataset_name in dataset_names:
            for algorithm in algorithms:
                for rep in range(reps):
                    outcomes.append(
                        self.run_once(
                            dataset_name,
                            algorithm,
                            seed_offset=rep,
                            space_budget_bytes=budget,
                        )
                    )
        return outcomes


def mean_outcomes(outcomes: list[RunOutcome]) -> list[RunOutcome]:
    """Collapse repetitions to per-(dataset, algorithm) means.

    A DNF in any repetition makes the aggregate DNF (the paper's dashes).
    """
    grouped: dict[tuple[str, str], list[RunOutcome]] = {}
    order: list[tuple[str, str]] = []
    for outcome in outcomes:
        key = (outcome.dataset, outcome.algorithm)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(outcome)
    result = []
    for key in order:
        group = grouped[key]
        if any(not o.ok for o in group):
            failed = next(o for o in group if not o.ok)
            result.append(failed)
            continue
        n = len(group)
        result.append(
            RunOutcome(
                dataset=key[0],
                algorithm=key[1],
                status="ok",
                seconds=sum(o.seconds for o in group) / n,
                rounds=round(sum(o.rounds for o in group) / n),
                sql_queries=round(sum(o.sql_queries for o in group) / n),
                input_bytes=group[0].input_bytes,
                peak_bytes=max(o.peak_bytes for o in group),
                written_bytes=round(sum(o.written_bytes for o in group) / n),
                motion_bytes=round(sum(o.motion_bytes for o in group) / n),
                n_components=group[0].n_components,
            )
        )
    return result
